"""Walk through the paper's Fig. 4 worked example, relation by relation.

Shows Eqv. 10 (inner join) and Eqv. 12 (full outerjoin with defaults) the
way Sec. 3.1 presents them, printing every intermediate relation.

Run:  python examples/equivalence_gallery.py
"""

from repro.aggregates import count_star, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra import operators as ops
from repro.algebra.expressions import Attr
from repro.algebra.relation import Relation
from repro.rewrites.eager import eager_groupby, lazy_groupby
from repro.rewrites.pushdown import OpKind


def show(title: str, relation: Relation) -> None:
    print(f"--- {title} ---")
    print(relation.pretty())
    print()


def main() -> None:
    e1 = Relation.from_tuples(["g1", "j1", "a1"], [(1, 1, 2), (1, 2, 4), (1, 2, 8)])
    e2 = Relation.from_tuples(["g2", "j2", "a2"], [(1, 1, 2), (1, 1, 4), (1, 2, 8)])
    predicate = Attr("j1").eq(Attr("j2"))
    group_by = ["g1", "g2"]
    vector = AggVector(
        [
            AggItem("c", count_star()),
            AggItem("b1", sum_("a1")),
            AggItem("b2", sum_("a2")),
        ]
    )

    print("Eqv. 10 — Eager/Lazy Groupby-Count for the inner join")
    print("=" * 60)
    show("e1", e1)
    show("e2", e2)
    show("e3 = e1 ⋈ e2", ops.join(e1, e2, predicate))
    inner = AggVector([AggItem("c1", count_star()), AggItem("b1'", sum_("a1"))])
    show("e4 = Γ_{g1,j1; F1∘c1}(e1)", ops.group_by(e1, ["g1", "j1"], inner))
    show(
        "lazy LHS: Γ_{g1,g2; F}(e1 ⋈ e2)",
        lazy_groupby(OpKind.INNER, e1, e2, predicate, group_by, vector),
    )
    show(
        "eager RHS (Eqv. 10)",
        eager_groupby(OpKind.INNER, e1, e2, predicate, group_by, vector, side=1),
    )

    print("Eqv. 12 — the full outerjoin with default vectors")
    print("=" * 60)
    e1x = Relation.from_tuples(
        ["g1", "j1", "a1"], [(1, 1, 2), (1, 2, 4), (1, 2, 8), (2, 5, 16)]
    )
    e2x = Relation.from_tuples(
        ["g2", "j2", "a2"], [(1, 1, 2), (1, 1, 4), (1, 2, 8), (2, 7, 16)]
    )
    show("e1 (with orphan)", e1x)
    show("e2 (with orphan)", e2x)
    show("e1 ⟗ e2", ops.full_outerjoin(e1x, e2x, predicate))
    lazy = lazy_groupby(OpKind.FULL_OUTER, e1x, e2x, predicate, group_by, vector)
    eager = eager_groupby(OpKind.FULL_OUTER, e1x, e2x, predicate, group_by, vector, side=1)
    show("lazy LHS: Γ_{g1,g2; F}(e1 ⟗ e2)", lazy)
    show("eager RHS (Eqv. 12, defaults c1:1, F¹({⊥}))", eager)
    assert lazy == eager
    print("LHS == RHS ✓  (the defaults make orphaned tuples aggregate correctly)")


if __name__ == "__main__":
    main()
