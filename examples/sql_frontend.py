"""Optimize SQL text directly against the TPC-H catalog.

Run:  python examples/sql_frontend.py
"""

from repro.api import PlannerSession

EX = """
  SELECT ns.n_name, nc.n_name, count(*) AS cnt
  FROM nation ns
  JOIN supplier s ON ns.n_nationkey = s.s_nationkey
  FULL JOIN nation nc ON ns.n_nationkey = nc.n_nationkey
  JOIN customer c ON nc.n_nationkey = c.c_nationkey
  GROUP BY ns.n_name, nc.n_name
"""

Q10_LIKE = """
  SELECT c.c_custkey, c.c_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
  FROM customer c
  JOIN orders o ON c.c_custkey = o.o_custkey
  JOIN lineitem l ON o.o_orderkey = l.l_orderkey
  JOIN nation n ON c.c_nationkey = n.n_nationkey
  WHERE o.o_orderdate >= 639 AND o.o_orderdate < 731 AND l.l_returnflag = 'R'
  GROUP BY c.c_custkey, c.c_name
"""

SEMIJOIN = """
  SELECT n.n_name, count(*) AS suppliers
  FROM nation n
  JOIN supplier s ON n.n_nationkey = s.s_nationkey
  WHERE EXISTS (SELECT * FROM customer c
                WHERE c.c_nationkey = n.n_nationkey AND c.c_acctbal > 0)
  GROUP BY n.n_name
"""

ANTIJOIN = """
  SELECT c.c_mktsegment, count(*) AS quiet_customers
  FROM customer c
  WHERE c.c_custkey NOT IN (SELECT o.o_custkey FROM orders o)
    AND c.c_acctbal IS NOT NULL
  GROUP BY c.c_mktsegment
"""

RIGHT_AND_COMMA = """
  SELECT n.n_name, count(*) AS cnt
  FROM region r, nation n
  RIGHT JOIN supplier s ON n.n_nationkey = s.s_nationkey
  WHERE r.r_regionkey = n.n_regionkey
  GROUP BY n.n_name
"""


def explain(title: str, sql: str, session: PlannerSession) -> None:
    print("=" * 72)
    print(title)
    print(sql.strip())
    print()
    statement = session.sql(sql)  # parsed + conflict-detected once
    for strategy in ("dphyp", "ea-prune", "h2"):
        handle = statement.optimize(strategy=strategy)
        print(f"-- {strategy}: Cout = {handle.cost:,.0f} "
              f"({handle.result.elapsed_seconds * 1000:.2f} ms, "
              f"{handle.result.ccp_count} ccps)")
    best = statement.optimize(strategy="ea-prune")
    print()
    print(best.explain())
    print()


def main() -> None:
    session = PlannerSession.tpch(scale_factor=1.0)
    explain("Intro example (outerjoin barrier)", EX, session)
    explain("Q10-like (returned items)", Q10_LIKE, session)
    explain("EXISTS → semijoin (reordered by the conflict detector)", SEMIJOIN, session)
    explain("NOT IN + IS NOT NULL → antijoin over a 3VL filter", ANTIJOIN, session)
    explain("comma-FROM + RIGHT JOIN (normalized to left outerjoin)", RIGHT_AND_COMMA, session)


if __name__ == "__main__":
    main()
