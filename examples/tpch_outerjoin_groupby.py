"""The paper's introduction example: grouping through an outerjoin barrier.

    select ns.n_name, nc.n_name, count(*)
    from (nation ns join supplier s on ns.n_nationkey = s.s_nationkey)
         full outer join
         (nation nc join customer c on nc.n_nationkey = c.c_nationkey)
         on ns.n_nationkey = nc.n_nationkey
    group by ns.n_name, nc.n_name

On HyPer the lazy plan ran 2140 ms vs. 1.51 ms for the eager plan — a
factor of ~1400.  Reordering grouping with outerjoins is not valid in
general; the paper's generalised-outerjoin equivalences (Eqv. 12 here)
make it valid, and the DP plan generator finds the plan automatically.

Run:  python examples/tpch_outerjoin_groupby.py
"""

from repro.api import PlannerSession
from repro.exec import execute
from repro.query.canonical import canonical_plan
from repro.tpch import build_ex, micro_database


def main() -> None:
    query = build_ex(scale_factor=1.0)
    print("TPC-H Ex query (SF-1 statistics)")
    print()

    session = PlannerSession(database=micro_database(query))
    statement = session.statement(query)  # pre-pass shared by both runs
    lazy = statement.optimize(strategy="dphyp")
    eager = statement.optimize(strategy="ea-prune")

    print("Lazy plan (DPhyp — grouping stays above the outerjoin):")
    print(lazy.explain())
    print(f"  Cout = {lazy.cost:,.0f}")
    print()
    print("Eager plan (EA-Prune — grouping pushed through the barrier):")
    print(eager.explain())
    print(f"  Cout = {eager.cost:,.0f}")
    print()
    ratio = eager.cost / lazy.cost
    print(f"Relative plan cost EA/DPhyp: {ratio:.2e}")
    print("(paper, Table 2: 6.1e-04; HyPer execution times: 2140 ms -> 1.51 ms)")
    print()

    # Execute both plans on deterministic micro data and compare.
    canonical = execute(canonical_plan(query), session.database)
    for name, handle in (("lazy", lazy), ("eager", eager)):
        output = handle.execute()
        assert output == canonical, f"{name} plan diverged!"
    print("Both plans executed on micro data; results are identical:")
    print(canonical.pretty())


if __name__ == "__main__":
    main()
