"""A miniature of the paper's evaluation (Figs. 15-18) on random workloads.

Generates random operator trees (Sec. 5 methodology), optimizes each with
all five plan generators and prints the plan-quality and runtime summary —
a quick desk-size version of the full benchmark harness in benchmarks/.

Run:  python examples/random_workload_study.py [queries-per-size]
"""

import random
import statistics
import sys
import time

from repro.api import OptimizerConfig, PlannerSession
from repro.workload import generate_query

SIZES = (3, 5, 7)
STRATEGIES = ("dphyp", "ea-prune", "h1", "h2")

# Uncached on purpose: the study times fresh optimizer runs.
SESSION = PlannerSession(config=OptimizerConfig(cache_capacity=None))


def main() -> None:
    per_size = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    print(f"{per_size} random queries per size, strategies: {', '.join(STRATEGIES)}")
    print()
    header = f"{'n':>3s} " + "".join(f"{s + ' cost':>15s}" for s in STRATEGIES) + "".join(
        f"{s + ' ms':>12s}" for s in STRATEGIES
    )
    print(header)
    for n in SIZES:
        costs = {s: [] for s in STRATEGIES}
        times = {s: [] for s in STRATEGIES}
        for seed in range(per_size):
            query = generate_query(n, random.Random(seed * 7 + n))
            for strategy in STRATEGIES:
                start = time.perf_counter()
                handle = SESSION.optimize(query, strategy=strategy)
                times[strategy].append(time.perf_counter() - start)
                costs[strategy].append(handle.cost)
        # normalise costs per query by the optimum (ea-prune)
        rel = {s: [] for s in STRATEGIES}
        for i in range(per_size):
            optimum = costs["ea-prune"][i]
            for s in STRATEGIES:
                rel[s].append(costs[s][i] / optimum if optimum else 1.0)
        row = f"{n:3d} "
        row += "".join(f"{statistics.mean(rel[s]):15.2f}" for s in STRATEGIES)
        row += "".join(f"{statistics.mean(times[s]) * 1000:12.2f}" for s in STRATEGIES)
        print(row)
    print()
    print("cost columns are relative to the optimal (EA-Prune) plan;")
    print("expect DPhyp ≫ 1 and H1/H2 close to 1 (paper Figs. 15/17).")


if __name__ == "__main__":
    main()
