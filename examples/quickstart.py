"""Quickstart: define a query, optimize it with every strategy, execute it.

Run:  python examples/quickstart.py
"""

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr
from repro.algebra.relation import Relation
from repro.api import PlannerSession
from repro.exec import execute
from repro.query.canonical import canonical_plan
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind


def build_query() -> Query:
    """A three-relation query with a left outerjoin in the middle:

        SELECT s.region, count(*), sum(li.price)
        FROM stores s
        JOIN lineitems li ON s.store_id = li.store_id
        LEFT JOIN returns r ON li.item_id = r.item_id
        GROUP BY s.region
    """
    stores = RelationInfo(
        "stores",
        ("stores.store_id", "stores.region"),
        cardinality=1_000,
        distinct={"stores.store_id": 1_000, "stores.region": 12},
        keys=(frozenset({"stores.store_id"}),),
    )
    lineitems = RelationInfo(
        "lineitems",
        ("lineitems.store_id", "lineitems.item_id", "lineitems.price"),
        cardinality=1_000_000,
        distinct={
            "lineitems.store_id": 1_000,
            "lineitems.item_id": 50_000,
            "lineitems.price": 10_000,
        },
    )
    returns = RelationInfo(
        "returns",
        ("returns.item_id", "returns.reason"),
        cardinality=20_000,
        distinct={"returns.item_id": 15_000, "returns.reason": 8},
    )
    edges = [
        JoinEdge(
            0, OpKind.INNER,
            Attr("stores.store_id").eq(Attr("lineitems.store_id")), 1 / 1_000,
        ),
        JoinEdge(
            1, OpKind.LEFT_OUTER,
            Attr("lineitems.item_id").eq(Attr("returns.item_id")), 1 / 50_000,
        ),
    ]
    tree = TreeNode(1, TreeNode(0, TreeLeaf(0), TreeLeaf(1)), TreeLeaf(2))
    aggregates = AggVector(
        [
            AggItem("n", AggCall(AggKind.COUNT_STAR)),
            AggItem("total", AggCall(AggKind.SUM, Attr("lineitems.price"))),
        ]
    )
    return Query([stores, lineitems, returns], edges, tree, ("stores.region",), aggregates)


def tiny_database():
    """A micro instance so the plans can actually run."""
    stores = Relation.from_tuples(
        ["stores.store_id", "stores.region"],
        [(1, "north"), (2, "north"), (3, "south")],
    )
    lineitems = Relation.from_tuples(
        ["lineitems.store_id", "lineitems.item_id", "lineitems.price"],
        [(1, 10, 5), (1, 11, 7), (2, 10, 5), (3, 12, 9), (3, 13, 2), (9, 14, 4)],
    )
    returns = Relation.from_tuples(
        ["returns.item_id", "returns.reason"],
        [(10, "damaged"), (13, "late")],
    )
    return {"stores": stores, "lineitems": lineitems, "returns": returns}


def main() -> None:
    query = build_query()
    print("Query:", query)
    print()

    # One session is the whole pipeline: statement → plan handles → execution.
    session = PlannerSession(database=tiny_database())
    statement = session.statement(query)
    comparison = statement.optimize_all_strategies()
    baseline = comparison["dphyp"].cost
    print(f"{'strategy':10s} {'Cout':>14s} {'vs DPhyp':>10s} {'time':>9s}")
    for handle in comparison:
        print(
            f"{handle.strategy:10s} {handle.cost:14.1f} {handle.cost / baseline:10.3f}"
            f" {handle.result.elapsed_seconds * 1000:7.2f}ms"
        )
    print()
    print(f"cheapest strategy: {comparison.winner}")
    print()

    best = comparison["ea-prune"]
    print("Best plan (EA-Prune):")
    print(best.explain())
    print()

    canonical = execute(canonical_plan(query), session.database)
    optimized = best.execute()  # runs against the session's database
    assert optimized == canonical
    print("Executed on the micro database — optimized result matches canonical:")
    print(optimized.pretty())


if __name__ == "__main__":
    main()
