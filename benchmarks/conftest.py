"""Shared infrastructure for the figure/table benchmarks.

Environment knobs (pure-Python enumeration is slower than the authors'
C++ implementation, so the defaults are modest; raise them to approach the
paper's 10,000-queries-per-size setting):

* ``REPRO_QUERIES``   — random queries per relation count (default 5)
* ``REPRO_MAX_N``     — largest relation count for the sweeps (default 10)
* ``REPRO_MAX_N_EA``  — largest n for the exhaustive EA-All (default 6)

Each benchmark registers a paper-style report that is printed in the
terminal summary, so ``pytest benchmarks/ --benchmark-only`` shows the
regenerated figures next to pytest-benchmark's timing table.
"""

import os
import random
from typing import Dict, List

import pytest

from repro.workload import generate_query

QUERIES_PER_SIZE = int(os.environ.get("REPRO_QUERIES", "5"))
MAX_N = int(os.environ.get("REPRO_MAX_N", "10"))
MAX_N_EA_ALL = int(os.environ.get("REPRO_MAX_N_EA", "6"))

_REPORTS: Dict[str, List[str]] = {}


def register_report(title: str, lines: List[str]) -> None:
    """Store a report for the terminal summary (idempotent per title)."""
    _REPORTS[title] = list(lines)


def workload(n: int, count: int = QUERIES_PER_SIZE):
    """Deterministic random queries of size *n* (paper Sec. 5 methodology)."""
    return [generate_query(n, random.Random(seed * 7919 + n)) for seed in range(count)]


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper figure reproduction")
    for title in sorted(_REPORTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        for line in _REPORTS[title]:
            terminalreporter.write_line("  " + line)
