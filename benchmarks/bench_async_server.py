"""Async serving tier under open-loop (Poisson) load.

Exercises :mod:`repro.asyncserver` the way real traffic does — arrivals
do not wait for completions:

1. **Capacity probe** — pipelined closed-loop clients measure the warm
   sustainable throughput (the committed ``qps``), compared against the
   sync tier's ``BENCH_server.json`` baseline (target: >= 5x).
2. **Open-loop SLO search** — Poisson arrivals at descending fractions
   of probed capacity; the highest offered rate whose p99 stays under
   10 ms is the recorded *latency-bounded throughput*.  Latency is
   measured from each request's *scheduled arrival time*, so queueing
   delay is charged to the server, not silently absorbed by a slow
   client (no coordinated omission).  Gate: that SLO-holding rate must
   itself exceed 2x the sync tier's entire capacity.
3. **Overload step** — arrivals step to 2x capacity.  The admission
   bound must shed load with immediate 429s while 200s keep flowing,
   and the tier must return to health afterwards.
4. **Drain/restart cycle** — graceful SIGTERM-style drain snapshots the
   plan-cache shards; a fresh server over the same ``--cache-dir`` must
   serve its **first** request as a warm cache hit with the identical
   plan.

Results land in ``benchmarks/BENCH_async.json`` (schema
``bench-async-server/v1``).  ``--baseline`` diffs a fresh run against a
committed artifact (regression gate for CI); ``--smoke`` shrinks every
phase for CI runners and skips the absolute 5x gate (machines differ —
the ratio gate vs the committed artifact covers regressions there).

Usage::

    PYTHONPATH=src python benchmarks/bench_async_server.py             # full run
    PYTHONPATH=src python benchmarks/bench_async_server.py --smoke \
        --out /tmp/async.json --baseline benchmarks/BENCH_async.json   # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import random
import sys
import tempfile
import time
from collections import Counter, deque
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.asyncserver import AsyncPlanServer, AsyncServerConfig, tune_gc_for_serving
from repro.server.client import ServerClient
from repro.server.metrics import percentile

SCHEMA = "bench-async-server/v1"
OUT_PATH = Path(__file__).resolve().parent / "BENCH_async.json"
SYNC_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_server.json"

SPEEDUP_TARGET = 5.0          # x sync-tier qps (full runs)
P99_TARGET_MS = 10.0          # open-loop SLO: warm p99 from scheduled arrival
SLO_FLOOR_X = 2.0             # SLO-holding rate must be >= this x sync qps
#: descending load factors tried by the SLO search; the first (highest)
#: one holding p99 < P99_TARGET_MS is the latency-bounded throughput.
SLO_FACTORS = (0.6, 0.5, 0.4, 0.3, 0.2)
BASELINE_RATIO = 0.25         # fresh run must keep >= 25% of committed qps
SHARDS = 2

#: same TPC-H repeat mix as the sync bench (aliases vary, so the
#: rename-stable fingerprint path is exercised, not just exact repeats).
QUERY_MIX = [
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name",
    "SELECT n2.n_name, count(*) AS cnt FROM nation n2 "
    "JOIN supplier sup ON n2.n_nationkey = sup.s_nationkey GROUP BY n2.n_name",
    "SELECT c.c_custkey, c.c_name, "
    "sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
    "FROM customer c "
    "JOIN orders o ON c.c_custkey = o.o_custkey "
    "JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
    "JOIN nation n ON c.c_nationkey = n.n_nationkey "
    "WHERE o.o_orderdate >= 639 AND o.o_orderdate < 731 "
    "GROUP BY c.c_custkey, c.c_name",
    "SELECT s.s_name, count(*) AS cnt FROM supplier s "
    "JOIN nation n ON s.s_nationkey = n.n_nationkey "
    "JOIN customer c ON n.n_nationkey = c.c_nationkey GROUP BY s.s_name",
]


def _request_bytes(sql: str) -> bytes:
    body = json.dumps({"sql": sql, "include_plan": False}).encode("utf-8")
    head = (
        "POST /optimize HTTP/1.1\r\n"
        "Host: bench\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    return head.encode("latin-1") + body


REQUESTS = [_request_bytes(sql) for sql in QUERY_MIX]


async def _read_response(reader) -> int:
    header = await reader.readuntil(b"\r\n\r\n")
    length = int(header.lower().split(b"content-length: ")[1].split(b"\r\n")[0])
    await reader.readexactly(length)
    return int(header[9:12])


# -- phase 1: capacity probe (closed loop, pipelined) -----------------------


async def _pipelined_client(host, port, requests, window, statuses):
    reader, writer = await asyncio.open_connection(host, port)
    sent = received = 0
    while received < requests:
        while sent < requests and sent - received < window:
            writer.write(REQUESTS[sent % len(REQUESTS)])
            sent += 1
        statuses[await _read_response(reader)] += 1
        received += 1
    writer.close()


async def probe_capacity(host, port, *, clients=4, requests=2000, window=32) -> dict:
    statuses: Counter = Counter()
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _pipelined_client(host, port, requests, window, statuses)
            for _ in range(clients)
        )
    )
    wall = time.perf_counter() - started
    total = sum(statuses.values())
    return {
        "clients": clients,
        "requests": total,
        "window": window,
        "wall_seconds": wall,
        "qps": total / wall if wall > 0 else 0.0,
        "non_200": {str(k): v for k, v in statuses.items() if k != 200},
    }


# -- phases 2+3: open-loop Poisson generator --------------------------------


class OpenLoopRun:
    """One open-loop phase: Poisson arrivals over a connection pool.

    Arrivals are scheduled ahead of time from a seeded exponential
    inter-arrival stream; the sender fires every due request without
    waiting for responses (requests pipeline onto pool connections
    round-robin).  Latency for each 200 is measured from the request's
    *scheduled* arrival, so a backlogged server cannot hide queueing
    delay behind a stalled generator (coordinated omission).
    """

    def __init__(self, host, port, *, rate, requests, connections, seed):
        self.host = host
        self.port = port
        self.rate = rate
        self.requests = requests
        self.connections = connections
        rng = random.Random(seed)
        clock = 0.0
        self.schedule = []
        for _ in range(requests):
            clock += rng.expovariate(rate)
            self.schedule.append(clock)
        self.latencies_ms = []
        self.statuses: Counter = Counter()
        self.errors = 0

    async def _reader_loop(self, reader, pending, start):
        loop = asyncio.get_running_loop()
        try:
            while True:
                status = await _read_response(reader)
                scheduled = pending.popleft()
                self.statuses[status] += 1
                if status == 200:
                    self.latencies_ms.append(
                        ((loop.time() - start) - scheduled) * 1000.0
                    )
        except (asyncio.IncompleteReadError, ConnectionResetError):
            self.errors += len(pending)

    async def run(self) -> dict:
        loop = asyncio.get_running_loop()
        pool = []
        for _ in range(self.connections):
            reader, writer = await asyncio.open_connection(self.host, self.port)
            pending: deque = deque()
            task = None  # reader task attached after start is known
            pool.append([reader, writer, pending, task])

        start = loop.time()
        for entry in pool:
            entry[3] = asyncio.ensure_future(
                self._reader_loop(entry[0], entry[2], start)
            )

        index = 0
        while index < self.requests:
            now = loop.time() - start
            while index < self.requests and self.schedule[index] <= now:
                _reader, writer, pending, _task = pool[index % self.connections]
                pending.append(self.schedule[index])
                writer.write(REQUESTS[index % len(REQUESTS)])
                index += 1
            if index < self.requests:
                await asyncio.sleep(
                    min(0.002, max(0.0, self.schedule[index] - (loop.time() - start)))
                )

        # Wait for every response (or a dead connection).
        deadline = loop.time() + 60.0
        while any(entry[2] for entry in pool) and loop.time() < deadline:
            await asyncio.sleep(0.01)
        wall = loop.time() - start
        for _reader, writer, _pending, task in pool:
            task.cancel()
            writer.close()

        completed = sum(self.statuses.values())
        latencies = sorted(self.latencies_ms)
        return {
            "offered_rate_qps": self.rate,
            "requests": self.requests,
            "connections": self.connections,
            "completed": completed,
            "achieved_qps": completed / wall if wall > 0 else 0.0,
            "status_200": self.statuses.get(200, 0),
            "status_429": self.statuses.get(429, 0),
            "other_statuses": {
                str(k): v for k, v in self.statuses.items() if k not in (200, 429)
            },
            "transport_errors": self.errors,
            "p50_ms": percentile(latencies, 0.50),
            "p95_ms": percentile(latencies, 0.95),
            "p99_ms": percentile(latencies, 0.99),
            "max_ms": latencies[-1] if latencies else None,
        }


# -- phase 4: drain / restart cycle -----------------------------------------


def drain_restart_cycle(cache_dir: str, smoke: bool) -> dict:
    """Populate → drain (snapshot) → restart → first request warm."""
    config = AsyncServerConfig(
        port=0, shards=SHARDS, cache_dir=cache_dir, max_inflight=256
    )
    with AsyncPlanServer(config) as first:
        with ServerClient(port=first.port, timeout=300.0, retries=3) as client:
            for sql in QUERY_MIX:
                client.optimize(sql, include_plan=False)
            explain_before = client.explain(QUERY_MIX[0])["explain"]
        drained_clean = first.drain()

    restart_started = time.perf_counter()
    with AsyncPlanServer(config) as second:
        boot_seconds = time.perf_counter() - restart_started
        with ServerClient(port=second.port, timeout=300.0, retries=3) as client:
            stats = client.stats()
            first_response = client.optimize(QUERY_MIX[0])
            first_latency = time.perf_counter() - restart_started
            explain_after = client.explain(QUERY_MIX[0])["explain"]
        second.drain()
    return {
        "drained_clean": drained_clean,
        "snapshot_files": sorted(os.listdir(cache_dir)),
        "loaded_entries": stats["persistence"]["loaded"],
        "rejected_snapshots": stats["persistence"]["rejected"],
        "first_request_cache_hit": first_response["cache_hit"],
        "identical_plan_text": explain_after == explain_before,
        "boot_seconds": boot_seconds,
        "restart_to_first_response_seconds": first_latency,
    }


# -- orchestration -----------------------------------------------------------


async def slo_search(host, port, capacity_qps, *, smoke: bool) -> dict:
    """Find the highest offered rate that holds the p99 SLO.

    Steps down through ``SLO_FACTORS`` x capacity; a step qualifies when
    every request completed 200 and its p99 (from scheduled arrival) is
    under ``P99_TARGET_MS``.  Descending order means the first
    qualifying step IS the latency-bounded throughput, so the search
    stops there.  Smoke runs take a single short step and are not gated
    on the SLO (single-core CI runners schedule too noisily).
    """
    factors = (0.5,) if smoke else SLO_FACTORS
    steps = []
    chosen = None
    for index, factor in enumerate(factors):
        rate = max(200.0, capacity_qps * factor)
        requests = 1500 if smoke else int(rate * 3)  # ~3s of traffic per step
        step = await OpenLoopRun(
            host,
            port,
            rate=rate,
            requests=requests,
            connections=4,
            seed=20150413 + index,  # the paper's ICDE publication date
        ).run()
        step["load_factor"] = factor
        steps.append(step)
        if (
            step["status_200"] == step["requests"]
            and not step["transport_errors"]
            and step["p99_ms"] is not None
            and step["p99_ms"] < P99_TARGET_MS
        ):
            chosen = step
            break
    return {
        "target_p99_ms": P99_TARGET_MS,
        "met": chosen is not None,
        "qps": chosen["offered_rate_qps"] if chosen else None,
        "p99_ms": chosen["p99_ms"] if chosen else None,
        "steps": steps,
        "chosen": chosen if chosen is not None else steps[-1],
    }


def measure(smoke: bool) -> dict:
    probe_requests = 400 if smoke else 2000
    overload_requests = 600 if smoke else 3000

    # max_inflight sizes the admission queue: deep enough that the
    # capacity probe's pipelining (4 clients x 32 window) is never shed,
    # shallow enough that the 2x overload step sheds within ~25ms of
    # backlog instead of queueing unboundedly.
    config = AsyncServerConfig(
        port=0, shards=SHARDS, cache_capacity=512, max_inflight=256
    )
    with AsyncPlanServer(config) as server:
        with ServerClient(port=server.port, timeout=300.0, retries=3) as warm:
            for sql in QUERY_MIX:
                warm.optimize(sql, include_plan=False)

        # This process hosts the front event loop AND the load
        # generator; a full GC pass in either inflates the tail.
        tune_gc_for_serving()

        loop = asyncio.new_event_loop()
        try:
            capacity = loop.run_until_complete(
                probe_capacity(server.host, server.port, requests=probe_requests)
            )
            slo = loop.run_until_complete(
                slo_search(server.host, server.port, capacity["qps"], smoke=smoke)
            )
            overload = loop.run_until_complete(
                OpenLoopRun(
                    server.host,
                    server.port,
                    rate=capacity["qps"] * 2.0,
                    requests=overload_requests,
                    connections=4,
                    seed=20150414,
                ).run()
            )
        finally:
            loop.close()

        with ServerClient(port=server.port) as probe:
            stats_after = probe.stats()
            recovered = probe.healthz()["status"] == "ok"

    with tempfile.TemporaryDirectory(prefix="repro-async-bench-") as cache_dir:
        restart = drain_restart_cycle(cache_dir, smoke)

    return {
        "shards": SHARDS,
        "capacity_probe": capacity,
        "open_loop_slo": slo,
        "overload_2x": overload,
        "recovered_after_overload": recovered,
        "cache_hit_rate": stats_after["plans"]["hit_rate"],
        "worker_restarts": stats_after["restarts"],
        "drain_restart": restart,
    }


def acceptance_failures(run: dict, *, smoke: bool, sync_qps) -> list:
    failures = []
    capacity_qps = run["capacity_probe"]["qps"]
    if run["capacity_probe"]["non_200"]:
        failures.append(f"capacity probe saw non-200s: {run['capacity_probe']['non_200']}")
    if sync_qps and not smoke and capacity_qps < SPEEDUP_TARGET * sync_qps:
        failures.append(
            f"warm capacity {capacity_qps:,.0f} q/s < {SPEEDUP_TARGET}x sync "
            f"baseline ({sync_qps:,.0f} q/s)"
        )
    slo = run["open_loop_slo"]
    chosen = slo["chosen"]
    if chosen["completed"] != chosen["requests"]:
        failures.append(
            f"open loop dropped requests: {chosen['completed']}/{chosen['requests']}"
        )
    if smoke:
        if chosen["status_200"] != chosen["requests"]:
            failures.append(f"open loop non-200s below capacity: {chosen}")
    elif not slo["met"]:
        tried = ", ".join(
            f"{s['offered_rate_qps']:,.0f} q/s -> p99 {s['p99_ms']:.1f}ms"
            for s in slo["steps"]
        )
        failures.append(
            f"no offered rate held p99 < {P99_TARGET_MS}ms ({tried})"
        )
    elif sync_qps and slo["qps"] < SLO_FLOOR_X * sync_qps:
        failures.append(
            f"latency-bounded throughput {slo['qps']:,.0f} q/s (p99 < "
            f"{P99_TARGET_MS}ms) < {SLO_FLOOR_X}x sync baseline ({sync_qps:,.0f} q/s)"
        )
    overload = run["overload_2x"]
    if overload["status_429"] == 0:
        failures.append("2x overload produced no 429s (backpressure not engaging)")
    if overload["status_200"] == 0:
        failures.append("2x overload starved all 200s (no goodput under overload)")
    if overload["other_statuses"] or overload["transport_errors"]:
        failures.append(f"2x overload saw failures: {overload}")
    if not run["recovered_after_overload"]:
        failures.append("server unhealthy after the overload step")
    restart = run["drain_restart"]
    if not restart["drained_clean"]:
        failures.append("drain did not finish cleanly")
    if not restart["first_request_cache_hit"]:
        failures.append("first request after restart was not a warm cache hit")
    if not restart["identical_plan_text"]:
        failures.append("plan text changed across drain/restart")
    if restart["rejected_snapshots"]:
        failures.append(f"warm start rejected snapshots: {restart}")
    return failures


def baseline_failures(run: dict, baseline_path: str) -> list:
    try:
        committed = json.loads(Path(baseline_path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable baseline {baseline_path}: {error}"]
    committed_qps = committed["run"]["capacity_probe"]["qps"]
    measured_qps = run["capacity_probe"]["qps"]
    if measured_qps < committed_qps * BASELINE_RATIO:
        return [
            f"capacity {measured_qps:,.0f} q/s fell below {BASELINE_RATIO:.0%} of "
            f"the committed baseline ({committed_qps:,.0f} q/s)"
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized phases")
    parser.add_argument(
        "--out", default=str(OUT_PATH), help=f"output JSON path (default: {OUT_PATH})"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_async.json to regression-gate against",
    )
    args = parser.parse_args(argv)

    sync_qps = None
    if SYNC_BASELINE_PATH.exists():
        sync_qps = json.loads(SYNC_BASELINE_PATH.read_text())["run"]["qps"]

    print(
        f"bench_async_server: shards={SHARDS} "
        f"({'smoke' if args.smoke else 'full'} phases; "
        f"sync baseline {'%.0f q/s' % sync_qps if sync_qps else 'n/a'})"
    )
    run = measure(args.smoke)

    capacity = run["capacity_probe"]
    slo = run["open_loop_slo"]
    overload = run["overload_2x"]
    restart = run["drain_restart"]
    speedup = capacity["qps"] / sync_qps if sync_qps else None
    print(
        f"  capacity: {capacity['qps']:,.0f} q/s warm"
        + (f" ({speedup:.1f}x sync tier)" if speedup else "")
    )
    for step in slo["steps"]:
        print(
            f"  open loop @ {step['offered_rate_qps']:,.0f} q/s "
            f"({step['load_factor']:.0%} capacity): "
            f"{step['status_200']}/{step['requests']} ok  "
            f"p50={step['p50_ms']:.2f}ms  p99={step['p99_ms']:.2f}ms"
        )
    if slo["met"]:
        print(
            f"  latency-bounded throughput: {slo['qps']:,.0f} q/s holds "
            f"p99 < {P99_TARGET_MS:.0f}ms (measured p99 {slo['p99_ms']:.2f}ms)"
        )
    print(
        f"  overload @ {overload['offered_rate_qps']:,.0f} q/s: "
        f"{overload['status_200']} ok, {overload['status_429']} shed (429)  "
        f"p99(200s)={overload['p99_ms']:.2f}ms"
    )
    print(
        f"  drain/restart: {restart['loaded_entries']} entries warm-started, "
        f"first request cache_hit={restart['first_request_cache_hit']}, "
        f"identical plan={restart['identical_plan_text']}"
    )

    payload = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": args.smoke,
        "speedup_target": SPEEDUP_TARGET,
        "p99_target_ms": P99_TARGET_MS,
        "slo_floor_x": SLO_FLOOR_X,
        "sync_baseline_qps": sync_qps,
        "speedup_vs_sync": speedup,
        "run": run,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {args.out}")

    failures = acceptance_failures(run, smoke=args.smoke, sync_qps=sync_qps)
    if args.baseline:
        failures += baseline_failures(run, args.baseline)
    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}")
        return 1
    print("  ok: all acceptance targets met")
    return 0


def test_async_server_smoke():
    """Pytest entry point: the smoke phases must meet their targets."""
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        assert main(["--smoke", "--out", tmp.name]) == 0


if __name__ == "__main__":
    sys.exit(main())
