"""Figure 16 — optimization runtime of DPhyp, EA-All, EA-Prune and H1.

Paper (log-scale y): EA-All exceeds one second at ~7 relations, EA-Prune
at ~11, DPhyp stays below a second through 20, and H1 tracks DPhyp at an
almost constant factor (~2.6×).  Absolute times differ (Python vs. C++);
the growth shapes and relative factors are what this benchmark checks.
"""

import statistics
import time

import pytest

from benchmarks.conftest import MAX_N, MAX_N_EA_ALL, register_report, workload
from repro.api import OptimizerConfig, PlannerSession

_RESULTS = {}

#: shared uncached session — benchmarks time the optimizer, so plan-cache
#: hits would corrupt every measurement.
SESSION = PlannerSession(config=OptimizerConfig(cache_capacity=None))


def _limit(strategy: str) -> int:
    return MAX_N_EA_ALL if strategy == "ea-all" else MAX_N


def _sizes(strategy: str):
    return [n for n in range(3, _limit(strategy) + 1)]


CASES = [
    (strategy, n)
    for strategy in ("dphyp", "h1", "ea-prune", "ea-all")
    for n in _sizes(strategy)
]


@pytest.mark.parametrize("strategy,n", CASES, ids=[f"{s}-n{n}" for s, n in CASES])
def test_fig16_runtime(benchmark, strategy, n):
    queries = workload(n, count=3)

    def run():
        for query in queries:
            SESSION.optimize(query, strategy=strategy)

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    per_query = statistics.median(benchmark.stats.stats.data) / len(queries)
    _RESULTS[(strategy, n)] = per_query
    _publish()


def _publish():
    strategies = ("dphyp", "h1", "ea-prune", "ea-all")
    lines = [f"{'n':>3s}" + "".join(f"{s:>12s}" for s in strategies) + f"{'H1/DPhyp':>10s}"]
    for n in range(3, MAX_N + 1):
        cells = []
        for strategy in strategies:
            value = _RESULTS.get((strategy, n))
            cells.append(f"{value * 1000:10.2f}ms" if value is not None else f"{'—':>12s}")
        ratio = ""
        if (("h1", n) in _RESULTS) and (("dphyp", n) in _RESULTS):
            ratio = f"{_RESULTS[('h1', n)] / _RESULTS[('dphyp', n)]:10.2f}"
        lines.append(f"{n:3d}" + "".join(cells) + ratio)
    lines.append("paper: EA-All > 1 s at n≈7, EA-Prune at n≈11; H1 ≈ 2.6 × DPhyp")
    register_report("Fig. 16 — optimization runtime [per query]", lines)
