"""Figure 17 — plan cost of H1 and H2(F) relative to EA-Prune.

Paper: no heuristic is optimal everywhere, but all stay far closer to the
optimum than DPhyp; H2 with F = 1.03 is the best (≈ 7% above optimal at 13
relations; worst observed factors 10.3 for H1 and 9.7 for H2).
"""

import statistics

from benchmarks.conftest import MAX_N, register_report, workload
from repro.api import OptimizerConfig, PlannerSession

SIZES = tuple(range(3, MAX_N + 1))
FACTORS = (1.01, 1.03, 1.05, 1.1)

#: shared uncached session — benchmarks time the optimizer, so plan-cache
#: hits would corrupt every measurement.
SESSION = PlannerSession(config=OptimizerConfig(cache_capacity=None))


def _sweep():
    rows = []
    for n in SIZES:
        ratios = {"h1": []}
        for factor in FACTORS:
            ratios[f"h2@{factor}"] = []
        for query in workload(n):
            optimal = SESSION.optimize(query, strategy="ea-prune").cost
            if optimal <= 0:
                continue
            ratios["h1"].append(SESSION.optimize(query, strategy="h1").cost / optimal)
            for factor in FACTORS:
                ratios[f"h2@{factor}"].append(
                    SESSION.optimize(query, strategy="h2", factor=factor).cost / optimal
                )
        rows.append((n, {k: statistics.mean(v) for k, v in ratios.items()}))
    return rows


def test_fig17_heuristic_plan_quality(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    columns = ["h1"] + [f"h2@{f}" for f in FACTORS]
    lines = [f"{'n':>3s}" + "".join(f"{c:>10s}" for c in columns)]
    for n, means in rows:
        lines.append(f"{n:3d}" + "".join(f"{means[c]:10.3f}" for c in columns))
    lines.append("paper: all ≥ 1, within ~1.15 on average; H2@1.03 closest to optimal")
    register_report("Fig. 17 — heuristic plan cost relative to EA-Prune", lines)

    for n, means in rows:
        for column in columns:
            # heuristics can never beat the optimum ...
            assert means[column] >= 1.0 - 1e-9
            # ... and should stay within the paper's observed band on average
            assert means[column] < 12.0, (n, column, means[column])
