"""Plan-server latency under concurrent closed-loop clients.

Starts a :class:`repro.server.PlanServer` in-process (ephemeral port),
warms the plan cache with one pass over a TPC-H query mix, then drives it
with ``CLIENTS`` closed-loop threads — each owning one keep-alive
:class:`~repro.server.ServerClient` and issuing ``REQUESTS`` back-to-back
``POST /optimize`` calls over the mix, the way dashboards replay the same
parameterised shapes.  Reports per-request p50/p95/p99 latency and
aggregate throughput, and additionally verifies the serving path's fault
isolation: a batch containing one poisoned statement must return plans
for every other statement.

Acceptance targets (asserted):

* >= 4 concurrent clients sustained, every request a 200,
* warm-cache p50 latency under 10 ms,
* the poisoned batch fails only its poisoned item.

Results are written to ``benchmarks/BENCH_server.json`` (schema
``bench-server/v1``), the serving-layer latency baseline future PRs diff
against.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_latency.py            # full run
    PYTHONPATH=src python benchmarks/bench_server_latency.py --smoke    # CI smoke

Environment knobs: ``REPRO_SERVER_CLIENTS`` (default 6),
``REPRO_SERVER_REQUESTS`` per client (default 120).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.server import PlanServer, ServerClient, ServerConfig
from repro.server.metrics import percentile

SCHEMA = "bench-server/v1"
OUT_PATH = Path(__file__).resolve().parent / "BENCH_server.json"

CLIENTS = int(os.environ.get("REPRO_SERVER_CLIENTS", "6"))
REQUESTS = int(os.environ.get("REPRO_SERVER_REQUESTS", "120"))
P50_TARGET_MS = 10.0
MIN_CLIENTS = 4

#: The TPC-H repeat mix: the same shapes dashboards re-issue.  Spellings
#: differ (aliases) so rebind-on-hit is exercised, not just exact repeats.
QUERY_MIX = [
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name",
    "SELECT n2.n_name, count(*) AS cnt FROM nation n2 "
    "JOIN supplier sup ON n2.n_nationkey = sup.s_nationkey GROUP BY n2.n_name",
    "SELECT c.c_custkey, c.c_name, "
    "sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
    "FROM customer c "
    "JOIN orders o ON c.c_custkey = o.o_custkey "
    "JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
    "JOIN nation n ON c.c_nationkey = n.n_nationkey "
    "WHERE o.o_orderdate >= 639 AND o.o_orderdate < 731 "
    "GROUP BY c.c_custkey, c.c_name",
    "SELECT s.s_name, count(*) AS cnt FROM supplier s "
    "JOIN nation n ON s.s_nationkey = n.n_nationkey "
    "JOIN customer c ON n.n_nationkey = c.c_nationkey GROUP BY s.s_name",
]

POISON_SQL = "SELECT count(*) FROM nowhere GROUP BY x"


class ClosedLoopClient(threading.Thread):
    """One closed-loop load generator: next request only after the last."""

    def __init__(self, port: int, requests: int, barrier: threading.Barrier):
        super().__init__(daemon=True)
        self.port = port
        self.requests = requests
        self.barrier = barrier
        self.latencies_ms: list = []
        self.errors: list = []

    def run(self) -> None:
        with ServerClient(port=self.port, timeout=120.0, retries=3) as client:
            self.barrier.wait()
            for i in range(self.requests):
                sql = QUERY_MIX[i % len(QUERY_MIX)]
                started = time.perf_counter()
                try:
                    client.optimize(sql, include_plan=False)
                except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                    self.errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                self.latencies_ms.append((time.perf_counter() - started) * 1000.0)


def run_poisoned_batch(port: int) -> dict:
    """One /batch with a poisoned statement: everything else must plan."""
    statements = [*QUERY_MIX, POISON_SQL, *QUERY_MIX[:2]]
    poison_index = len(QUERY_MIX)
    with ServerClient(port=port, timeout=120.0, retries=3) as client:
        report = client.batch(statements)
    failed = [item["index"] for item in report["items"] if "error" in item]
    return {
        "total": report["total"],
        "succeeded": report["succeeded"],
        "failed_indexes": failed,
        "expected_failed_indexes": [poison_index],
        "isolated": failed == [poison_index]
        and report["succeeded"] == len(statements) - 1,
    }


def measure(clients: int, requests: int, workers: int) -> dict:
    config = ServerConfig(
        port=0,
        workers=workers,
        cache_capacity=512,
        max_inflight=clients * 2 + 8,
    )
    with PlanServer(config) as server:
        # Warm pass: every shape in the mix lands in the plan cache.
        with ServerClient(port=server.port, timeout=300.0, retries=3) as warm:
            for sql in QUERY_MIX:
                warm.optimize(sql, include_plan=False)

        barrier = threading.Barrier(clients)
        threads = [ClosedLoopClient(server.port, requests, barrier) for _ in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

        poisoned = run_poisoned_batch(server.port)

        with ServerClient(port=server.port) as probe:
            stats = probe.stats()

    latencies = sorted(
        sample for thread in threads for sample in thread.latencies_ms
    )
    errors = [error for thread in threads for error in thread.errors]
    completed = len(latencies)
    return {
        "clients": clients,
        "requests_per_client": requests,
        "workers": workers,
        "completed": completed,
        "errors": errors[:10],
        "error_count": len(errors),
        "wall_seconds": wall,
        "qps": completed / wall if wall > 0 else float("inf"),
        "p50_ms": percentile(latencies, 0.50),
        "p95_ms": percentile(latencies, 0.95),
        "p99_ms": percentile(latencies, 0.99),
        "max_ms": latencies[-1] if latencies else None,
        "cache_hit_rate": stats["plans"]["hit_rate"],
        "poisoned_batch": poisoned,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run (4 clients x 25 requests)",
    )
    parser.add_argument(
        "--out", default=str(OUT_PATH),
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = parser.parse_args(argv)

    clients = 4 if args.smoke else max(MIN_CLIENTS, CLIENTS)
    requests = 25 if args.smoke else REQUESTS
    workers = 2

    print(
        f"bench_server_latency: {clients} closed-loop clients x {requests} "
        f"requests over {len(QUERY_MIX)} TPC-H shapes (workers={workers})"
    )
    run = measure(clients, requests, workers)
    print(
        f"  completed={run['completed']}  qps={run['qps']:,.0f}  "
        f"p50={run['p50_ms']:.2f}ms  p95={run['p95_ms']:.2f}ms  "
        f"p99={run['p99_ms']:.2f}ms  hit_rate={run['cache_hit_rate']:.0%}"
    )
    print(
        f"  poisoned batch: {run['poisoned_batch']['succeeded']}/"
        f"{run['poisoned_batch']['total']} planned, failed indexes "
        f"{run['poisoned_batch']['failed_indexes']} "
        f"(isolated={run['poisoned_batch']['isolated']})"
    )

    payload = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "p50_target_ms": P50_TARGET_MS,
        "run": run,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {args.out}")

    failures = []
    if run["error_count"]:
        failures.append(f"{run['error_count']} request errors: {run['errors'][:3]}")
    if run["clients"] < MIN_CLIENTS:
        failures.append(f"only {run['clients']} clients (need >= {MIN_CLIENTS})")
    if run["p50_ms"] is None or run["p50_ms"] >= P50_TARGET_MS:
        failures.append(f"warm-cache p50 {run['p50_ms']}ms (target < {P50_TARGET_MS}ms)")
    if not run["poisoned_batch"]["isolated"]:
        failures.append(f"poisoned batch not isolated: {run['poisoned_batch']}")
    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}")
        return 1
    print("  ok: all acceptance targets met")
    return 0


def test_server_latency_smoke():
    """Pytest entry point: a small run must meet every acceptance target."""
    import tempfile

    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        assert main(["--smoke", "--out", tmp.name]) == 0


if __name__ == "__main__":
    sys.exit(main())
