"""Figure 15 — average plan cost of DPhyp relative to EA-All/EA-Prune.

Paper: the relative cost is ~1 at 3 relations and grows to ~18× at 13
relations (with extreme outliers up to 17,500×).  EA-All and EA-Prune are
cost-identical (pruning preserves optimality), so EA-Prune supplies the
optimal baseline here.
"""

import statistics

import pytest

from benchmarks.conftest import MAX_N, register_report, workload
from repro.api import OptimizerConfig, PlannerSession

SIZES = tuple(range(3, MAX_N + 1))

#: shared uncached session — benchmarks time the optimizer, so plan-cache
#: hits would corrupt every measurement.
SESSION = PlannerSession(config=OptimizerConfig(cache_capacity=None))


def _sweep():
    rows = []
    for n in SIZES:
        ratios = []
        for query in workload(n):
            lazy = SESSION.optimize(query, strategy="dphyp").cost
            optimal = SESSION.optimize(query, strategy="ea-prune").cost
            ratios.append(max(lazy / optimal, 1e-12) if optimal > 0 else 1.0)
        # The ratio distribution is heavy-tailed (the paper reports an
        # outlier of 17,500×), so the geometric mean is the robust summary.
        rows.append((n, statistics.geometric_mean(ratios), max(ratios)))
    return rows


def test_fig15_plan_cost(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'n':>3s} {'DPhyp/EA gmean':>15s} {'max':>12s}"]
    for n, mean, worst in rows:
        lines.append(f"{n:3d} {mean:15.2f} {worst:12.1f}")
    lines.append("paper: ratio ≈ 1 at n=3, growing to ≈ 18 at n=13 (outliers ≫)")
    register_report("Fig. 15 — plan cost DPhyp vs EA-Prune (relative)", lines)

    # Shape assertions: eager aggregation never loses, and the advantage
    # is substantial across all sizes.
    for _, mean, _ in rows:
        assert mean >= 1.0 - 1e-9
    assert max(mean for _, mean, _ in rows) > 2.0


def test_fig15_pruning_preserves_optimality(benchmark):
    """EA-All ≡ EA-Prune in plan cost (the identity claimed in Sec. 5.1)."""
    queries = workload(6)

    def check():
        for query in queries:
            assert SESSION.optimize(query, strategy="ea-all").cost == pytest.approx(
                SESSION.optimize(query, strategy="ea-prune").cost, rel=1e-9
            )

    benchmark.pedantic(check, rounds=1, iterations=1)
