"""Hot-path perf harness: indexed engine vs the seed reference engine.

Times :func:`repro.optimizer.optimize` on the four classic join topologies
(:mod:`repro.workload.topologies`) per strategy and engine, and writes the
results to a JSON file — the repository's perf-trajectory artifact that
future perf PRs diff against.

Engines (see docs/architecture.md):

* ``indexed`` — the hot path: iterative enumerator, per-vertex hypergraph
  indexes + memos, precomputed per-edge join specs, Pareto-bucket
  EA-Prune.
* ``reference`` — the seed code path (recursive enumerator, linear edge
  scans, uncached builder, unordered pairwise-scan buckets).  Both
  engines share a few module-level pure-function memos, so recorded
  speedups *understate* the gap to the true pre-refactor seed.

The harness asserts, per case, that both engines produce the same plan
cost / ccp count / table sizes, and (in full mode) that the headline
EA-Prune speedups meet the committed target.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py                  # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick          # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick \\
        --baseline benchmarks/BENCH_hotpath.json                       # regression gate

The baseline gate compares matching (topology, n, strategy, engine)
cases and fails (exit 1) when any case slower than ``--max-regression``
(default 2.0×) is found; cases under 50 ms in the baseline are ignored
as noise.  The JSON is rewritten after every case, so partial results
survive interruption.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.optimizer import optimize
from repro.optimizer.planinfo import clear_memo_caches
from repro.optimizer.strategies import reset_prune_caches
from repro.workload import topology_query

SCHEMA = "bench-hotpath/v1"

#: (topology, strategy, sizes, with_reference).  Ordered so the headline
#: EA-Prune chain-12 measurements land first, the cheap breadth next, and
#: the multi-hour star-12 reference run last — the JSON is written
#: incrementally, so an interrupted run still leaves a usable artifact.
FULL_CASES = [
    ("chain", "ea-prune", [8, 10, 12], True),
    ("cycle", "ea-prune", [8, 10], True),
    ("clique", "ea-prune", [6, 7], True),
    ("chain", "dphyp", [8, 10, 12, 14], True),
    ("cycle", "dphyp", [8, 10, 12, 14], True),
    ("star", "dphyp", [8, 10, 12, 14], True),
    ("clique", "dphyp", [8, 10], True),
    ("chain", "h1", [8, 10, 12, 14], True),
    ("star", "h1", [8, 10, 12, 14], True),
    ("chain", "h2", [8, 10, 12], True),
    ("star", "h2", [8, 10, 12], True),
    ("chain", "ea-all", [6], True),
    ("star", "ea-all", [6], True),
    ("star", "ea-prune", [8, 10, 12], True),
]

QUICK_CASES = [
    ("chain", "ea-prune", [8], True),
    ("star", "ea-prune", [8], True),
    ("cycle", "ea-prune", [8], True),
    ("clique", "ea-prune", [6], True),
    ("chain", "dphyp", [8], False),
    ("cycle", "dphyp", [8], False),
    ("star", "dphyp", [8], False),
    ("clique", "dphyp", [8], False),
]

#: (topology, n, strategy) → minimum required reference/indexed speedup,
#: asserted on full runs (the committed perf target of this refactor).
FULL_SPEEDUP_TARGETS = {
    ("chain", 12, "ea-prune"): 3.0,
    ("star", 12, "ea-prune"): 3.0,
}

#: Per-measurement repetitions: re-run short cases and keep the minimum.
FAST_CASE_SECONDS = 5.0
FAST_CASE_REPEAT = 3


def _reset_global_caches() -> None:
    """Start every measurement cold: drop all cross-run memo state."""
    reset_prune_caches()
    clear_memo_caches()


def _measure(topology: str, n: int, strategy: str, engine: str) -> dict:
    """Time one (topology, n, strategy, engine) case; min over repeats."""
    best = None
    result = None
    repeats = 1
    for attempt in range(FAST_CASE_REPEAT):
        query = topology_query(topology, n)
        _reset_global_caches()
        started = time.perf_counter()
        result = optimize(query, strategy, engine=engine)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        if elapsed >= FAST_CASE_SECONDS:
            break
        repeats = attempt + 1
    return {
        "topology": topology,
        "n": n,
        "strategy": strategy,
        "engine": engine,
        "seconds": best,
        "repeats": repeats,
        "cost": result.cost,
        "ccp_count": result.ccp_count,
        "plans_built": result.plans_built,
        "max_bucket": max(result.table_sizes.values()),
    }


def _write(out_path: Path, payload: dict) -> None:
    """Atomic rewrite so a killed run never leaves a truncated artifact."""
    tmp = out_path.with_suffix(out_path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, out_path)


def _compute_speedups(cases: list) -> list:
    by_key = {}
    for case in cases:
        by_key[(case["topology"], case["n"], case["strategy"], case["engine"])] = case
    speedups = []
    for (topology, n, strategy, engine), case in sorted(
        by_key.items(), key=lambda item: (item[0][0], item[0][1], item[0][2])
    ):
        if engine != "indexed":
            continue
        reference = by_key.get((topology, n, strategy, "reference"))
        if reference is None:
            continue
        speedups.append(
            {
                "topology": topology,
                "n": n,
                "strategy": strategy,
                "indexed_seconds": case["seconds"],
                "reference_seconds": reference["seconds"],
                "speedup": reference["seconds"] / case["seconds"],
            }
        )
    return speedups


def run(cases, out_path: Path, mode: str) -> dict:
    payload = {
        "schema": SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "generated_unix": int(time.time()),
        "cases": [],
        "speedups": [],
    }
    mismatches = []
    for topology, strategy, sizes, with_reference in cases:
        for n in sizes:
            engines = ["indexed", "reference"] if with_reference else ["indexed"]
            measured = {}
            for engine in engines:
                case = _measure(topology, n, strategy, engine)
                measured[engine] = case
                payload["cases"].append(case)
                payload["speedups"] = _compute_speedups(payload["cases"])
                _write(out_path, payload)
                print(
                    f"{engine:9s} {topology:6s} n={n:2d} {strategy:8s}: "
                    f"{case['seconds']:9.3f}s  plans={case['plans_built']}",
                    flush=True,
                )
            if len(measured) == 2:
                indexed, reference = measured["indexed"], measured["reference"]
                same = (
                    indexed["cost"] == reference["cost"]
                    and indexed["ccp_count"] == reference["ccp_count"]
                    and indexed["plans_built"] == reference["plans_built"]
                )
                if not same:
                    mismatches.append((topology, n, strategy))
    if mismatches:
        print(f"ENGINE MISMATCH (cost/ccp/plans differ): {mismatches}", file=sys.stderr)
        raise SystemExit(2)
    return payload


def check_speedup_targets(payload: dict, targets: dict) -> bool:
    ok = True
    by_key = {
        (s["topology"], s["n"], s["strategy"]): s["speedup"]
        for s in payload["speedups"]
    }
    for key, minimum in targets.items():
        speedup = by_key.get(key)
        if speedup is None:
            print(f"speedup target {key}: NOT MEASURED", file=sys.stderr)
            ok = False
        elif speedup < minimum:
            print(
                f"speedup target {key}: {speedup:.2f}x < required {minimum:.1f}x",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"speedup target {key}: {speedup:.2f}x (>= {minimum:.1f}x) OK")
    return ok


def check_baseline(payload: dict, baseline_path: Path, max_regression: float) -> bool:
    """Compare indexed timings against a committed baseline artifact."""
    if not baseline_path.exists():
        print(
            f"baseline {baseline_path} not found — regenerate it with a full "
            f"run: PYTHONPATH=src python benchmarks/bench_hotpath.py "
            f"--out {baseline_path}",
            file=sys.stderr,
        )
        return False
    baseline = json.loads(baseline_path.read_text())
    baseline_by_key = {
        (c["topology"], c["n"], c["strategy"], c["engine"]): c
        for c in baseline.get("cases", [])
    }
    ok = True
    compared = 0
    for case in payload["cases"]:
        if case["engine"] != "indexed":
            continue
        key = (case["topology"], case["n"], case["strategy"], case["engine"])
        base = baseline_by_key.get(key)
        if base is None or base["seconds"] < 0.05:
            continue  # absent or too small to compare reliably
        compared += 1
        ratio = case["seconds"] / base["seconds"]
        marker = "REGRESSION" if ratio > max_regression else "ok"
        print(
            f"baseline {key}: {base['seconds']:.3f}s -> {case['seconds']:.3f}s "
            f"({ratio:.2f}x) {marker}"
        )
        if ratio > max_regression:
            ok = False
    if compared == 0:
        print("baseline: no comparable cases (all below the 50 ms noise floor)")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke case list")
    parser.add_argument("--out", default="BENCH_hotpath.json", help="output JSON path")
    parser.add_argument(
        "--baseline", default=None,
        help="committed artifact to diff against (fails on regression)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="maximum tolerated slowdown vs the baseline (default 2.0x)",
    )
    parser.add_argument(
        "--no-speedup-check", action="store_true",
        help="skip the full-run EA-Prune speedup assertions",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    cases = QUICK_CASES if args.quick else FULL_CASES
    out_path = Path(args.out)
    payload = run(cases, out_path, mode)

    failed = False
    if mode == "full" and not args.no_speedup_check:
        if not check_speedup_targets(payload, FULL_SPEEDUP_TARGETS):
            failed = True
    if args.baseline:
        if not check_baseline(payload, Path(args.baseline), args.max_regression):
            failed = True

    for speedup in payload["speedups"]:
        print(
            f"speedup {speedup['topology']:6s} n={speedup['n']:2d} "
            f"{speedup['strategy']:8s}: {speedup['speedup']:6.2f}x "
            f"({speedup['reference_seconds']:.3f}s -> {speedup['indexed_seconds']:.3f}s)"
        )
    print(f"wrote {out_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
