"""Hot-path perf harness: indexed vs reference vs vectorized engines.

Times :func:`repro.optimizer.optimize` on the four classic join topologies
(:mod:`repro.workload.topologies`) per strategy and engine, and writes the
results to a JSON file — the repository's perf-trajectory artifact that
future perf PRs diff against.

Engines (see docs/architecture.md):

* ``indexed`` — the hot path: iterative enumerator, per-vertex hypergraph
  indexes + memos, precomputed per-edge join specs, Pareto-bucket
  EA-Prune.
* ``reference`` — the seed code path (recursive enumerator, linear edge
  scans, uncached builder, unordered pairwise-scan buckets).  Both
  engines share a few module-level pure-function memos, so recorded
  speedups *understate* the gap to the true pre-refactor seed.
* ``vectorized`` — numpy array lanes over shape-blocked bucket pairs with
  deferred plan materialisation.  EA-Prune's multi-plan buckets are where
  the lanes amortise, so vectorized rows concentrate there, plus a few
  heuristic/DP scale rows for coverage; all vectorized rows are skipped
  (with a note) when numpy is unavailable.

The harness asserts, per case, that every engine produces the same plan
cost / ccp count / plans built, and (in full mode) that the committed
EA-Prune speedup targets hold — reference→indexed and, where a
vectorized row exists, indexed→vectorized.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py                  # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick          # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick \\
        --baseline benchmarks/BENCH_hotpath.json                       # regression gate

The baseline gate compares matching (topology, n, strategy, engine)
cases and fails (exit 1) when any case slower than ``--max-regression``
(default 2.0×) is found; cases under 50 ms in the baseline are ignored
as noise.  The JSON is rewritten after every case, so partial results
survive interruption.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.optimizer import optimize
from repro.optimizer.planinfo import clear_memo_caches
from repro.optimizer.strategies import reset_prune_caches
from repro.workload import topology_query

SCHEMA = "bench-hotpath/v2"

#: Engine lists per case.  ``IRV`` rows are the headline three-way
#: comparisons; ``IV`` rows are sizes where the reference engine would
#: take tens of minutes (clique-8 EA-Prune) or adds nothing (scale rows).
IR = ("indexed", "reference")
IV = ("indexed", "vectorized")  # reference omitted: tens of minutes at these sizes
IRV = ("indexed", "reference", "vectorized")

#: (topology, strategy, sizes, engines).  Ordered so the headline
#: EA-Prune measurements land first, the cheap breadth next, and the
#: slowest rows (clique-8, the scale rows) last — the JSON is written
#: incrementally, so an interrupted run still leaves a usable artifact.
FULL_CASES = [
    ("chain", "ea-prune", [8, 10], IRV),
    ("cycle", "ea-prune", [8, 10], IRV),
    ("star", "ea-prune", [8, 10], IRV),
    ("clique", "ea-prune", [6, 7], IRV),
    ("chain", "dphyp", [8, 10, 12, 14], IR),
    ("cycle", "dphyp", [8, 10, 12, 14], IR),
    ("star", "dphyp", [8, 10, 12, 14], IR),
    ("clique", "dphyp", [8, 10], IR),
    ("chain", "h1", [8, 10, 12, 14], IR),
    ("star", "h1", [8, 10, 12, 14], IR),
    ("chain", "h2", [8, 10, 12], IR),
    ("star", "h2", [8, 10, 12], IR),
    ("chain", "ea-all", [6], IR),
    ("star", "ea-all", [6], IR),
    ("clique", "dphyp", [12], IV),
    ("star", "h1", [16, 18], IV),
    ("clique", "ea-prune", [8], IV),
]

QUICK_CASES = [
    ("chain", "ea-prune", [8], IRV),
    ("star", "ea-prune", [8], IRV),
    ("cycle", "ea-prune", [8], IRV),
    ("clique", "ea-prune", [6], IRV),
    ("chain", "dphyp", [8], ("indexed",)),
    ("cycle", "dphyp", [8], ("indexed",)),
    ("star", "dphyp", [8], ("indexed",)),
    ("clique", "dphyp", [8], ("indexed",)),
]

#: (topology, n, strategy) → minimum required reference/indexed speedup,
#: asserted on full runs (the committed perf target of the hot-path
#: refactor).  n=10 is the largest size where the reference engine
#: finishes in minutes; the measured ratio there is ~3.0× and keeps
#: growing with n (chain-12 measured 7.1×), so 2.5 leaves noise margin
#: without understating the trend.
FULL_SPEEDUP_TARGETS = {
    ("chain", 10, "ea-prune"): 2.5,
    ("star", 10, "ea-prune"): 2.5,
}

#: (topology, n, strategy) → minimum required indexed/vectorized speedup.
#: The lanes win where buckets are wide and shape-uniform (star EA-Prune:
#: measured 1.33× at n=8, 1.17× at n=10) and lose where singleton
#: block-pairs dominate (clique-8: measured 0.80×) — the star target
#: asserts an outright win, the others bound the loss.
VECTORIZED_SPEEDUP_TARGETS = {
    ("star", 10, "ea-prune"): 1.0,
    ("chain", 10, "ea-prune"): 0.8,
    ("clique", 8, "ea-prune"): 0.7,
}

#: Per-measurement repetitions: re-run short cases and keep the minimum.
FAST_CASE_SECONDS = 5.0
FAST_CASE_REPEAT = 3


def _reset_global_caches() -> None:
    """Start every measurement cold: drop all cross-run memo state."""
    reset_prune_caches()
    clear_memo_caches()


def _measure(topology: str, n: int, strategy: str, engine: str) -> dict:
    """Time one (topology, n, strategy, engine) case; min over repeats."""
    best = None
    result = None
    repeats = 1
    for attempt in range(FAST_CASE_REPEAT):
        query = topology_query(topology, n)
        _reset_global_caches()
        started = time.perf_counter()
        result = optimize(query, strategy, engine=engine)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        if elapsed >= FAST_CASE_SECONDS:
            break
        repeats = attempt + 1
    return {
        "topology": topology,
        "n": n,
        "strategy": strategy,
        "engine": engine,
        "seconds": best,
        "repeats": repeats,
        "cost": result.cost,
        "ccp_count": result.ccp_count,
        "plans_built": result.plans_built,
        "max_bucket": max(result.table_sizes.values()),
    }


def _write(out_path: Path, payload: dict) -> None:
    """Atomic rewrite so a killed run never leaves a truncated artifact."""
    tmp = out_path.with_suffix(out_path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, out_path)


def _compute_speedups(cases: list, slow_engine: str, fast_engine: str) -> list:
    """Pair up cases measured under both engines; speedup = slow/fast."""
    by_key = {}
    for case in cases:
        by_key[(case["topology"], case["n"], case["strategy"], case["engine"])] = case
    speedups = []
    for (topology, n, strategy, engine), case in sorted(
        by_key.items(), key=lambda item: (item[0][0], item[0][1], item[0][2])
    ):
        if engine != fast_engine:
            continue
        slow = by_key.get((topology, n, strategy, slow_engine))
        if slow is None:
            continue
        speedups.append(
            {
                "topology": topology,
                "n": n,
                "strategy": strategy,
                f"{fast_engine}_seconds": case["seconds"],
                f"{slow_engine}_seconds": slow["seconds"],
                "speedup": slow["seconds"] / case["seconds"],
            }
        )
    return speedups


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def run(cases, out_path: Path, mode: str) -> dict:
    payload = {
        "schema": SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "generated_unix": int(time.time()),
        "cases": [],
        "speedups": [],
        "vectorized_speedups": [],
    }
    have_numpy = _numpy_available()
    mismatches = []
    for topology, strategy, sizes, engines in cases:
        for n in sizes:
            measured = {}
            for engine in engines:
                if engine == "vectorized" and not have_numpy:
                    # Timing the warn-and-fall-back path would record an
                    # indexed run under a vectorized label — skip instead.
                    print(
                        f"vectorized {topology} n={n} {strategy}: "
                        f"SKIPPED (numpy unavailable)",
                        flush=True,
                    )
                    continue
                case = _measure(topology, n, strategy, engine)
                measured[engine] = case
                payload["cases"].append(case)
                payload["speedups"] = _compute_speedups(
                    payload["cases"], "reference", "indexed"
                )
                payload["vectorized_speedups"] = _compute_speedups(
                    payload["cases"], "indexed", "vectorized"
                )
                _write(out_path, payload)
                print(
                    f"{engine:10s} {topology:6s} n={n:2d} {strategy:8s}: "
                    f"{case['seconds']:9.3f}s  plans={case['plans_built']}",
                    flush=True,
                )
            indexed = measured.get("indexed")
            for engine, case in measured.items():
                if engine == "indexed" or indexed is None:
                    continue
                same = (
                    indexed["cost"] == case["cost"]
                    and indexed["ccp_count"] == case["ccp_count"]
                    and indexed["plans_built"] == case["plans_built"]
                )
                if not same:
                    mismatches.append((topology, n, strategy, engine))
    if mismatches:
        print(f"ENGINE MISMATCH (cost/ccp/plans differ): {mismatches}", file=sys.stderr)
        raise SystemExit(2)
    return payload


def check_speedup_targets(speedups: list, targets: dict, label: str) -> bool:
    ok = True
    by_key = {(s["topology"], s["n"], s["strategy"]): s["speedup"] for s in speedups}
    for key, minimum in targets.items():
        speedup = by_key.get(key)
        if speedup is None:
            print(f"{label} target {key}: NOT MEASURED", file=sys.stderr)
            ok = False
        elif speedup < minimum:
            print(
                f"{label} target {key}: {speedup:.2f}x < required {minimum:.1f}x",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"{label} target {key}: {speedup:.2f}x (>= {minimum:.1f}x) OK")
    return ok


def check_baseline(payload: dict, baseline_path: Path, max_regression: float) -> bool:
    """Compare indexed timings against a committed baseline artifact."""
    if not baseline_path.exists():
        print(
            f"baseline {baseline_path} not found — regenerate it with a full "
            f"run: PYTHONPATH=src python benchmarks/bench_hotpath.py "
            f"--out {baseline_path}",
            file=sys.stderr,
        )
        return False
    baseline = json.loads(baseline_path.read_text())
    baseline_by_key = {
        (c["topology"], c["n"], c["strategy"], c["engine"]): c
        for c in baseline.get("cases", [])
    }
    ok = True
    compared = 0
    for case in payload["cases"]:
        if case["engine"] != "indexed":
            continue
        key = (case["topology"], case["n"], case["strategy"], case["engine"])
        base = baseline_by_key.get(key)
        if base is None or base["seconds"] < 0.05:
            continue  # absent or too small to compare reliably
        compared += 1
        ratio = case["seconds"] / base["seconds"]
        marker = "REGRESSION" if ratio > max_regression else "ok"
        print(
            f"baseline {key}: {base['seconds']:.3f}s -> {case['seconds']:.3f}s "
            f"({ratio:.2f}x) {marker}"
        )
        if ratio > max_regression:
            ok = False
    if compared == 0:
        print("baseline: no comparable cases (all below the 50 ms noise floor)")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke case list")
    parser.add_argument("--out", default="BENCH_hotpath.json", help="output JSON path")
    parser.add_argument(
        "--baseline", default=None,
        help="committed artifact to diff against (fails on regression)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="maximum tolerated slowdown vs the baseline (default 2.0x)",
    )
    parser.add_argument(
        "--no-speedup-check", action="store_true",
        help="skip the full-run EA-Prune speedup assertions",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    cases = QUICK_CASES if args.quick else FULL_CASES
    out_path = Path(args.out)
    payload = run(cases, out_path, mode)

    failed = False
    if mode == "full" and not args.no_speedup_check:
        if not check_speedup_targets(
            payload["speedups"], FULL_SPEEDUP_TARGETS, "speedup"
        ):
            failed = True
        if payload["vectorized_speedups"] and not check_speedup_targets(
            payload["vectorized_speedups"],
            VECTORIZED_SPEEDUP_TARGETS,
            "vectorized speedup",
        ):
            failed = True
    if args.baseline:
        if not check_baseline(payload, Path(args.baseline), args.max_regression):
            failed = True

    for speedup in payload["speedups"]:
        print(
            f"speedup {speedup['topology']:6s} n={speedup['n']:2d} "
            f"{speedup['strategy']:8s}: {speedup['speedup']:6.2f}x "
            f"({speedup['reference_seconds']:.3f}s -> {speedup['indexed_seconds']:.3f}s)"
        )
    for speedup in payload["vectorized_speedups"]:
        print(
            f"vectorized {speedup['topology']:6s} n={speedup['n']:2d} "
            f"{speedup['strategy']:8s}: {speedup['speedup']:6.2f}x "
            f"({speedup['indexed_seconds']:.3f}s -> {speedup['vectorized_seconds']:.3f}s)"
        )
    print(f"wrote {out_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
