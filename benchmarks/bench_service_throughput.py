"""Service-layer throughput: cold single-query vs. warm-cache batches.

Not a paper figure — this measures the serving layer added on top of the
reproduction: the plan cache and the parallel batch driver
(:mod:`repro.service`).  Three regimes over the same generated workload
(Sec. 5 methodology, shapes repeated the way parameterised production
traffic repeats them):

1. **cold serial** — one ``optimize()`` call per query, no cache: the
   baseline a naive serving loop would achieve,
2. **cold batch** — first :func:`repro.service.run_batch` over the
   workload: within-batch dedup plus parallel workers,
3. **warm batch** — the identical batch again: every query is a cache
   hit.

Acceptance targets: warm-batch throughput >= 5x cold single-query
throughput, and a 100% cache hit rate on the second batch.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -q
"""

from __future__ import annotations

import os
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.api import OptimizerConfig, PlannerSession
from repro.workload import generate_workload

#: >= 100 queries per the acceptance criterion; override for smoke runs.
WORKLOAD_SIZE = int(os.environ.get("REPRO_SERVICE_QUERIES", "120"))
N_RELATIONS = int(os.environ.get("REPRO_SERVICE_N", "5"))
SPEEDUP_TARGET = 5.0


def measure(workers: int | None = None, size: int = WORKLOAD_SIZE) -> dict:
    """Run the three regimes and return their metrics."""
    rng = random.Random(7919)
    unique = max(1, size // 4)
    workload = generate_workload(size, N_RELATIONS, rng, unique=unique)

    # The naive baseline plans through an *uncached* session so every
    # query pays the full DP run.
    baseline = PlannerSession(config=OptimizerConfig(cache_capacity=None))
    started = time.perf_counter()
    for query in workload:
        baseline.optimize(query)
    cold_serial_seconds = time.perf_counter() - started

    session = PlannerSession(
        config=OptimizerConfig(workers=workers, cache_capacity=2 * size)
    )
    cold = session.run_batch(workload)
    warm = session.run_batch(workload)

    return {
        "size": size,
        "unique": unique,
        "workers": cold.workers,
        "cold_serial_qps": size / cold_serial_seconds,
        "cold_batch": cold,
        "warm_batch": warm,
        "cache": session.cache,
    }


def report_lines(metrics: dict) -> list:
    cold, warm = metrics["cold_batch"], metrics["warm_batch"]
    speedup = warm.queries_per_second / metrics["cold_serial_qps"]
    return [
        f"workload: {metrics['size']} queries "
        f"({metrics['unique']} distinct shapes, n={N_RELATIONS}), "
        f"{metrics['workers']} workers",
        f"{'cold serial':14s} {metrics['cold_serial_qps']:12,.1f} q/s",
        f"{'cold batch':14s} {cold.queries_per_second:12,.1f} q/s   "
        f"hit rate {cold.hit_rate:4.0%}   optimized {cold.total - cold.hits}",
        f"{'warm batch':14s} {warm.queries_per_second:12,.1f} q/s   "
        f"hit rate {warm.hit_rate:4.0%}   optimized {warm.total - warm.hits}",
        f"warm / cold-serial speedup: {speedup:,.1f}x  (target >= {SPEEDUP_TARGET:.0f}x)",
    ]


def test_service_throughput():
    from benchmarks.conftest import register_report

    metrics = measure()
    register_report("Service — batch throughput (plan cache + workers)", report_lines(metrics))

    warm = metrics["warm_batch"]
    assert warm.hit_rate == 1.0, "second identical batch must be all cache hits"
    assert warm.queries_per_second >= SPEEDUP_TARGET * metrics["cold_serial_qps"], (
        f"warm batch {warm.queries_per_second:,.1f} q/s below "
        f"{SPEEDUP_TARGET}x cold serial {metrics['cold_serial_qps']:,.1f} q/s"
    )


def test_batch_matches_single_query_costs():
    """The driver must not change *what* is planned, only how often."""
    rng = random.Random(1234)
    workload = generate_workload(12, N_RELATIONS, rng, unique=6)
    session = PlannerSession(config=OptimizerConfig(cache_capacity=64))
    report = session.run_batch(workload)
    single = PlannerSession(config=OptimizerConfig(cache_capacity=None))
    for item, query in zip(report.items, workload):
        assert item.cost == single.optimize(query).cost


def main() -> int:
    smoke = "--smoke" in sys.argv
    size = 24 if smoke else WORKLOAD_SIZE
    metrics = measure(size=size)
    for line in report_lines(metrics):
        print(line)
    warm = metrics["warm_batch"]
    ok = warm.hit_rate == 1.0 and (
        smoke or warm.queries_per_second >= SPEEDUP_TARGET * metrics["cold_serial_qps"]
    )
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
