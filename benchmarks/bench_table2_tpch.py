"""Table 2 — optimization time and plan cost for the TPC-H queries.

Paper values (for comparison; absolute times are C++ and ours Python, so
the *relative* rows are the reproduction target):

    query                 Ex      Q3      Q5     Q10
    Rel. time EA/DPhyp    1.9     1.42    7.34   1.96
    Rel. time H1/DPhyp    1.55    1.13    1.02   1.16
    Rel. time H2/DPhyp    1.26    1.31    1.26   2.04
    Rel. cost EA/DPhyp    6.1e-4  0.65    0.9    0.58
    Rel. cost H1/DPhyp    6.1e-4  0.92    0.9    0.58
    Rel. cost H2/DPhyp    6.1e-4  0.65    0.9    0.58
"""

import statistics

import pytest

from benchmarks.conftest import register_report
from repro.api import OptimizerConfig, PlannerSession
from repro.tpch import TPCH_QUERIES

STRATEGIES = ("ea-prune", "h1", "h2", "dphyp")

#: shared uncached session — benchmarks time the optimizer, so plan-cache
#: hits would corrupt every measurement.
SESSION = PlannerSession(config=OptimizerConfig(cache_capacity=None))
PAPER_REL_COST = {
    ("Ex", "ea-prune"): 6.1e-4, ("Ex", "h1"): 6.1e-4, ("Ex", "h2"): 6.1e-4,
    ("Q3", "ea-prune"): 0.65, ("Q3", "h1"): 0.92, ("Q3", "h2"): 0.65,
    ("Q5", "ea-prune"): 0.9, ("Q5", "h1"): 0.9, ("Q5", "h2"): 0.9,
    ("Q10", "ea-prune"): 0.58, ("Q10", "h1"): 0.58, ("Q10", "h2"): 0.58,
}

_TIMES = {}
_COSTS = {}

CASES = [(name, strategy) for name in TPCH_QUERIES for strategy in STRATEGIES]


@pytest.mark.parametrize("name,strategy", CASES, ids=[f"{q}-{s}" for q, s in CASES])
def test_table2(benchmark, name, strategy):
    query = TPCH_QUERIES[name](1.0)

    result_holder = {}

    def run():
        result_holder["result"] = SESSION.optimize(query, strategy=strategy)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    _TIMES[(name, strategy)] = statistics.median(benchmark.stats.stats.data)
    _COSTS[(name, strategy)] = result_holder["result"].cost
    _publish()


def _publish():
    names = list(TPCH_QUERIES)
    lines = [f"{'':24s}" + "".join(f"{n:>12s}" for n in names)]
    for strategy in STRATEGIES:
        cells = []
        for name in names:
            t = _TIMES.get((name, strategy))
            cells.append(f"{t * 1000:10.3f}ms" if t is not None else f"{'—':>12s}")
        lines.append(f"Time {strategy:19s}" + "".join(cells))
    for strategy in ("ea-prune", "h1", "h2"):
        cells = []
        for name in names:
            t = _TIMES.get((name, strategy))
            base = _TIMES.get((name, "dphyp"))
            cells.append(f"{t / base:12.2f}" if t and base else f"{'—':>12s}")
        lines.append(f"Rel. time {strategy}/dphyp".ljust(24) + "".join(cells))
    for strategy in ("ea-prune", "h1", "h2"):
        cells = []
        for name in names:
            c = _COSTS.get((name, strategy))
            base = _COSTS.get((name, "dphyp"))
            cells.append(f"{c / base:12.3g}" if c is not None and base else f"{'—':>12s}")
        lines.append(f"Rel. cost {strategy}/dphyp".ljust(24) + "".join(cells))
    lines.append("paper rel. cost EA/DPhyp: Ex 6.1e-4, Q3 0.65, Q5 0.9, Q10 0.58")
    lines.append("paper rel. time EA/DPhyp: Ex 1.9, Q3 1.42, Q5 7.34, Q10 1.96")
    register_report("Table 2 — TPC-H optimization time and plan cost", lines)


def test_table2_shape_assertions(benchmark):
    """The qualitative claims of Sec. 5.4, asserted."""

    def check():
        costs = {}
        for name in TPCH_QUERIES:
            query = TPCH_QUERIES[name](1.0)
            for strategy in ("ea-prune", "dphyp"):
                costs[(name, strategy)] = SESSION.optimize(query, strategy=strategy).cost
        return costs

    costs = benchmark.pedantic(check, rounds=1, iterations=1)
    # Ex benefits most (the outerjoin barrier falls) ...
    assert costs[("Ex", "ea-prune")] < costs[("Ex", "dphyp")] * 1e-3
    # ... and no query gets worse.
    for name in TPCH_QUERIES:
        assert costs[(name, "ea-prune")] <= costs[(name, "dphyp")] * (1 + 1e-9)
    # Ex gains more than every classic TPC-H query (Q5 gains least).
    rel = {
        name: costs[(name, "ea-prune")] / costs[(name, "dphyp")]
        for name in TPCH_QUERIES
    }
    assert rel["Ex"] == min(rel.values())
