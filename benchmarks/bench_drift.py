"""Serving throughput while catalog statistics drift mid-run.

Exercises the plan lifecycle the way production statistics maintenance
does: a pipelined workload runs hot against the async tier while
``POST /stats_update`` lands a cardinality drift **mid-phase**.  The
tier must keep answering from (stale) cached plans while background
revalidation re-costs or re-plans them — serving never stops for a
statistics refresh:

1. **Steady state** — pipelined closed-loop clients over the warm cache
   measure the reference throughput (the committed ``steady_qps``).
2. **Drift phases** — the same workload re-runs once per drift factor
   (1x, 4x, 16x on ``DRIFT_TABLE``); ~40% into each phase one
   ``/stats_update`` fires.  The 1x refresh re-costs every stale entry
   to its identical cost (the bit-for-bit replay, live); larger factors
   push entries past ``recost_bound`` into full replans.  Each phase's
   throughput must stay >= ``THROUGHPUT_FLOOR`` of steady state.
3. **Lifecycle evidence** — the final ``/stats`` must show
   ``plans.stale_served > 0`` (requests answered from stale entries
   while revalidation ran) and ``plans.recosted > 0`` (entries brought
   back fresh by replay, not re-enumeration).

Results land in ``benchmarks/BENCH_drift.json`` (schema
``bench-drift/v1``).  ``--baseline`` diffs a fresh run against the
committed artifact (CI regression gate); ``--smoke`` shrinks the phases
for CI runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_drift.py                    # full run
    PYTHONPATH=src python benchmarks/bench_drift.py --smoke \
        --out /tmp/drift.json --baseline benchmarks/BENCH_drift.json   # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from collections import Counter
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.asyncserver import AsyncPlanServer, AsyncServerConfig, tune_gc_for_serving
from repro.server.client import ServerClient

SCHEMA = "bench-drift/v1"
OUT_PATH = Path(__file__).resolve().parent / "BENCH_drift.json"

#: drift factors applied mid-phase, in order (multiplicative — the
#: catalog ends the run at their product).  1x first: a refresh whose
#: re-cost must reproduce every cached cost exactly.
DRIFT_FACTORS = (1.0, 4.0, 16.0)
DRIFT_TABLE = "nation"
#: each drift phase must keep at least this fraction of steady-state
#: throughput — the stale-while-revalidate contract.
THROUGHPUT_FLOOR = 0.8
BASELINE_RATIO = 0.25  # fresh steady qps must keep >= 25% of committed
SHARDS = 2
#: wide banding (one decade) so moderate drift stays inside the cached
#: entry's banded key and the stale-serving path engages instead of a
#: cold miss.
BAND_WIDTH = 1.0

#: most of the mix touches DRIFT_TABLE, so one drift marks several
#: entries stale across shards; aliases vary to exercise the
#: rename-stable fingerprint path.
QUERY_MIX = [
    "SELECT ns.n_name, count(*) AS cnt FROM nation ns "
    "JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name",
    "SELECT n2.n_name, count(*) AS cnt FROM nation n2 "
    "JOIN supplier sup ON n2.n_nationkey = sup.s_nationkey GROUP BY n2.n_name",
    "SELECT c.c_custkey, c.c_name, "
    "sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
    "FROM customer c "
    "JOIN orders o ON c.c_custkey = o.o_custkey "
    "JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
    "JOIN nation n ON c.c_nationkey = n.n_nationkey "
    "WHERE o.o_orderdate >= 639 AND o.o_orderdate < 731 "
    "GROUP BY c.c_custkey, c.c_name",
    "SELECT s.s_name, count(*) AS cnt FROM supplier s "
    "JOIN nation n ON s.s_nationkey = n.n_nationkey "
    "JOIN customer c ON n.n_nationkey = c.c_nationkey GROUP BY s.s_name",
    "SELECT r.r_name, count(*) AS cnt FROM region r "
    "JOIN nation n ON r.r_regionkey = n.n_regionkey "
    "JOIN supplier s ON n.n_nationkey = s.s_nationkey GROUP BY r.r_name",
]


def _request_bytes(method: str, path: str, body: dict) -> bytes:
    data = json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        "Host: bench\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(data)}\r\n\r\n"
    )
    return head.encode("latin-1") + data


REQUESTS = [
    _request_bytes("POST", "/optimize", {"sql": sql, "include_plan": False})
    for sql in QUERY_MIX
]


async def _read_response(reader) -> int:
    header = await reader.readuntil(b"\r\n\r\n")
    length = int(header.lower().split(b"content-length: ")[1].split(b"\r\n")[0])
    await reader.readexactly(length)
    return int(header[9:12])


async def _pipelined_client(host, port, requests, window, statuses):
    reader, writer = await asyncio.open_connection(host, port)
    sent = received = 0
    while received < requests:
        while sent < requests and sent - received < window:
            writer.write(REQUESTS[sent % len(REQUESTS)])
            sent += 1
        statuses[await _read_response(reader)] += 1
        received += 1
    writer.close()


async def _post_json(host, port, path, body) -> int:
    """One-off request on its own connection (the drift injector)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(_request_bytes("POST", path, body))
    status = await _read_response(reader)
    writer.close()
    return status


async def run_phase(
    host,
    port,
    *,
    requests: int,
    clients: int = 4,
    window: int = 32,
    drift_factor=None,
    inject_after_seconds=None,
) -> dict:
    """One pipelined phase; optionally inject a drift partway through."""
    statuses: Counter = Counter()
    per_client = requests // clients
    injected = {"status": None, "at_seconds": None}

    async def injector(started: float) -> None:
        await asyncio.sleep(inject_after_seconds)
        injected["status"] = await _post_json(
            host, port, "/stats_update",
            {"table": DRIFT_TABLE, "cardinality_factor": drift_factor},
        )
        injected["at_seconds"] = time.perf_counter() - started
    started = time.perf_counter()
    tasks = [
        _pipelined_client(host, port, per_client, window, statuses)
        for _ in range(clients)
    ]
    if drift_factor is not None:
        tasks.append(injector(started))
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - started
    total = sum(statuses.values())
    return {
        "requests": total,
        "clients": clients,
        "window": window,
        "wall_seconds": wall,
        "qps": total / wall if wall > 0 else 0.0,
        "non_200": {str(k): v for k, v in statuses.items() if k != 200},
        "drift_factor": drift_factor,
        "injected": injected if drift_factor is not None else None,
    }


def measure(smoke: bool) -> dict:
    phase_requests = 2000 if smoke else 12000

    # revalidate_batch=1: a drift frame revalidates one entry inline and
    # leaves the rest stale for the idle-gap revalidator, so requests
    # queued behind the drift observably serve stale (the point of the
    # exercise).  BAND_WIDTH keeps moderate drift inside the banded key.
    config = AsyncServerConfig(
        port=0,
        shards=SHARDS,
        cache_capacity=512,
        max_inflight=256,
        snapshot_band_width=BAND_WIDTH,
        revalidate_batch=1,
    )
    with AsyncPlanServer(config) as server:
        with ServerClient(port=server.port, timeout=300.0, retries=3) as warm:
            for sql in QUERY_MIX:
                warm.optimize(sql, include_plan=False)

        # This process hosts the front event loop AND the load
        # generator; a full GC pass in either inflates the tail.
        tune_gc_for_serving()

        loop = asyncio.new_event_loop()
        try:
            steady = loop.run_until_complete(
                run_phase(server.host, server.port, requests=phase_requests)
            )
            est_phase_seconds = phase_requests / max(steady["qps"], 1.0)
            drift_phases = []
            for factor in DRIFT_FACTORS:
                phase = loop.run_until_complete(
                    run_phase(
                        server.host,
                        server.port,
                        requests=phase_requests,
                        drift_factor=factor,
                        inject_after_seconds=est_phase_seconds * 0.4,
                    )
                )
                phase["throughput_ratio"] = (
                    phase["qps"] / steady["qps"] if steady["qps"] else 0.0
                )
                drift_phases.append(phase)
        finally:
            loop.close()

        with ServerClient(port=server.port) as probe:
            stats = probe.stats()

    plans = stats["plans"]
    return {
        "shards": SHARDS,
        "band_width": BAND_WIDTH,
        "drift_table": DRIFT_TABLE,
        "steady": steady,
        "drift_phases": drift_phases,
        "plans": {
            "served": plans["served"],
            "cache_hits": plans["cache_hits"],
            "hit_rate": plans["hit_rate"],
            "stale_served": plans["stale_served"],
            "recosted": plans["recosted"],
            "replanned": plans["replanned"],
            "failures": plans["failures"],
        },
        "cache": {
            "marked_stale": stats["cache"].get("marked_stale", 0),
            "refreshed": stats["cache"].get("refreshed", 0),
            "stale_entries": stats["cache"].get("stale_entries", 0),
        },
    }


def acceptance_failures(run: dict) -> list:
    failures = []
    if run["steady"]["non_200"]:
        failures.append(f"steady phase saw non-200s: {run['steady']['non_200']}")
    for phase in run["drift_phases"]:
        label = f"{phase['drift_factor']:g}x drift"
        if phase["non_200"]:
            failures.append(f"{label} saw non-200s: {phase['non_200']}")
        if phase["injected"]["status"] != 200:
            failures.append(
                f"{label}: stats_update answered {phase['injected']['status']}"
            )
        if phase["throughput_ratio"] < THROUGHPUT_FLOOR:
            failures.append(
                f"{label}: throughput fell to {phase['throughput_ratio']:.0%} of "
                f"steady state (floor {THROUGHPUT_FLOOR:.0%})"
            )
    plans = run["plans"]
    if plans["stale_served"] <= 0:
        failures.append("no request was served from a stale entry (lifecycle idle?)")
    if plans["recosted"] <= 0:
        failures.append("no entry was revalidated by re-costing (replay path dead?)")
    if plans["failures"]:
        failures.append(f"optimizer failures during the run: {plans['failures']}")
    return failures


def baseline_failures(run: dict, baseline_path: str) -> list:
    try:
        committed = json.loads(Path(baseline_path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable baseline {baseline_path}: {error}"]
    committed_qps = committed["run"]["steady"]["qps"]
    measured_qps = run["steady"]["qps"]
    if measured_qps < committed_qps * BASELINE_RATIO:
        return [
            f"steady throughput {measured_qps:,.0f} q/s fell below "
            f"{BASELINE_RATIO:.0%} of the committed baseline "
            f"({committed_qps:,.0f} q/s)"
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized phases")
    parser.add_argument(
        "--out", default=str(OUT_PATH), help=f"output JSON path (default: {OUT_PATH})"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_drift.json to regression-gate against",
    )
    args = parser.parse_args(argv)

    print(
        f"bench_drift: shards={SHARDS} band={BAND_WIDTH:g} "
        f"drift={DRIFT_TABLE} x{'/'.join('%g' % f for f in DRIFT_FACTORS)} "
        f"({'smoke' if args.smoke else 'full'} phases)"
    )
    run = measure(args.smoke)

    print(f"  steady: {run['steady']['qps']:,.0f} q/s warm")
    for phase in run["drift_phases"]:
        print(
            f"  {phase['drift_factor']:g}x drift: {phase['qps']:,.0f} q/s "
            f"({phase['throughput_ratio']:.0%} of steady; update at "
            f"{phase['injected']['at_seconds']:.2f}s)"
        )
    plans = run["plans"]
    print(
        f"  lifecycle: {plans['stale_served']} stale-served, "
        f"{plans['recosted']} recosted, {plans['replanned']} replanned "
        f"({run['cache']['refreshed']:g} entries refreshed)"
    )

    payload = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": args.smoke,
        "throughput_floor": THROUGHPUT_FLOOR,
        "drift_factors": list(DRIFT_FACTORS),
        "run": run,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {args.out}")

    failures = acceptance_failures(run)
    if args.baseline:
        failures += baseline_failures(run, args.baseline)
    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}")
        return 1
    print("  ok: all acceptance targets met")
    return 0


def test_drift_smoke():
    """Pytest entry point: the smoke phases must meet their targets."""
    import tempfile

    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        assert main(["--smoke", "--out", tmp.name]) == 0


if __name__ == "__main__":
    sys.exit(main())
