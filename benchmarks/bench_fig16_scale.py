"""Fig. 16 at execution scale: does the Cout cost model predict runtime?

The paper's Fig. 16 plots *optimization* runtime; this harness closes
the loop the paper leaves open — it runs the plans the strategies
produce against real SF-scaled TPC-H data through the columnar executor
(:mod:`repro.exec`) and records two things:

* **speedups** — interpreter vs. columnar on the same plan and data,
  the executor tier's headline (the interpreter is the executable spec;
  it is infeasible beyond tiny scale factors, which is exactly why the
  columnar backend exists.  Q3 at SF 0.01 measures ~1000×).
* **correlation** — per (query, strategy) pair: the optimizer's Cout
  cost against measured columnar wall time, across ``ea-prune`` / ``h1``
  / ``h2`` / ``dphyp`` on Ex, Q3, Q5 and Q10.  Pooled log-log Pearson
  (and Spearman rank) correlation at the run's largest scale factor is
  the recorded figure: cheaper plans must actually run faster.

Usage::

    PYTHONPATH=src python benchmarks/bench_fig16_scale.py               # full run
    PYTHONPATH=src python benchmarks/bench_fig16_scale.py --quick       # CI smoke
    PYTHONPATH=src python benchmarks/bench_fig16_scale.py --quick \\
        --baseline benchmarks/BENCH_exec.json                           # regression gate

Full runs measure the correlation sweep at SF 0.1 (plus the SF 0.01
rows the quick mode reuses, so the committed artifact doubles as the CI
baseline) and assert the committed gates: every head-to-head speedup
≥ 10× and pooled log-log Pearson ≥ 0.5 at the largest scale.  Quick
runs skip the gates and instead diff against ``--baseline``: matching
(query, scale, strategy, executor) cases slower than ``--max-regression``
(default 2.0×) fail the run; baseline cases under 50 ms are noise and
skipped.  The JSON is rewritten after every case, so partial results
survive interruption.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.exec import run_plan
from repro.optimizer import optimize
from repro.tpch.datagen import scaled_dataset
from repro.tpch.queries import TPCH_QUERIES

SCHEMA = "bench-exec/v1"

#: The Fig. 16/17 plan generators whose plans the sweep executes.  All
#: four run the same lowering and backend — only the join order and
#: aggregation placement differ, which is precisely what Cout prices.
STRATEGIES = ("ea-prune", "h1", "h2", "dphyp")

QUERIES = ("Ex", "Q3", "Q5", "Q10")

#: Head-to-head (query, scale_factor) pairs: the ea-prune plan runs
#: under both executors.  SF 0.001 keeps the interpreter under a second
#: per query; the lone SF 0.01 row is the headline (the interpreter
#: needs ~80 s there, so it runs once, unrepeated).
FULL_HEAD_TO_HEAD = [("Q3", 0.001), ("Q5", 0.001), ("Q10", 0.001), ("Q3", 0.01)]
QUICK_HEAD_TO_HEAD = [("Q3", 0.001), ("Q10", 0.001)]

#: Correlation-sweep scale factors.  The full list is a superset of the
#: quick list so the committed full artifact contains every case CI's
#: quick run wants to baseline-diff.
FULL_SCALES = (0.01, 0.1)
QUICK_SCALES = (0.01,)

#: (query, scale_factor) → minimum interpreter/columnar speedup,
#: asserted on full runs with numpy present.  10× is the committed
#: executor-tier target; measured values are 30–150× at SF 0.001 and
#: ~1000× at SF 0.01, so the floor leaves an order of magnitude of
#: margin for slow machines.
SPEEDUP_TARGETS = {
    ("Q3", 0.001): 10.0,
    ("Q5", 0.001): 10.0,
    ("Q10", 0.001): 10.0,
    ("Q3", 0.01): 10.0,
}

#: Minimum pooled log-log Pearson correlation (cost vs. runtime) at the
#: run's largest scale factor, asserted on full runs.  Measured ~0.9 at
#: SF 0.1: the spread comes from dphyp's lazy-aggregation plans, which
#: cost orders of magnitude more than EA-Prune's on Ex and run
#: accordingly slower.
CORRELATION_FLOOR = 0.5

#: Per-measurement repetitions: re-run short cases, keep the minimum.
FAST_CASE_SECONDS = 5.0
FAST_CASE_REPEAT = 3


def _measure(query_name, scale_factor, strategy, executor, plan, cost, database,
             phase):
    """Time run_plan for one case; min over repeats for short cases."""
    best = None
    rows = 0
    repeats = 1
    for attempt in range(FAST_CASE_REPEAT):
        started = time.perf_counter()
        result = run_plan(plan, database, executor=executor)
        elapsed = time.perf_counter() - started
        rows = len(result)
        if best is None or elapsed < best:
            best = elapsed
        if elapsed >= FAST_CASE_SECONDS:
            break
        repeats = attempt + 1
    return {
        "query": query_name,
        "scale_factor": scale_factor,
        "strategy": strategy,
        "executor": executor,
        "phase": phase,
        "seconds": best,
        "repeats": repeats,
        "cost": cost,
        "rows": rows,
    }


def _write(out_path: Path, payload: dict) -> None:
    """Atomic rewrite so a killed run never leaves a truncated artifact."""
    tmp = out_path.with_suffix(out_path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, out_path)


def _compute_speedups(cases: list) -> list:
    """Pair cases measured under both executors; speedup = interp/columnar."""
    by_key = {
        (c["query"], c["scale_factor"], c["strategy"], c["executor"]): c for c in cases
    }
    speedups = []
    for (query, scale, strategy, executor), case in sorted(
        by_key.items(), key=lambda item: (item[0][1], item[0][0], item[0][2])
    ):
        if executor != "columnar":
            continue
        slow = by_key.get((query, scale, strategy, "interpreter"))
        if slow is None:
            continue
        speedups.append(
            {
                "query": query,
                "scale_factor": scale,
                "strategy": strategy,
                "interpreter_seconds": slow["seconds"],
                "columnar_seconds": case["seconds"],
                "speedup": slow["seconds"] / case["seconds"],
            }
        )
    return speedups


def _ranks(values: list) -> list:
    """Average ranks (1-based) with ties shared, for Spearman."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = rank
        i = j + 1
    return ranks


def _pearson(xs: list, ys: list):
    n = len(xs)
    if n < 3:
        return None
    mx, my = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return None
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return sxy / math.sqrt(sxx * syy)


def _compute_correlation(cases: list) -> dict:
    """Cost-vs-runtime agreement over the columnar sweep, per scale.

    ``pooled`` entries mix the four queries at one scale factor — the
    Fig. 16-style headline.  ``per_query`` records each query's
    cost/runtime spread (max/min over its strategies) so flat rows
    (e.g. Q3, where every strategy picks near-identical orders) are
    visible rather than hidden in the pooled number.
    """
    sweep = [c for c in cases if c["executor"] == "columnar" and c["phase"] == "sweep"]
    by_scale = {}
    for case in sweep:
        by_scale.setdefault(case["scale_factor"], []).append(case)
    out = {}
    for scale, group in sorted(by_scale.items()):
        if len(group) < 3:
            continue
        log_cost = [math.log(c["cost"]) for c in group]
        log_secs = [math.log(max(c["seconds"], 1e-6)) for c in group]
        per_query = {}
        for case in group:
            bucket = per_query.setdefault(
                case["query"], {"costs": [], "seconds": []}
            )
            bucket["costs"].append(case["cost"])
            bucket["seconds"].append(case["seconds"])
        out[str(scale)] = {
            "points": len(group),
            "pearson_log": _pearson(log_cost, log_secs),
            "spearman": _pearson(_ranks(log_cost), _ranks(log_secs)),
            "per_query": {
                name: {
                    "cost_spread": max(b["costs"]) / min(b["costs"]),
                    "runtime_spread": max(b["seconds"]) / min(b["seconds"]),
                }
                for name, b in sorted(per_query.items())
            },
        }
    return out


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def run(head_to_head, scales, out_path: Path, mode: str) -> dict:
    payload = {
        "schema": SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "numpy": _numpy_available(),
        "generated_unix": int(time.time()),
        "cases": [],
        "speedups": [],
        "correlation": {},
    }
    datasets = {}

    def dataset(scale):
        if scale not in datasets:
            started = time.perf_counter()
            datasets[scale] = scaled_dataset(scale)
            print(f"generated tpch-sf{scale} in {time.perf_counter() - started:.2f}s",
                  flush=True)
        return datasets[scale]

    def record(case):
        payload["cases"].append(case)
        payload["speedups"] = _compute_speedups(payload["cases"])
        payload["correlation"] = _compute_correlation(payload["cases"])
        _write(out_path, payload)
        print(
            f"{case['executor']:11s} {case['query']:3s} sf={case['scale_factor']:<5} "
            f"{case['strategy']:8s}: {case['seconds']:9.3f}s  rows={case['rows']}",
            flush=True,
        )

    # Head-to-head: both executors run the ea-prune plan on tiny scales
    # (the interpreter's ceiling), columnar timed first so a mismatch in
    # row sets — checked here too — fails before the slow run.
    mismatches = []
    for query_name, scale in head_to_head:
        query = TPCH_QUERIES[query_name](scale)
        database = dataset(scale).database_for(query)
        result = optimize(query, "ea-prune")
        plan = result.plan.node
        columnar_rows = run_plan(plan, database, executor="columnar")
        interpreter_rows = run_plan(plan, database, executor="interpreter")
        if columnar_rows != interpreter_rows:
            mismatches.append((query_name, scale))
            continue
        for executor in ("columnar", "interpreter"):
            record(
                _measure(query_name, scale, "ea-prune", executor, plan,
                         result.cost, database, "head_to_head")
            )

    # Correlation sweep: columnar-only, every strategy's plan, scales
    # the interpreter cannot reach.
    for scale in scales:
        for query_name in QUERIES:
            query = TPCH_QUERIES[query_name](scale)
            database = dataset(scale).database_for(query)
            for strategy in STRATEGIES:
                result = optimize(query, strategy)
                record(
                    _measure(query_name, scale, strategy, "columnar",
                             result.plan.node, result.cost, database, "sweep")
                )

    if mismatches:
        print(f"EXECUTOR MISMATCH (row sets differ): {mismatches}", file=sys.stderr)
        raise SystemExit(2)
    return payload


def check_gates(payload: dict) -> bool:
    """Full-run acceptance: speedup floors + pooled correlation floor."""
    ok = True
    by_key = {(s["query"], s["scale_factor"]): s["speedup"] for s in payload["speedups"]}
    for key, minimum in SPEEDUP_TARGETS.items():
        speedup = by_key.get(key)
        if speedup is None:
            print(f"speedup target {key}: NOT MEASURED", file=sys.stderr)
            ok = False
        elif speedup < minimum:
            print(
                f"speedup target {key}: {speedup:.1f}x < required {minimum:.0f}x",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"speedup target {key}: {speedup:.1f}x (>= {minimum:.0f}x) OK")
    if not payload["correlation"]:
        print("correlation: NOT MEASURED", file=sys.stderr)
        return False
    top_scale = max(payload["correlation"], key=float)
    pearson = payload["correlation"][top_scale]["pearson_log"]
    if pearson is None or pearson < CORRELATION_FLOOR:
        print(
            f"correlation at sf{top_scale}: pearson_log={pearson} < "
            f"required {CORRELATION_FLOOR}",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"correlation at sf{top_scale}: pearson_log={pearson:.3f} "
            f"(>= {CORRELATION_FLOOR}) OK"
        )
    return ok


def check_baseline(payload: dict, baseline_path: Path, max_regression: float) -> bool:
    """Compare case timings against a committed baseline artifact."""
    if not baseline_path.exists():
        print(
            f"baseline {baseline_path} not found — regenerate it with a full "
            f"run: PYTHONPATH=src python benchmarks/bench_fig16_scale.py "
            f"--out {baseline_path}",
            file=sys.stderr,
        )
        return False
    baseline = json.loads(baseline_path.read_text())
    baseline_by_key = {
        (c["query"], c["scale_factor"], c["strategy"], c["executor"]): c
        for c in baseline.get("cases", [])
    }
    ok = True
    compared = 0
    for case in payload["cases"]:
        key = (case["query"], case["scale_factor"], case["strategy"], case["executor"])
        base = baseline_by_key.get(key)
        if base is None or base["seconds"] < 0.05:
            continue  # absent or too small to compare reliably
        compared += 1
        ratio = case["seconds"] / base["seconds"]
        marker = "REGRESSION" if ratio > max_regression else "ok"
        print(
            f"baseline {key}: {base['seconds']:.3f}s -> {case['seconds']:.3f}s "
            f"({ratio:.2f}x) {marker}"
        )
        if ratio > max_regression:
            ok = False
    if compared == 0:
        print("baseline: no comparable cases (all below the 50 ms noise floor)")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke case list")
    parser.add_argument("--out", default="BENCH_exec.json", help="output JSON path")
    parser.add_argument(
        "--baseline", default=None,
        help="committed artifact to diff against (fails on regression)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="maximum tolerated slowdown vs the baseline (default 2.0x)",
    )
    parser.add_argument(
        "--no-gate-check", action="store_true",
        help="skip the full-run speedup/correlation assertions",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    head_to_head = QUICK_HEAD_TO_HEAD if args.quick else FULL_HEAD_TO_HEAD
    scales = QUICK_SCALES if args.quick else FULL_SCALES
    out_path = Path(args.out)
    payload = run(head_to_head, scales, out_path, mode)

    failed = False
    if mode == "full" and not args.no_gate_check:
        if not payload["numpy"]:
            # The pure-python fallback is the correctness net, not the
            # performance claim — gating it would measure the wrong thing.
            print("numpy unavailable: skipping speedup/correlation gates")
        elif not check_gates(payload):
            failed = True
    if args.baseline:
        if not check_baseline(payload, Path(args.baseline), args.max_regression):
            failed = True

    for speedup in payload["speedups"]:
        print(
            f"speedup {speedup['query']:3s} sf={speedup['scale_factor']:<5}: "
            f"{speedup['speedup']:8.1f}x "
            f"({speedup['interpreter_seconds']:.3f}s -> "
            f"{speedup['columnar_seconds']:.3f}s)"
        )
    for scale, corr in sorted(payload["correlation"].items(), key=lambda i: float(i[0])):
        pearson = corr["pearson_log"]
        spearman = corr["spearman"]
        print(
            f"correlation sf={scale}: pearson_log="
            f"{'n/a' if pearson is None else f'{pearson:.3f}'} "
            f"spearman={'n/a' if spearman is None else f'{spearman:.3f}'} "
            f"over {corr['points']} points"
        )
    print(f"wrote {out_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
