"""Ablation — why Def. 4 needs all three dominance criteria.

The paper's PruneDominatedPlans keeps a plan unless another one is no
worse in *cost*, *cardinality* and *functional dependencies*.  This
ablation runs EA-Prune with progressively weaker dominance tests:

* ``cost-only``  — classic Bellman pruning (what plain DP would do),
* ``cost-card``  — cost + cardinality, but FDs/keys ignored,
* ``full``       — the paper's criterion.

Weaker criteria prune more plans (smaller DP tables, faster runs) but lose
optimality — quantified below as the mean cost regression vs. EA-All.
"""

import statistics

import pytest

from benchmarks.conftest import register_report, workload
from repro.api import OptimizerConfig, PlannerSession
from repro.optimizer.strategies import EaPruneStrategy

SIZES = (4, 5, 6)
CRITERIA = ("cost-only", "cost-card", "full")

#: shared uncached session — benchmarks time the optimizer, so plan-cache
#: hits would corrupt every measurement.
SESSION = PlannerSession(config=OptimizerConfig(cache_capacity=None))


def _sweep():
    rows = []
    for n in SIZES:
        regressions = {c: [] for c in CRITERIA}
        table_sizes = {c: [] for c in CRITERIA}
        for query in workload(n):
            optimal = SESSION.optimize(query, strategy="ea-all")
            for criteria in CRITERIA:
                result = SESSION.optimize(query, strategy=EaPruneStrategy(criteria))
                regressions[criteria].append(
                    result.cost / optimal.cost if optimal.cost > 0 else 1.0
                )
                table_sizes[criteria].append(sum(result.result.table_sizes.values()))
        rows.append(
            (
                n,
                {c: statistics.mean(regressions[c]) for c in CRITERIA},
                {c: statistics.mean(table_sizes[c]) for c in CRITERIA},
            )
        )
    return rows


def test_ablation_pruning_criteria(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        f"{'n':>3s}"
        + "".join(f"{c + ' cost':>18s}" for c in CRITERIA)
        + "".join(f"{c + ' plans':>18s}" for c in CRITERIA)
    ]
    for n, regression, plans in rows:
        lines.append(
            f"{n:3d}"
            + "".join(f"{regression[c]:18.3f}" for c in CRITERIA)
            + "".join(f"{plans[c]:18.1f}" for c in CRITERIA)
        )
    lines.append("cost columns: mean plan cost relative to EA-All (1.000 = optimal)")
    register_report("Ablation — dominance criteria of Def. 4", lines)

    for n, regression, plans in rows:
        # the full criterion is optimality-preserving ...
        assert regression["full"] == pytest.approx(1.0, rel=1e-9)
        # ... and weaker criteria never use more table entries
        assert plans["cost-only"] <= plans["full"] + 1e-9


def test_ablation_cost_only_can_lose_optimality(benchmark):
    """Across a workload, cost-only pruning must regress somewhere —
    demonstrating that Bellman's principle genuinely fails (Sec. 4.4)."""

    def worst_regression():
        worst = 1.0
        for n in (4, 5, 6, 7):
            for query in workload(n):
                optimal = (SESSION.optimize(query, strategy="ea-all") if n <= 6
                           else SESSION.optimize(query, strategy="ea-prune"))
                pruned = SESSION.optimize(query, strategy=EaPruneStrategy("cost-only"))
                if optimal.cost > 0:
                    worst = max(worst, pruned.cost / optimal.cost)
        return worst

    worst = benchmark.pedantic(worst_regression, rounds=1, iterations=1)
    register_report(
        "Ablation — worst cost-only regression",
        [f"worst cost-only/optimal ratio observed: {worst:.3f}"],
    )
    assert worst > 1.0 + 1e-9
