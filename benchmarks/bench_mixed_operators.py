"""Mixed-operator SQL workload through the session facade and the server.

Not a paper figure — this drives the PR-5 operator surface end to end:
:func:`repro.workload.generate_sql_workload` emits SQL text with
``[NOT] EXISTS`` / ``[NOT] IN`` subqueries, RIGHT / LEFT / FULL joins,
comma-FROM cross joins, ``IS [NOT] NULL`` and prefix ``NOT``, and the
benchmark pushes it through

1. **PlannerSession** — parse + bind + conflict-detect + DPhyp over a
   cold batch, then the identical batch warm (every query a cache hit),
2. **PlanServer** — an EXISTS statement round-trips ``POST /optimize``,
   and the NOT EXISTS variant of the same text must *miss* the plan
   cache (distinct operator kinds must never share a
   :class:`~repro.service.fingerprint.PlanCacheKey`).

Acceptance (asserted): every statement plans, the warm batch is 100%
cache hits, the semijoin/antijoin cache-separation holds on the server,
and the workload covers all five reorderable operator kinds.

Results are written to ``benchmarks/BENCH_mixed.json`` (schema
``bench-mixed/v1``).

Usage::

    PYTHONPATH=src python benchmarks/bench_mixed_operators.py           # full run
    PYTHONPATH=src python benchmarks/bench_mixed_operators.py --quick   # CI smoke

Environment knobs: ``REPRO_MIXED_QUERIES`` (default 80).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.api import OptimizerConfig, PlannerSession
from repro.rewrites.pushdown import OpKind
from repro.server import PlanServer, ServerClient, ServerConfig
from repro.workload import generate_sql_workload

SCHEMA = "bench-mixed/v1"
OUT_PATH = Path(__file__).resolve().parent / "BENCH_mixed.json"

WORKLOAD_SIZE = int(os.environ.get("REPRO_MIXED_QUERIES", "80"))

REQUIRED_OPS = {
    OpKind.INNER,
    OpKind.LEFT_OUTER,
    OpKind.FULL_OUTER,
    OpKind.LEFT_SEMI,
    OpKind.LEFT_ANTI,
}

EXISTS_SQL = (
    "SELECT n.n_name, count(*) AS cnt FROM nation n WHERE EXISTS "
    "(SELECT * FROM supplier s WHERE s.s_nationkey = n.n_nationkey) "
    "GROUP BY n.n_name"
)
NOT_EXISTS_SQL = EXISTS_SQL.replace("WHERE EXISTS", "WHERE NOT EXISTS")


def measure_session(size: int) -> dict:
    """Cold + warm batches of mixed-operator SQL through one session."""
    rng = random.Random(20150413)  # the paper's ICDE publication date
    statements = generate_sql_workload(size, rng, unique=max(1, size // 3))

    session = PlannerSession.tpch(
        config=OptimizerConfig(workers=1, cache_capacity=2 * size)
    )
    started = time.perf_counter()
    queries = [session.parse(sql) for sql in statements]
    parse_seconds = time.perf_counter() - started

    operator_counts: dict = {}
    for query in queries:
        for edge in query.edges:
            operator_counts[edge.op.name] = operator_counts.get(edge.op.name, 0) + 1

    cold = session.run_batch(queries)
    warm = session.run_batch(queries)
    return {
        "size": size,
        "unique": len(set(statements)),
        "parse_qps": size / parse_seconds if parse_seconds > 0 else float("inf"),
        "operator_counts": operator_counts,
        "covered_ops": sorted(
            op.name for op in REQUIRED_OPS
            if op.name in operator_counts
        ),
        "cold_qps": cold.queries_per_second,
        "cold_failed": cold.failed,
        "warm_qps": warm.queries_per_second,
        "warm_hit_rate": warm.hit_rate,
    }


def measure_server() -> dict:
    """EXISTS round-trip + semijoin/antijoin cache separation, in-process."""
    config = ServerConfig(port=0, workers=0, cache_capacity=64)
    with PlanServer(config) as server:
        with ServerClient(port=server.port, timeout=120.0, retries=3) as client:
            exists_cold = client.optimize(EXISTS_SQL, include_plan=True)
            not_exists = client.optimize(NOT_EXISTS_SQL, include_plan=True)
            exists_warm = client.optimize(EXISTS_SQL, include_plan=False)
    plan_ops = json.dumps(exists_cold["plan"]) + json.dumps(not_exists["plan"])
    return {
        "exists_cost": exists_cold["cost"],
        "not_exists_cost": not_exists["cost"],
        "exists_warm_cache_hit": exists_warm["cache_hit"],
        "not_exists_cache_hit": not_exists["cache_hit"],
        "semijoin_in_plan": "left_semi" in plan_ops,
        "antijoin_in_plan": "left_anti" in plan_ops,
    }


def acceptance(session_run: dict, server_run: dict) -> list:
    """(name, ok) pairs — the assertions both pytest and main() check."""
    return [
        ("all statements planned", session_run["cold_failed"] == 0),
        ("warm batch all cache hits", session_run["warm_hit_rate"] == 1.0),
        (
            "operator coverage",
            set(session_run["covered_ops"]) == {op.name for op in REQUIRED_OPS},
        ),
        ("EXISTS round-trips with a cost", server_run["exists_cost"] > 0),
        (
            "NOT EXISTS misses the EXISTS cache entry",
            server_run["not_exists_cache_hit"] is False,
        ),
        ("repeat EXISTS hits", server_run["exists_warm_cache_hit"] is True),
        ("semijoin appears in a served plan", server_run["semijoin_in_plan"]),
        ("antijoin appears in a served plan", server_run["antijoin_in_plan"]),
    ]


def report_lines(session_run: dict, server_run: dict) -> list:
    ops = ", ".join(
        f"{name.lower()}={count}"
        for name, count in sorted(session_run["operator_counts"].items())
    )
    return [
        f"workload: {session_run['size']} statements "
        f"({session_run['unique']} distinct), parse {session_run['parse_qps']:,.0f} q/s",
        f"operators: {ops}",
        f"{'cold batch':12s} {session_run['cold_qps']:10,.1f} q/s   "
        f"failed {session_run['cold_failed']}",
        f"{'warm batch':12s} {session_run['warm_qps']:10,.1f} q/s   "
        f"hit rate {session_run['warm_hit_rate']:4.0%}",
        "server: EXISTS cost "
        f"{server_run['exists_cost']:,.0f}, NOT EXISTS cache_hit="
        f"{server_run['not_exists_cache_hit']} (must be False), "
        f"repeat EXISTS cache_hit={server_run['exists_warm_cache_hit']}",
    ]


def test_mixed_operator_workload():
    from benchmarks.conftest import register_report

    session_run = measure_session(size=min(WORKLOAD_SIZE, 60))
    server_run = measure_server()
    register_report(
        "Mixed operators — SQL surface through session + server",
        report_lines(session_run, server_run),
    )
    for name, ok in acceptance(session_run, server_run):
        assert ok, name


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run (24 statements)"
    )
    parser.add_argument(
        "--out", default=str(OUT_PATH),
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = parser.parse_args()

    size = 24 if args.quick else WORKLOAD_SIZE
    session_run = measure_session(size)
    server_run = measure_server()
    for line in report_lines(session_run, server_run):
        print(line)

    checks = acceptance(session_run, server_run)
    for name, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    passed = all(ok for _, ok in checks)

    payload = {
        "schema": SCHEMA,
        "quick": args.quick,
        "session": session_run,
        "server": server_run,
        "passed": passed,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    print("PASS" if passed else "FAIL")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
