"""Figure 18 — runtime of H2 relative to H1.

Paper: the two heuristics' runtimes are almost identical (ratio within a
few percent of 1); H2 is often marginally *faster* because more eager
plans create key constraints that make upper groupings obsolete.
"""

import statistics

import pytest

from benchmarks.conftest import MAX_N, register_report, workload
from repro.api import OptimizerConfig, PlannerSession

SIZES = tuple(range(3, MAX_N + 1, 2))
_RESULTS = {}

#: shared uncached session — benchmarks time the optimizer, so plan-cache
#: hits would corrupt every measurement.
SESSION = PlannerSession(config=OptimizerConfig(cache_capacity=None))

CASES = [(strategy, n) for strategy in ("h1", "h2") for n in SIZES]


@pytest.mark.parametrize("strategy,n", CASES, ids=[f"{s}-n{n}" for s, n in CASES])
def test_fig18_heuristic_runtime(benchmark, strategy, n):
    queries = workload(n, count=3)

    def run():
        for query in queries:
            SESSION.optimize(query, strategy=strategy, factor=1.03)

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    _RESULTS[(strategy, n)] = statistics.median(benchmark.stats.stats.data) / len(queries)
    _publish()


def _publish():
    lines = [f"{'n':>3s} {'H1':>12s} {'H2':>12s} {'H2/H1':>8s}"]
    for n in SIZES:
        h1 = _RESULTS.get(("h1", n))
        h2 = _RESULTS.get(("h2", n))
        if h1 is None or h2 is None:
            continue
        lines.append(
            f"{n:3d} {h1 * 1000:10.2f}ms {h2 * 1000:10.2f}ms {h2 / h1:8.2f}"
        )
    lines.append("paper: ratio ≈ 0.92–1.08 across all sizes")
    register_report("Fig. 18 — runtime H2 relative to H1 [per query]", lines)
