"""The conflict detector: initial operator tree → annotated hyperedges.

Follows the CD structure of [7] (Moerkotte, Fender & Eich, SIGMOD 2013):
for every operator ``b`` of the initial tree,

* ``SES(b)`` — the relations syntactically referenced by b's predicate
  (plus, for groupjoins, by the groupjoin's aggregation vector),
* ``TES(b)`` — initialised to SES; groupjoin operators freeze their full
  subtrees (see :mod:`repro.conflict.tables`),
* conflict rules ``A → B``: derived from failed assoc / l-asscom /
  r-asscom properties against every operator in b's subtrees.  A rule is
  satisfied by a relation set ``S`` iff ``A ∩ S = ∅ ∨ B ⊆ S``.

The resulting :class:`AnnotatedEdge` exposes the applicability test used by
``Applicable`` in the paper's Fig. 5 and supplies the hyperedge
``(L-TES, R-TES)`` for DPhyp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.algebra.expressions import attrs_of
from repro.conflict.tables import assoc, l_asscom, r_asscom
from repro.hypergraph.bitset import is_subset
from repro.hypergraph.graph import Hyperedge, Hypergraph
from repro.query.spec import Query
from repro.query.tree import TreeNode, tree_leaves, tree_operators
from repro.rewrites.pushdown import OpKind


@dataclass(frozen=True)
class ConflictRule:
    """``A → B``: if S touches A, S must contain all of B (bitsets)."""

    antecedent: int
    consequent: int

    def satisfied_by(self, s: int) -> bool:
        return not (self.antecedent & s) or is_subset(self.consequent, s)


@dataclass(frozen=True)
class AnnotatedEdge:
    """A join edge with its conflict annotations.

    ``l_tes`` / ``r_tes`` form the DPhyp hyperedge; ``rules`` restrict the
    csg-cmp-pairs the operator may be applied to.
    """

    edge_id: int
    op: OpKind
    l_tes: int
    r_tes: int
    rules: Tuple[ConflictRule, ...]

    def applicable(self, s1: int, s2: int) -> bool:
        """``Applicable(S1, S2, ∘)`` of the paper's Fig. 5.

        Checks the TES containment for the (S1=left, S2=right) orientation
        and all conflict rules against S1 ∪ S2.  Commutative operators may
        additionally be tried with swapped arguments by the caller.
        """
        if not (is_subset(self.l_tes, s1) and is_subset(self.r_tes, s2)):
            return False
        s = s1 | s2
        return all(rule.satisfied_by(s) for rule in self.rules)

    def hyperedge(self) -> Hyperedge:
        return Hyperedge(self.l_tes, self.r_tes, label=self.edge_id)


def _ses(query: Query, node: TreeNode) -> int:
    edge = query.edge(node.edge_id)
    referenced = set(attrs_of(edge.predicate))
    if edge.groupjoin_vector is not None:
        referenced |= set(edge.groupjoin_vector.attributes())
    base_attrs = [a for a in referenced if _is_base_attr(query, a)]
    return query.vertices_of(base_attrs)


def _is_base_attr(query: Query, attr: str) -> bool:
    try:
        query.vertex_of(attr)
        return True
    except KeyError:
        return False


def detect(query: Query) -> Tuple[List[AnnotatedEdge], Hypergraph]:
    """Compute annotated edges and the query hypergraph from the tree."""
    annotated: List[AnnotatedEdge] = []
    for node in tree_operators(query.tree):
        edge = query.edge(node.edge_id)
        left_set = tree_leaves(node.left)
        right_set = tree_leaves(node.right)
        ses = _ses(query, node)
        tes = ses
        if edge.op is OpKind.GROUPJOIN:
            # Freeze: the groupjoin applies exactly at its original split.
            tes = left_set | right_set
        # Ensure the TES touches both sides so the hyperedge is well-formed
        # (degenerate predicates would otherwise leave a side empty).
        if not tes & left_set:
            tes |= left_set & -left_set
        if not tes & right_set:
            tes |= right_set & -right_set

        rules: List[ConflictRule] = []
        pred_b = query.edge(node.edge_id).predicate
        for below in tree_operators(node.left):
            edge_a = query.edge(below.edge_id)
            a_left = tree_leaves(below.left)
            a_right = tree_leaves(below.right)
            a1_attrs = query.relation_attrs(a_left)
            a2_attrs = query.relation_attrs(a_right)
            if not assoc(edge_a.op, edge.op, edge_a.predicate, pred_b, a1_attrs, a2_attrs):
                rules.append(ConflictRule(a_right, a_left))
            if not l_asscom(edge_a.op, edge.op, edge_a.predicate, pred_b, a1_attrs, a2_attrs):
                rules.append(ConflictRule(a_left, a_right))
        for below in tree_operators(node.right):
            edge_a = query.edge(below.edge_id)
            a_left = tree_leaves(below.left)
            a_right = tree_leaves(below.right)
            a1_attrs = query.relation_attrs(a_left)
            a2_attrs = query.relation_attrs(a_right)
            if not assoc(edge.op, edge_a.op, pred_b, edge_a.predicate, a1_attrs, a2_attrs):
                rules.append(ConflictRule(a_left, a_right))
            if not r_asscom(edge.op, edge_a.op, pred_b, edge_a.predicate, a1_attrs, a2_attrs):
                rules.append(ConflictRule(a_right, a_left))

        annotated.append(
            AnnotatedEdge(
                edge_id=node.edge_id,
                op=edge.op,
                l_tes=tes & left_set,
                r_tes=tes & right_set,
                rules=tuple(rules),
            )
        )

    for edge_id in query.floating_edge_ids:
        # Cycle-closing WHERE predicates of all-inner-join queries: freely
        # reorderable, so SES = TES and no conflict rules.
        edge = query.edge(edge_id)
        ses = query.vertices_of(
            a for a in attrs_of(edge.predicate) if _is_base_attr(query, a)
        )
        left_bit = ses & -ses
        annotated.append(
            AnnotatedEdge(
                edge_id=edge_id,
                op=edge.op,
                l_tes=left_bit,
                r_tes=ses & ~left_bit,
                rules=(),
            )
        )

    graph = Hypergraph(len(query.relations), [a.hyperedge() for a in annotated])
    return annotated, graph
