"""Conflict detection for reordering non-inner joins (paper ref. [7]).

The plan generators of the paper operate on a hypergraph whose hyperedges
encode reordering conflicts: each operator of the initial tree becomes one
hyperedge ``(L-TES, R-TES)`` plus a set of *conflict rules*.  The
:func:`~repro.conflict.detector.detect` entry point computes these from the
initial operator tree using the associativity / l-asscom / r-asscom
property tables of :mod:`repro.conflict.tables`.
"""

from repro.conflict.detector import AnnotatedEdge, ConflictRule, detect
from repro.conflict.tables import assoc, l_asscom, r_asscom

__all__ = ["detect", "AnnotatedEdge", "ConflictRule", "assoc", "l_asscom", "r_asscom"]
