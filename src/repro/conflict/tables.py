"""Reordering property tables: assoc, l-asscom, r-asscom.

The tables follow Moerkotte, Fender & Eich, *On the correct and complete
enumeration of the core search space* (SIGMOD 2013) — the conflict detector
the paper builds on ([7]).  Entries marked with a NULL-rejection side
condition in the published tables are evaluated against the actual
predicates: our join predicates are equality comparisons referencing both
sides, which reject NULLs on every referenced attribute set, so the
conditions typically hold — but the check is performed, not assumed.

The groupjoin (▷◁) is deliberately *frozen*: the paper only introduces
equivalences for pushing grouping **into** a groupjoin (Eqvs. 39–41), not
for reordering around it, so every property involving ▷◁ is ``False``.
This is conservative and therefore correct.

Property semantics (predicates: ``p_a`` between e1/e2, ``p_b`` as noted):

* ``assoc(a, b)``:     ``(e1 a e2) b e3  ≡  e1 a (e2 b e3)``   (p_b on e2,e3)
* ``l_asscom(a, b)``:  ``(e1 a e2) b e3  ≡  (e1 b e3) a e2``   (p_b on e1,e3)
* ``r_asscom(a, b)``:  ``e1 a (e2 b e3)  ≡  e2 b (e1 a e3)``   (p_a on e1,e3)
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.algebra.expressions import Expr, rejects_nulls_on
from repro.rewrites.pushdown import OpKind

B = OpKind.INNER
N = OpKind.LEFT_SEMI
T = OpKind.LEFT_ANTI
E = OpKind.LEFT_OUTER
K = OpKind.FULL_OUTER
Z = OpKind.GROUPJOIN

#: A NULL-rejection requirement: (which predicate, which side's attributes).
#: ``predicate`` ∈ {"a", "b"}; ``side`` ∈ {1, 2} referring to e1 / e2.
Condition = tuple

# Unconditional entries: True / False.  Conditional entries: tuple of
# (predicate, side) requirements that must all hold.
_ASSOC = {
    (B, B): True, (B, N): True, (B, T): True, (B, E): True, (B, K): False,
    (N, B): False, (N, N): False, (N, T): False, (N, E): False, (N, K): False,
    (T, B): False, (T, N): False, (T, T): False, (T, E): False, (T, K): False,
    (E, B): False, (E, N): False, (E, T): False, (E, E): (("b", 2),), (E, K): False,
    (K, B): False, (K, N): False, (K, T): False, (K, E): (("b", 2),),
    (K, K): (("a", 2), ("b", 2)),
}

_L_ASSCOM = {
    (B, B): True, (B, N): True, (B, T): True, (B, E): True, (B, K): False,
    (N, B): True, (N, N): True, (N, T): True, (N, E): True, (N, K): False,
    (T, B): True, (T, N): True, (T, T): True, (T, E): True, (T, K): False,
    (E, B): True, (E, N): True, (E, T): True, (E, E): True, (E, K): (("a", 1), ("b", 1)),
    (K, B): False, (K, N): False, (K, T): False,
    (K, E): (("a", 1), ("b", 1)), (K, K): (("a", 1), ("b", 1)),
}

_R_ASSCOM = {
    (B, B): True,
    (K, K): (("a", 2), ("b", 2)),
}


def _evaluate(
    entry,
    pred_a: Optional[Expr],
    pred_b: Optional[Expr],
    side1_attrs: FrozenSet[str],
    side2_attrs: FrozenSet[str],
) -> bool:
    if entry is True or entry is False:
        return bool(entry)
    for which, side in entry:
        predicate = pred_a if which == "a" else pred_b
        attrs = side1_attrs if side == 1 else side2_attrs
        if predicate is None or not rejects_nulls_on(predicate, attrs):
            return False
    return True


def assoc(
    op_a: OpKind,
    op_b: OpKind,
    pred_a: Optional[Expr] = None,
    pred_b: Optional[Expr] = None,
    side1_attrs: FrozenSet[str] = frozenset(),
    side2_attrs: FrozenSet[str] = frozenset(),
) -> bool:
    """Whether ``(e1 a e2) b e3 ≡ e1 a (e2 b e3)`` holds."""
    entry = _ASSOC.get((op_a, op_b), False)
    return _evaluate(entry, pred_a, pred_b, side1_attrs, side2_attrs)


def l_asscom(
    op_a: OpKind,
    op_b: OpKind,
    pred_a: Optional[Expr] = None,
    pred_b: Optional[Expr] = None,
    side1_attrs: FrozenSet[str] = frozenset(),
    side2_attrs: FrozenSet[str] = frozenset(),
) -> bool:
    """Whether ``(e1 a e2) b e3 ≡ (e1 b e3) a e2`` holds."""
    entry = _L_ASSCOM.get((op_a, op_b), False)
    return _evaluate(entry, pred_a, pred_b, side1_attrs, side2_attrs)


def r_asscom(
    op_a: OpKind,
    op_b: OpKind,
    pred_a: Optional[Expr] = None,
    pred_b: Optional[Expr] = None,
    side1_attrs: FrozenSet[str] = frozenset(),
    side2_attrs: FrozenSet[str] = frozenset(),
) -> bool:
    """Whether ``e1 a (e2 b e3) ≡ e2 b (e1 a e3)`` holds."""
    entry = _R_ASSCOM.get((op_a, op_b), False)
    return _evaluate(entry, pred_a, pred_b, side1_attrs, side2_attrs)
