"""Random query generation following the paper's evaluation setup (Sec. 5).

For a requested relation count the generator draws a uniformly random tree
shape, attaches relations to the leaves and operators to the internal
nodes, selects equality-join attributes between the subtrees' *visible*
attributes, selects grouping attributes and an aggregation vector from the
root-visible attributes, and draws random cardinalities, distinct counts
and selectivities.

Visibility matters because semijoins, antijoins and groupjoins hide their
right subtree's attributes: predicates and aggregates above such operators
may only use what survives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import Tree, TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind
from repro.workload.unrank import Shape, random_tree_shape


@dataclass
class WorkloadConfig:
    """Tunable knobs of the random workload (paper defaults in comments)."""

    min_cardinality: float = 10.0
    max_cardinality: float = 100_000.0
    #: Weights for the operator attached to each internal node.
    operator_weights: Dict[OpKind, float] = field(
        default_factory=lambda: {
            OpKind.INNER: 0.50,
            OpKind.LEFT_OUTER: 0.16,
            OpKind.FULL_OUTER: 0.12,
            OpKind.LEFT_SEMI: 0.08,
            OpKind.LEFT_ANTI: 0.06,
            OpKind.GROUPJOIN: 0.08,
        }
    )
    max_group_attrs: int = 3
    max_aggregates: int = 4
    #: Probability that an aggregate is a distinct variant / avg.
    distinct_probability: float = 0.05
    avg_probability: float = 0.10
    inner_only: bool = False


def generate_query(
    n_relations: int, rng: random.Random, config: Optional[WorkloadConfig] = None
) -> Query:
    """One random query with *n_relations* relations."""
    config = config or WorkloadConfig()
    relations = [_random_relation(i, rng, config) for i in range(n_relations)]

    if n_relations == 1:
        tree: Tree = TreeLeaf(0)
        edges: List[JoinEdge] = []
        visible = frozenset(relations[0].attributes)
        gj_names: List[str] = []
    else:
        shape = random_tree_shape(n_relations, rng)
        leaf_order = list(range(n_relations))
        rng.shuffle(leaf_order)
        builder = _TreeBuilder(relations, rng, config, leaf_order)
        tree, visible, gj_names = builder.build(shape)
        edges = builder.edges

    group_by = _pick_group_attrs(visible, gj_names, rng, config)
    aggregates = _pick_aggregates(visible, gj_names, rng, config)
    return Query(relations, edges, tree, group_by, aggregates)


def generate_workload(
    count: int,
    n_relations: int,
    rng: random.Random,
    config: Optional[WorkloadConfig] = None,
    unique: Optional[int] = None,
) -> List[Query]:
    """A batch of *count* random queries for the service-layer drivers.

    *unique* bounds the number of distinct query shapes: production
    traffic repeats shapes heavily (parameterised queries, dashboards),
    so the default workload cycles ``unique`` distinct queries to length
    *count*, shuffled — the repetition pattern plan caches feed on.
    ``unique=None`` (or >= count) yields all-distinct queries.
    """
    if count < 1:
        raise ValueError(f"workload size must be >= 1, got {count}")
    distinct = count if unique is None else max(1, min(unique, count))
    shapes = [generate_query(n_relations, rng, config) for _ in range(distinct)]
    batch = [shapes[i % distinct] for i in range(count)]
    rng.shuffle(batch)
    return batch


def _random_relation(index: int, rng: random.Random, config: WorkloadConfig) -> RelationInfo:
    name = f"r{index}"
    cardinality = float(
        int(10 ** rng.uniform(_log10(config.min_cardinality), _log10(config.max_cardinality)))
    )
    cardinality = max(2.0, cardinality)
    attrs = (f"{name}.id", f"{name}.j", f"{name}.g", f"{name}.a")
    distinct = {
        f"{name}.id": cardinality,  # statistically a key
        f"{name}.j": max(2.0, float(int(cardinality ** rng.uniform(0.3, 1.0)))),
        f"{name}.g": float(rng.randint(2, 50)),
        f"{name}.a": max(2.0, float(int(cardinality ** rng.uniform(0.5, 1.0)))),
    }
    return RelationInfo(
        name=name,
        attributes=attrs,
        cardinality=cardinality,
        distinct=distinct,
        keys=(frozenset({f"{name}.id"}),),
    )


def _log10(x: float) -> float:
    import math

    return math.log10(x)


class _TreeBuilder:
    """Recursively instantiates a shape into tree + edges."""

    def __init__(
        self,
        relations: Sequence[RelationInfo],
        rng: random.Random,
        config: WorkloadConfig,
        leaf_order: List[int],
    ):
        self.relations = relations
        self.rng = rng
        self.config = config
        self.leaf_order = leaf_order
        self.next_leaf = 0
        self.edges: List[JoinEdge] = []
        self.gj_counter = 0

    def build(self, shape: Shape) -> Tuple[Tree, FrozenSet[str], List[str]]:
        if shape is None:
            vertex = self.leaf_order[self.next_leaf]
            self.next_leaf += 1
            return TreeLeaf(vertex), frozenset(self.relations[vertex].attributes), []

        left_tree, left_visible, left_gj = self.build(shape[0])
        right_tree, right_visible, right_gj = self.build(shape[1])

        op = self._pick_operator()
        left_attr = self._pick_join_attr(left_visible, left_gj)
        right_attr = self._pick_join_attr(right_visible, right_gj)
        predicate = Attr(left_attr).eq(Attr(right_attr))
        selectivity = self._selectivity(left_attr, right_attr)

        groupjoin_vector = None
        if op is OpKind.GROUPJOIN:
            groupjoin_vector = self._groupjoin_vector(right_visible)

        edge = JoinEdge(
            edge_id=len(self.edges),
            op=op,
            predicate=predicate,
            selectivity=selectivity,
            groupjoin_vector=groupjoin_vector,
        )
        self.edges.append(edge)
        node = TreeNode(edge.edge_id, left_tree, right_tree)

        if op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI):
            visible = left_visible
            gj_names = left_gj
        elif op is OpKind.GROUPJOIN:
            assert groupjoin_vector is not None
            visible = left_visible | frozenset(groupjoin_vector.names())
            gj_names = left_gj + list(groupjoin_vector.names())
        else:
            visible = left_visible | right_visible
            gj_names = left_gj + right_gj
        return node, visible, gj_names

    def _pick_operator(self) -> OpKind:
        if self.config.inner_only:
            return OpKind.INNER
        kinds = list(self.config.operator_weights.keys())
        weights = [self.config.operator_weights[k] for k in kinds]
        return self.rng.choices(kinds, weights=weights, k=1)[0]

    def _pick_join_attr(self, visible: FrozenSet[str], gj_names: List[str]) -> str:
        # Join predicates use base attributes only (not groupjoin outputs).
        candidates = sorted(a for a in visible if a not in gj_names and not a.endswith(".a"))
        return self.rng.choice(candidates)

    def _selectivity(self, left_attr: str, right_attr: str) -> float:
        d1 = self._distinct_of(left_attr)
        d2 = self._distinct_of(right_attr)
        base = 1.0 / max(d1, d2)
        # Random perturbation so selectivities are not fully determined.
        return min(1.0, base * self.rng.uniform(0.5, 2.0))

    def _distinct_of(self, attr: str) -> float:
        rel_name = attr.split(".", 1)[0]
        for rel in self.relations:
            if rel.name == rel_name:
                return rel.distinct_count(attr)
        return 10.0

    def _groupjoin_vector(self, right_visible: FrozenSet[str]) -> AggVector:
        self.gj_counter += 1
        candidates = sorted(a for a in right_visible if a.endswith(".a"))
        target = self.rng.choice(candidates) if candidates else sorted(right_visible)[0]
        return AggVector(
            [AggItem(f"gj{self.gj_counter}", AggCall(AggKind.SUM, Attr(target)))]
        )


def _pick_group_attrs(
    visible: FrozenSet[str],
    gj_names: List[str],
    rng: random.Random,
    config: WorkloadConfig,
) -> Tuple[str, ...]:
    candidates = sorted(a for a in visible if a not in gj_names)
    preferred = [a for a in candidates if a.endswith(".g")] or candidates
    count = rng.randint(1, min(config.max_group_attrs, len(preferred)))
    return tuple(rng.sample(preferred, count))


def _pick_aggregates(
    visible: FrozenSet[str],
    gj_names: List[str],
    rng: random.Random,
    config: WorkloadConfig,
) -> AggVector:
    items: List[AggItem] = [AggItem("cnt", AggCall(AggKind.COUNT_STAR))]
    numeric = sorted(a for a in visible if a.endswith(".a") or a in gj_names)
    count = rng.randint(1, max(1, config.max_aggregates - 1))
    for index in range(count):
        if not numeric:
            break
        attr = rng.choice(numeric)
        roll = rng.random()
        if roll < config.distinct_probability:
            call = AggCall(AggKind.SUM, Attr(attr), distinct=True)
        elif roll < config.distinct_probability + config.avg_probability:
            call = AggCall(AggKind.AVG, Attr(attr))
        else:
            kind = rng.choice([AggKind.SUM, AggKind.COUNT, AggKind.MIN, AggKind.MAX])
            call = AggCall(kind, Attr(attr))
        items.append(AggItem(f"f{index}", call))
    return AggVector(items)
