"""Random query generation following the paper's evaluation setup (Sec. 5).

For a requested relation count the generator draws a uniformly random tree
shape, attaches relations to the leaves and operators to the internal
nodes, selects equality-join attributes between the subtrees' *visible*
attributes, selects grouping attributes and an aggregation vector from the
root-visible attributes, and draws random cardinalities, distinct counts
and selectivities.

Visibility matters because semijoins, antijoins and groupjoins hide their
right subtree's attributes: predicates and aggregates above such operators
may only use what survives.

A second, *SQL-emitting* mode (:func:`generate_sql_query` /
:func:`generate_sql_workload`) produces mixed-operator SQL **text** over
the TPC-H schema — INNER / LEFT / RIGHT / FULL joins, comma-FROM cross
joins, ``[NOT] EXISTS`` and ``[NOT] IN`` subqueries, ``IS [NOT] NULL``
and prefix ``NOT`` predicates — so the whole front door (lexer → parser →
binder → conflict detector) is exercised, not just programmatically built
:class:`~repro.query.spec.Query` objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import Tree, TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind
from repro.workload.unrank import Shape, random_tree_shape


@dataclass
class WorkloadConfig:
    """Tunable knobs of the random workload (paper defaults in comments)."""

    min_cardinality: float = 10.0
    max_cardinality: float = 100_000.0
    #: Weights for the operator attached to each internal node.
    operator_weights: Dict[OpKind, float] = field(
        default_factory=lambda: {
            OpKind.INNER: 0.50,
            OpKind.LEFT_OUTER: 0.16,
            OpKind.FULL_OUTER: 0.12,
            OpKind.LEFT_SEMI: 0.08,
            OpKind.LEFT_ANTI: 0.06,
            OpKind.GROUPJOIN: 0.08,
        }
    )
    max_group_attrs: int = 3
    max_aggregates: int = 4
    #: Probability that an aggregate is a distinct variant / avg.
    distinct_probability: float = 0.05
    avg_probability: float = 0.10
    inner_only: bool = False


def generate_query(
    n_relations: int, rng: random.Random, config: Optional[WorkloadConfig] = None
) -> Query:
    """One random query with *n_relations* relations."""
    config = config or WorkloadConfig()
    relations = [_random_relation(i, rng, config) for i in range(n_relations)]

    if n_relations == 1:
        tree: Tree = TreeLeaf(0)
        edges: List[JoinEdge] = []
        visible = frozenset(relations[0].attributes)
        gj_names: List[str] = []
    else:
        shape = random_tree_shape(n_relations, rng)
        leaf_order = list(range(n_relations))
        rng.shuffle(leaf_order)
        builder = _TreeBuilder(relations, rng, config, leaf_order)
        tree, visible, gj_names = builder.build(shape)
        edges = builder.edges

    group_by = _pick_group_attrs(visible, gj_names, rng, config)
    aggregates = _pick_aggregates(visible, gj_names, rng, config)
    return Query(relations, edges, tree, group_by, aggregates)


def generate_workload(
    count: int,
    n_relations: int,
    rng: random.Random,
    config: Optional[WorkloadConfig] = None,
    unique: Optional[int] = None,
) -> List[Query]:
    """A batch of *count* random queries for the service-layer drivers.

    *unique* bounds the number of distinct query shapes: production
    traffic repeats shapes heavily (parameterised queries, dashboards),
    so the default workload cycles ``unique`` distinct queries to length
    *count*, shuffled — the repetition pattern plan caches feed on.
    ``unique=None`` (or >= count) yields all-distinct queries.
    """
    if count < 1:
        raise ValueError(f"workload size must be >= 1, got {count}")
    distinct = count if unique is None else max(1, min(unique, count))
    shapes = [generate_query(n_relations, rng, config) for _ in range(distinct)]
    batch = [shapes[i % distinct] for i in range(count)]
    rng.shuffle(batch)
    return batch


def _random_relation(index: int, rng: random.Random, config: WorkloadConfig) -> RelationInfo:
    name = f"r{index}"
    cardinality = float(
        int(10 ** rng.uniform(_log10(config.min_cardinality), _log10(config.max_cardinality)))
    )
    cardinality = max(2.0, cardinality)
    attrs = (f"{name}.id", f"{name}.j", f"{name}.g", f"{name}.a")
    distinct = {
        f"{name}.id": cardinality,  # statistically a key
        f"{name}.j": max(2.0, float(int(cardinality ** rng.uniform(0.3, 1.0)))),
        f"{name}.g": float(rng.randint(2, 50)),
        f"{name}.a": max(2.0, float(int(cardinality ** rng.uniform(0.5, 1.0)))),
    }
    return RelationInfo(
        name=name,
        attributes=attrs,
        cardinality=cardinality,
        distinct=distinct,
        keys=(frozenset({f"{name}.id"}),),
    )


def _log10(x: float) -> float:
    import math

    return math.log10(x)


class _TreeBuilder:
    """Recursively instantiates a shape into tree + edges."""

    def __init__(
        self,
        relations: Sequence[RelationInfo],
        rng: random.Random,
        config: WorkloadConfig,
        leaf_order: List[int],
    ):
        self.relations = relations
        self.rng = rng
        self.config = config
        self.leaf_order = leaf_order
        self.next_leaf = 0
        self.edges: List[JoinEdge] = []
        self.gj_counter = 0

    def build(self, shape: Shape) -> Tuple[Tree, FrozenSet[str], List[str]]:
        if shape is None:
            vertex = self.leaf_order[self.next_leaf]
            self.next_leaf += 1
            return TreeLeaf(vertex), frozenset(self.relations[vertex].attributes), []

        left_tree, left_visible, left_gj = self.build(shape[0])
        right_tree, right_visible, right_gj = self.build(shape[1])

        op = self._pick_operator()
        left_attr = self._pick_join_attr(left_visible, left_gj)
        right_attr = self._pick_join_attr(right_visible, right_gj)
        predicate = Attr(left_attr).eq(Attr(right_attr))
        selectivity = self._selectivity(left_attr, right_attr)

        groupjoin_vector = None
        if op is OpKind.GROUPJOIN:
            groupjoin_vector = self._groupjoin_vector(right_visible)

        edge = JoinEdge(
            edge_id=len(self.edges),
            op=op,
            predicate=predicate,
            selectivity=selectivity,
            groupjoin_vector=groupjoin_vector,
        )
        self.edges.append(edge)
        node = TreeNode(edge.edge_id, left_tree, right_tree)

        if op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI):
            visible = left_visible
            gj_names = left_gj
        elif op is OpKind.GROUPJOIN:
            assert groupjoin_vector is not None
            visible = left_visible | frozenset(groupjoin_vector.names())
            gj_names = left_gj + list(groupjoin_vector.names())
        else:
            visible = left_visible | right_visible
            gj_names = left_gj + right_gj
        return node, visible, gj_names

    def _pick_operator(self) -> OpKind:
        if self.config.inner_only:
            return OpKind.INNER
        kinds = list(self.config.operator_weights.keys())
        weights = [self.config.operator_weights[k] for k in kinds]
        return self.rng.choices(kinds, weights=weights, k=1)[0]

    def _pick_join_attr(self, visible: FrozenSet[str], gj_names: List[str]) -> str:
        # Join predicates use base attributes only (not groupjoin outputs).
        candidates = sorted(a for a in visible if a not in gj_names and not a.endswith(".a"))
        return self.rng.choice(candidates)

    def _selectivity(self, left_attr: str, right_attr: str) -> float:
        d1 = self._distinct_of(left_attr)
        d2 = self._distinct_of(right_attr)
        base = 1.0 / max(d1, d2)
        # Random perturbation so selectivities are not fully determined.
        return min(1.0, base * self.rng.uniform(0.5, 2.0))

    def _distinct_of(self, attr: str) -> float:
        rel_name = attr.split(".", 1)[0]
        for rel in self.relations:
            if rel.name == rel_name:
                return rel.distinct_count(attr)
        return 10.0

    def _groupjoin_vector(self, right_visible: FrozenSet[str]) -> AggVector:
        self.gj_counter += 1
        candidates = sorted(a for a in right_visible if a.endswith(".a"))
        target = self.rng.choice(candidates) if candidates else sorted(right_visible)[0]
        return AggVector(
            [AggItem(f"gj{self.gj_counter}", AggCall(AggKind.SUM, Attr(target)))]
        )


def _pick_group_attrs(
    visible: FrozenSet[str],
    gj_names: List[str],
    rng: random.Random,
    config: WorkloadConfig,
) -> Tuple[str, ...]:
    candidates = sorted(a for a in visible if a not in gj_names)
    preferred = [a for a in candidates if a.endswith(".g")] or candidates
    count = rng.randint(1, min(config.max_group_attrs, len(preferred)))
    return tuple(rng.sample(preferred, count))


def _pick_aggregates(
    visible: FrozenSet[str],
    gj_names: List[str],
    rng: random.Random,
    config: WorkloadConfig,
) -> AggVector:
    items: List[AggItem] = [AggItem("cnt", AggCall(AggKind.COUNT_STAR))]
    numeric = sorted(a for a in visible if a.endswith(".a") or a in gj_names)
    count = rng.randint(1, max(1, config.max_aggregates - 1))
    for index in range(count):
        if not numeric:
            break
        attr = rng.choice(numeric)
        roll = rng.random()
        if roll < config.distinct_probability:
            call = AggCall(AggKind.SUM, Attr(attr), distinct=True)
        elif roll < config.distinct_probability + config.avg_probability:
            call = AggCall(AggKind.AVG, Attr(attr))
        else:
            kind = rng.choice([AggKind.SUM, AggKind.COUNT, AggKind.MIN, AggKind.MAX])
            call = AggCall(kind, Attr(attr))
        items.append(AggItem(f"f{index}", call))
    return AggVector(items)


# ---------------------------------------------------------------------------
# mixed-operator SQL mode
# ---------------------------------------------------------------------------

#: The TPC-H foreign-key graph the SQL mode walks: (table, column) pairs
#: that join meaningfully.  Walking links (instead of pairing arbitrary
#: columns) keeps the generated selectivities realistic.
SQL_LINKS: Tuple[Tuple[str, str, str, str], ...] = (
    ("nation", "n_regionkey", "region", "r_regionkey"),
    ("supplier", "s_nationkey", "nation", "n_nationkey"),
    ("customer", "c_nationkey", "nation", "n_nationkey"),
    ("orders", "o_custkey", "customer", "c_custkey"),
    ("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ("lineitem", "l_partkey", "part", "p_partkey"),
    ("partsupp", "ps_partkey", "part", "p_partkey"),
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
)

#: numeric columns usable in range / constant predicates
_SQL_NUMERIC = {
    "region": ("r_regionkey",),
    "nation": ("n_nationkey", "n_regionkey"),
    "supplier": ("s_acctbal", "s_suppkey"),
    "customer": ("c_acctbal", "c_custkey"),
    "part": ("p_size", "p_partkey"),
    "partsupp": ("ps_availqty", "ps_supplycost"),
    "orders": ("o_totalprice", "o_orderdate"),
    "lineitem": ("l_quantity", "l_extendedprice"),
}

#: low-cardinality columns that make sensible grouping keys
_SQL_GROUP_COLS = {
    "region": ("r_name",),
    "nation": ("n_name", "n_regionkey"),
    "supplier": ("s_nationkey", "s_name"),
    "customer": ("c_mktsegment", "c_nationkey"),
    "part": ("p_type", "p_size"),
    "partsupp": ("ps_suppkey",),
    "orders": ("o_orderstatus", "o_shippriority"),
    "lineitem": ("l_returnflag", "l_linenumber"),
}


@dataclass
class SqlWorkloadConfig:
    """Knobs of the mixed-operator SQL mode."""

    #: FROM/JOIN tables per query (subquery tables come on top).
    min_tables: int = 1
    max_tables: int = 3
    #: How each grown table attaches to the query so far.  ``comma`` lands
    #: in the FROM list with its equijoin in WHERE (only possible before
    #: the first explicit JOIN — SQL grammar).
    join_style_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "join": 0.40,
            "comma": 0.15,
            "left": 0.15,
            "right": 0.15,
            "full": 0.15,
        }
    )
    #: Probability of attaching an EXISTS / IN subquery (drawn twice, so
    #: some queries carry two quantified predicates).
    subquery_probability: float = 0.6
    #: Among subqueries: NOT EXISTS / NOT IN share.
    negated_probability: float = 0.5
    #: Among subqueries: IN (vs EXISTS) share.
    in_probability: float = 0.4
    #: Probability that the subquery carries its own local predicate.
    subquery_where_probability: float = 0.4
    #: Per-query probabilities of the scalar predicate extras.
    range_probability: float = 0.4
    is_null_probability: float = 0.3
    not_probability: float = 0.3
    #: Extra grouping column beyond the first.
    second_group_probability: float = 0.3
    #: Extra aggregate (min/max/sum over a numeric column) beyond count(*).
    extra_aggregate_probability: float = 0.6


def _sql_neighbors() -> Dict[str, List[Tuple[str, str, str]]]:
    """table → [(own column, other table, other column)] in both directions."""
    neighbors: Dict[str, List[Tuple[str, str, str]]] = {}
    for t1, c1, t2, c2 in SQL_LINKS:
        neighbors.setdefault(t1, []).append((c1, t2, c2))
        neighbors.setdefault(t2, []).append((c2, t1, c1))
    return neighbors


_NEIGHBORS = _sql_neighbors()


def generate_sql_query(
    rng: random.Random, config: Optional[SqlWorkloadConfig] = None
) -> str:
    """One random mixed-operator SQL statement over the TPC-H schema.

    The result always parses and binds against ``Catalog.from_tpch()``;
    determinism follows *rng* alone.
    """
    config = config or SqlWorkloadConfig()
    n_tables = rng.randint(config.min_tables, config.max_tables)

    start = rng.choice(sorted(_NEIGHBORS))
    aliases: List[Tuple[str, str]] = [("t0", start)]  # (alias, table)
    #: the last FROM item's join group: JOIN binds tighter than the comma,
    #: so ON clauses may only reference these aliases.
    group_aliases: List[Tuple[str, str]] = [("t0", start)]
    from_items = [f"{start} t0"]
    join_clauses: List[str] = []
    where: List[str] = []
    comma_allowed = True

    styles = [k for k, w in sorted(config.join_style_weights.items()) if w > 0]
    weights = [config.join_style_weights[k] for k in styles]
    while len(aliases) < n_tables:
        style = rng.choices(styles, weights=weights, k=1)[0]
        if style == "comma" and not comma_allowed:
            style = "join"
        # Comma equijoins live in WHERE and may reference any alias; an ON
        # clause is scoped to the current join group.
        hosts = aliases if style == "comma" else group_aliases
        host_alias, host_table = rng.choice(hosts)
        links = _NEIGHBORS.get(host_table, [])
        if not links:
            break
        host_col, new_table, new_col = rng.choice(sorted(links))
        alias = f"t{len(aliases)}"
        condition = f"{host_alias}.{host_col} = {alias}.{new_col}"
        if style == "comma":
            from_items.append(f"{new_table} {alias}")
            where.append(condition)
            group_aliases = [(alias, new_table)]  # joins extend the last item
        else:
            comma_allowed = False
            keyword = {
                "join": "JOIN",
                "left": "LEFT JOIN",
                "right": "RIGHT JOIN",
                "full": "FULL JOIN",
            }[style]
            join_clauses.append(f"{keyword} {new_table} {alias} ON {condition}")
            group_aliases.append((alias, new_table))
        aliases.append((alias, new_table))

    # -- quantified predicates: [NOT] EXISTS / [NOT] IN --------------------
    sub_counter = 0
    for _ in range(2):
        if rng.random() >= config.subquery_probability:
            continue
        host_alias, host_table = rng.choice(aliases)
        links = _NEIGHBORS.get(host_table, [])
        if not links:
            continue
        host_col, sub_table, sub_col = rng.choice(sorted(links))
        sub_alias = f"s{sub_counter}"
        sub_counter += 1
        negated = rng.random() < config.negated_probability
        sub_where = ""
        if rng.random() < config.subquery_where_probability:
            numeric = rng.choice(_SQL_NUMERIC[sub_table])
            sub_where = f" AND {sub_alias}.{numeric} > {rng.randint(1, 50)}"
        if rng.random() < config.in_probability:
            quantifier = "NOT IN" if negated else "IN"
            inner_where = f" WHERE {sub_where[5:]}" if sub_where else ""
            where.append(
                f"{host_alias}.{host_col} {quantifier} "
                f"(SELECT {sub_alias}.{sub_col} FROM {sub_table} {sub_alias}{inner_where})"
            )
        else:
            quantifier = "NOT EXISTS" if negated else "EXISTS"
            where.append(
                f"{quantifier} (SELECT * FROM {sub_table} {sub_alias} "
                f"WHERE {sub_alias}.{sub_col} = {host_alias}.{host_col}{sub_where})"
            )

    # -- scalar predicate extras -------------------------------------------
    extra_alias, extra_table = rng.choice(aliases)
    if rng.random() < config.range_probability:
        column = rng.choice(_SQL_NUMERIC[extra_table])
        op = rng.choice(("<", ">", "<=", ">="))
        where.append(f"{extra_alias}.{column} {op} {rng.randint(1, 1000)}")
    if rng.random() < config.is_null_probability:
        column = rng.choice(_SQL_NUMERIC[extra_table])
        where.append(
            f"{extra_alias}.{column} IS {'NOT ' if rng.random() < 0.5 else ''}NULL"
        )
    if rng.random() < config.not_probability:
        column = rng.choice(_SQL_NUMERIC[extra_table])
        where.append(f"NOT {extra_alias}.{column} = {rng.randint(1, 100)}")

    # -- output shape --------------------------------------------------------
    group_cols: List[str] = []
    group_alias, group_table = rng.choice(aliases)
    group_cols.append(f"{group_alias}.{rng.choice(_SQL_GROUP_COLS[group_table])}")
    if rng.random() < config.second_group_probability:
        alias2, table2 = rng.choice(aliases)
        candidate = f"{alias2}.{rng.choice(_SQL_GROUP_COLS[table2])}"
        if candidate not in group_cols:
            group_cols.append(candidate)
    select_items = list(group_cols) + ["count(*) AS cnt"]
    if rng.random() < config.extra_aggregate_probability:
        agg_alias, agg_table = rng.choice(aliases)
        func = rng.choice(("sum", "min", "max"))
        select_items.append(
            f"{func}({agg_alias}.{rng.choice(_SQL_NUMERIC[agg_table])}) AS agg0"
        )

    sql = f"SELECT {', '.join(select_items)} FROM {', '.join(from_items)}"
    if join_clauses:
        sql += " " + " ".join(join_clauses)
    if where:
        sql += " WHERE " + " AND ".join(where)
    sql += " GROUP BY " + ", ".join(group_cols)
    return sql


def generate_sql_workload(
    count: int,
    rng: random.Random,
    config: Optional[SqlWorkloadConfig] = None,
    unique: Optional[int] = None,
) -> List[str]:
    """A batch of mixed-operator SQL statements (see :func:`generate_workload`
    for the *unique*-shapes repetition semantics)."""
    if count < 1:
        raise ValueError(f"workload size must be >= 1, got {count}")
    distinct = count if unique is None else max(1, min(unique, count))
    shapes = [generate_sql_query(rng, config) for _ in range(distinct)]
    batch = [shapes[i % distinct] for i in range(count)]
    rng.shuffle(batch)
    return batch
