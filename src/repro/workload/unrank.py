"""Uniform generation of binary tree shapes by unranking.

The paper generates random operator trees "using the unranking procedure
proposed by Liebehenschel [5]": every binary tree shape with *n* leaves is
assigned a rank in ``0 .. C(n-1)-1`` (Catalan number), and unranking a
uniformly random rank yields a uniformly random shape.

The implementation decomposes a tree with ``n`` leaves by the size ``k`` of
its left subtree: shapes are ordered first by ``k``, then lexicographically
by (left shape rank, right shape rank).
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Tuple, Union

#: A shape is a leaf count of 1 (``None``) or a pair of sub-shapes.
Shape = Union[None, Tuple["Shape", "Shape"]]


@lru_cache(maxsize=None)
def count_trees(leaves: int) -> int:
    """Number of binary tree shapes with *leaves* leaves (Catalan(n-1))."""
    if leaves < 1:
        raise ValueError("trees need at least one leaf")
    if leaves == 1:
        return 1
    return sum(count_trees(k) * count_trees(leaves - k) for k in range(1, leaves))


def unrank_tree(leaves: int, rank: int) -> Shape:
    """The *rank*-th binary tree shape with *leaves* leaves."""
    total = count_trees(leaves)
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} out of range for {leaves} leaves (0..{total - 1})")
    if leaves == 1:
        return None
    for left_leaves in range(1, leaves):
        left_count = count_trees(left_leaves)
        right_count = count_trees(leaves - left_leaves)
        block = left_count * right_count
        if rank < block:
            left_rank, right_rank = divmod(rank, right_count)
            return (
                unrank_tree(left_leaves, left_rank),
                unrank_tree(leaves - left_leaves, right_rank),
            )
        rank -= block
    raise AssertionError("unreachable")


def rank_tree(shape: Shape) -> int:
    """Inverse of :func:`unrank_tree` (useful for testing bijectivity)."""
    if shape is None:
        return 0
    left, right = shape
    left_leaves = leaf_count(left)
    total_leaves = leaf_count(shape)
    rank = 0
    for k in range(1, left_leaves):
        rank += count_trees(k) * count_trees(total_leaves - k)
    right_count = count_trees(total_leaves - left_leaves)
    return rank + rank_tree(left) * right_count + rank_tree(right)


def leaf_count(shape: Shape) -> int:
    """Number of leaves of a shape."""
    if shape is None:
        return 1
    return leaf_count(shape[0]) + leaf_count(shape[1])


def random_tree_shape(leaves: int, rng: random.Random) -> Shape:
    """A uniformly random binary tree shape with *leaves* leaves."""
    return unrank_tree(leaves, rng.randrange(count_trees(leaves)))
