"""Random workload generation (paper Sec. 5).

The evaluation generates 10,000 random operator trees per relation count:
random binary tree shapes via unranking (Liebehenschel [5]), random
operators on internal nodes, random relations on leaves, randomly selected
equality-join and grouping attributes, and random cardinalities and
selectivities.  :mod:`repro.workload.data` additionally instantiates
micro-scale databases for executing the generated queries, which powers the
end-to-end correctness tests.
"""

from repro.workload.unrank import count_trees, random_tree_shape, unrank_tree
from repro.workload.generator import (
    SqlWorkloadConfig,
    WorkloadConfig,
    generate_query,
    generate_sql_query,
    generate_sql_workload,
    generate_workload,
)
from repro.workload.data import generate_database
from repro.workload.topologies import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
    topology_query,
)

__all__ = [
    "count_trees",
    "unrank_tree",
    "random_tree_shape",
    "SqlWorkloadConfig",
    "WorkloadConfig",
    "generate_query",
    "generate_sql_query",
    "generate_sql_workload",
    "generate_workload",
    "generate_database",
    "chain_query",
    "cycle_query",
    "star_query",
    "clique_query",
    "topology_query",
]
