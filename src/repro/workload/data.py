"""Micro-scale database instantiation for generated queries.

For end-to-end correctness checks the optimizer's plans must be *executed*,
so this module creates tiny concrete relations that are consistent with a
query's schema: join attributes draw from small overlapping integer
domains (so joins actually match and miss), aggregation attributes include
occasional NULLs, and key attributes are genuinely unique and duplicate
free — matching what the statistics promised the optimizer.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.algebra.relation import Relation
from repro.algebra.rows import Row
from repro.algebra.values import NULL
from repro.query.spec import Query


def generate_database(
    query: Query, rng: random.Random, max_rows: int = 5
) -> Dict[str, Relation]:
    """A random micro database for *query* (2..max_rows rows per relation)."""
    database: Dict[str, Relation] = {}
    for rel in query.relations:
        n = rng.randint(2, max_rows)
        rows = []
        for i in range(n):
            values = {}
            for attr in rel.attributes:
                if attr.endswith(".id"):
                    values[attr] = i  # unique: honours the declared key
                elif attr.endswith(".a"):
                    values[attr] = NULL if rng.random() < 0.15 else rng.randint(-3, 3)
                else:
                    values[attr] = rng.randint(0, 3)
            rows.append(Row(values))
        database[rel.name] = Relation(rel.attributes, rows)
    return database
