"""Deterministic fixed-topology workloads: chain, cycle, star, clique.

The random generator (:mod:`repro.workload.generator`) reproduces the
paper's Sec. 5 evaluation; this module complements it with the four
classic join topologies of the DPhyp complexity analysis (Moerkotte &
Neumann 2006, Table 1), fully deterministic so perf runs are comparable
across commits — they drive :mod:`benchmarks.bench_hotpath` and the
n=20-chain enumeration smoke test.

Statistics are chosen so every topology exercises the eager-aggregation
machinery without drowning it:

* **chain / cycle / clique** — relations of varied cardinality keyed on
  ``r{i}.id``, equality predicates on the ``.b`` columns, a sum over the
  last relation, grouping on ``r0.b``.  Cycles and cliques close their
  extra predicates as *floating* inner edges (the tree contributes the
  chain spine), matching how WHERE-clause cycles reach the optimizer.
* **star** — a fact table with one foreign key per dimension and
  *uniform* keyed dimensions.  Uniformity keeps symmetric subplans
  cost-comparable, so dominance pruning works the way it would on a real
  star schema instead of drowning in incomparable float noise.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Expr
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import Tree, TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind

__all__ = ["chain_query", "cycle_query", "star_query", "clique_query", "topology_query"]


def _eq(a: str, b: str) -> Expr:
    return BinOp("=", Attr(a), Attr(b))


def _varied_relation(i: int) -> RelationInfo:
    """A keyed relation with deterministic, size-varied statistics."""
    return RelationInfo(
        name=f"R{i}",
        attributes=(f"r{i}.id", f"r{i}.a", f"r{i}.b"),
        cardinality=float(10 + (97 * i) % 9000),
        distinct={f"r{i}.b": 10.0},
        keys=(frozenset({f"r{i}.id"}),),
    )


def _spine(n: int, edge_ids: List[int]) -> Tree:
    """Left-deep tree over vertices 0..n-1 using *edge_ids* in order."""
    tree: Tree = TreeLeaf(0)
    for i in range(n - 1):
        tree = TreeNode(edge_id=edge_ids[i], left=tree, right=TreeLeaf(i + 1))
    return tree


def _tail_aggregate(n: int) -> AggVector:
    return AggVector([AggItem("s", AggCall(AggKind.SUM, Attr(f"r{n - 1}.a")))])


def chain_query(n: int) -> Query:
    """R0 — R1 — ... — R(n-1), inner equality joins on the ``.b`` columns."""
    if n < 2:
        raise ValueError("chain needs at least two relations")
    relations = [_varied_relation(i) for i in range(n)]
    edges = [
        JoinEdge(i, OpKind.INNER, _eq(f"r{i}.b", f"r{i + 1}.b"), 0.1)
        for i in range(n - 1)
    ]
    tree = _spine(n, list(range(n - 1)))
    return Query(relations, edges, tree, group_by=("r0.b",), aggregates=_tail_aggregate(n))


def cycle_query(n: int) -> Query:
    """A chain plus the closing predicate R(n-1) — R0 as a floating edge."""
    if n < 3:
        raise ValueError("cycle needs at least three relations")
    relations = [_varied_relation(i) for i in range(n)]
    edges = [
        JoinEdge(i, OpKind.INNER, _eq(f"r{i}.b", f"r{i + 1}.b"), 0.1)
        for i in range(n - 1)
    ]
    edges.append(JoinEdge(n - 1, OpKind.INNER, _eq(f"r{n - 1}.b", "r0.b"), 0.1))
    tree = _spine(n, list(range(n - 1)))
    return Query(relations, edges, tree, group_by=("r0.b",), aggregates=_tail_aggregate(n))


def star_query(n: int) -> Query:
    """A fact table R0 with foreign keys into n-1 uniform keyed dimensions."""
    if n < 2:
        raise ValueError("star needs at least two relations")
    fact_attrs = tuple(["r0.a", "r0.b"] + [f"r0.fk{i}" for i in range(1, n)])
    fact_distinct = {f"r0.fk{i}": 100.0 for i in range(1, n)}
    fact_distinct["r0.b"] = 50.0
    relations = [
        RelationInfo("R0", fact_attrs, cardinality=50_000.0, distinct=fact_distinct)
    ]
    for i in range(1, n):
        relations.append(
            RelationInfo(
                name=f"R{i}",
                attributes=(f"r{i}.id", f"r{i}.x"),
                cardinality=100.0,
                distinct={f"r{i}.x": 20.0},
                keys=(frozenset({f"r{i}.id"}),),
            )
        )
    edges = [
        JoinEdge(i - 1, OpKind.INNER, _eq(f"r0.fk{i}", f"r{i}.id"), 0.01)
        for i in range(1, n)
    ]
    tree = _spine(n, list(range(n - 1)))
    aggregates = AggVector([AggItem("s", AggCall(AggKind.SUM, Attr("r0.a")))])
    return Query(relations, edges, tree, group_by=("r0.b",), aggregates=aggregates)


def clique_query(n: int) -> Query:
    """Every pair of relations joined on ``.b``; non-spine predicates float."""
    if n < 3:
        raise ValueError("clique needs at least three relations")
    relations = [_varied_relation(i) for i in range(n)]
    edges: List[JoinEdge] = []
    spine_ids: List[int] = []
    for u, w in combinations(range(n), 2):
        edge_id = len(edges)
        if w == u + 1:
            spine_ids.append(edge_id)
        edges.append(JoinEdge(edge_id, OpKind.INNER, _eq(f"r{u}.b", f"r{w}.b"), 0.1))
    tree = _spine(n, spine_ids)
    return Query(relations, edges, tree, group_by=("r0.b",), aggregates=_tail_aggregate(n))


_TOPOLOGIES = {
    "chain": chain_query,
    "cycle": cycle_query,
    "star": star_query,
    "clique": clique_query,
}


def topology_query(topology: str, n: int) -> Query:
    """Build the named topology (``chain``/``cycle``/``star``/``clique``)."""
    try:
        builder = _TOPOLOGIES[topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {topology!r} (known: {', '.join(sorted(_TOPOLOGIES))})"
        ) from None
    return builder(n)
