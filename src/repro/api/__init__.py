"""`repro.api` — the single documented entry point.

Everything the CLI, the benchmarks, the examples and the service layer
need comes through one facade::

    from repro.api import PlannerSession, OptimizerConfig

    session = PlannerSession.tpch(scale_factor=1.0)
    handle = session.sql("SELECT ... GROUP BY ...").optimize()
    handle.explain(); handle.cost; handle.execute(db); handle.to_dict()

Configuration is one frozen value (:class:`OptimizerConfig`), extension
is registration (:data:`STRATEGIES`, :data:`COST_MODELS`), tracing is
:meth:`PlannerSession.on`.  The seed's free functions — ``parse_query``,
``prepare``, ``optimize``, ``optimize_many``, ``run_batch``, ``execute``
— remain supported shims that the session path delegates to, so both
surfaces always produce identical plans.
"""

from repro.api.session import (
    PlanHandle,
    PlannerSession,
    PreparedStatement,
    StrategyComparison,
    plan_to_dict,
)
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.costmodel import CostModel, CoutModel
from repro.optimizer.deadline import Deadline, PlanningDeadlineExceeded
from repro.optimizer.driver import OptimizationResult, OptimizerHooks
from repro.optimizer.registry import (
    COST_MODELS,
    ENGINES,
    STRATEGIES,
    CostModelRegistry,
    StrategyRegistry,
)
from repro.optimizer.strategies import Strategy
from repro.service.cache import PlanCache
from repro.sql.catalog import Catalog

__all__ = [
    "PlannerSession",
    "PreparedStatement",
    "PlanHandle",
    "StrategyComparison",
    "plan_to_dict",
    "OptimizerConfig",
    "OptimizerHooks",
    "OptimizationResult",
    "Deadline",
    "PlanningDeadlineExceeded",
    "Strategy",
    "CostModel",
    "CoutModel",
    "StrategyRegistry",
    "CostModelRegistry",
    "STRATEGIES",
    "COST_MODELS",
    "ENGINES",
    "PlanCache",
    "Catalog",
]
