"""The planner session: the package's one front door.

A :class:`PlannerSession` owns everything a serving process needs —
a :class:`~repro.sql.Catalog` for name/statistics resolution, an
:class:`~repro.optimizer.config.OptimizerConfig` with the optimizer
knobs, a :class:`~repro.service.cache.PlanCache` (auto-watching the
catalog for invalidation), and optionally a database to execute plans
against — and exposes the whole pipeline as one fluent flow::

    session = PlannerSession.tpch(scale_factor=1.0)
    handle = session.sql("SELECT ... GROUP BY ...").optimize()
    print(handle.cost, handle.explain())
    payload = handle.to_dict()          # JSON-ready, for serving

Stage by stage: :meth:`PlannerSession.sql` parses, binds, runs conflict
detection and builds the hypergraph once (a :class:`PreparedStatement`);
:meth:`PreparedStatement.optimize` runs the DP driver under the session
config (consulting the session cache) and returns a :class:`PlanHandle`;
:meth:`PreparedStatement.optimize_all_strategies` reuses the pre-pass
across every registered strategy and reports the cheapest.  Workloads go
through :meth:`PlannerSession.run_batch`, which delegates to the service
layer with the session's cache and config.

Tracing hooks (:meth:`PlannerSession.on`) observe every stage:
``"prepare"`` / ``"ccp"`` / ``"plan"`` / ``"result"`` map onto
:class:`~repro.optimizer.driver.OptimizerHooks`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.optimizer.config import OptimizerConfig
from repro.optimizer.driver import (
    OptimizationResult,
    OptimizerHooks,
    PreparedQuery,
    optimize,
    prepare,
)
from repro.optimizer.registry import STRATEGIES
from repro.optimizer.strategies import Strategy
from repro.plans.nodes import (
    GroupByNode,
    JoinNode,
    MapNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.plans.render import render_plan
from repro.query.spec import Query
from repro.service.batch import BatchItem, BatchReport, optimize_many, run_batch
from repro.service.cache import PlanCache
from repro.sql.binder import parse_query
from repro.sql.catalog import Catalog

#: events accepted by :meth:`PlannerSession.on`.
EVENTS = ("prepare", "ccp", "plan", "result")


class PlannerSession:
    """One configured planning context: catalog + config + cache (+ database).

    *catalog* resolves SQL names and statistics (None for sessions fed
    programmatically-built :class:`Query` objects).  *config* defaults to
    :class:`OptimizerConfig`'s defaults (EA-Prune, Cout, a 512-entry
    cache).  *cache* overrides the config-derived plan cache with a
    caller-owned one; the session subscribes whichever cache it ends up
    with to the catalog, so statistics updates invalidate stale plans.
    *database* (mapping relation name → Relation) is the default
    execution target for :meth:`PlanHandle.execute`.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        config: Optional[OptimizerConfig] = None,
        database: Optional[Mapping] = None,
        cache: Optional[PlanCache] = None,
    ):
        self.catalog = catalog
        self.config = config if config is not None else OptimizerConfig()
        self.database = database
        if cache is not None:
            self.cache: Optional[PlanCache] = cache
        elif self.config.caching_enabled:
            self.cache = PlanCache(capacity=self.config.cache_capacity)
        else:
            self.cache = None
        self._unwatch: Optional[Callable[[], None]] = None
        self._unwatch_deltas: Optional[Callable[[], None]] = None
        self._revalidator = None
        if self.cache is not None and self.catalog is not None:
            self._unwatch = self.cache.watch(self.catalog)
            # Statistics *drift* (update_stats) marks entries stale instead
            # of dropping them — the stale-while-revalidate lifecycle.
            self._unwatch_deltas = self.cache.watch_deltas(self.catalog)
        self._listeners: Dict[str, List[Callable]] = {event: [] for event in EVENTS}

    @classmethod
    def tpch(cls, scale_factor: float = 1.0, **kwargs) -> "PlannerSession":
        """A session over the built-in TPC-H catalog."""
        return cls(catalog=Catalog.from_tpch(scale_factor=scale_factor), **kwargs)

    # -- the fluent pipeline -------------------------------------------------
    def parse(self, sql: str) -> Query:
        """Parse and bind *sql* against the session catalog (no pre-pass)."""
        if self.catalog is None:
            raise ValueError(
                "session has no catalog — construct PlannerSession(catalog=...) "
                "or PlannerSession.tpch() to plan SQL text"
            )
        return parse_query(sql, self.catalog)

    def sql(self, sql: str) -> "PreparedStatement":
        """Parse, bind, conflict-detect and hypergraph *sql* → statement."""
        return self.statement(self.parse(sql), sql=sql)

    def statement(self, query: Query, sql: Optional[str] = None) -> "PreparedStatement":
        """Wrap an already-built :class:`Query` in a prepared statement."""
        prepared = prepare(query)
        self._emit("prepare", prepared)
        return PreparedStatement(self, query, prepared, sql=sql)

    def optimize(self, query: Union[str, Query], **overrides) -> "PlanHandle":
        """One-shot convenience: ``session.sql(...).optimize(...)``.

        *query* is SQL text (needs a catalog) or a :class:`Query`;
        *overrides* are per-call :class:`OptimizerConfig` fields
        (``strategy=``, ``factor=``, ``cost_model=``, ...).
        """
        statement = self.sql(query) if isinstance(query, str) else self.statement(query)
        return statement.optimize(**overrides)

    def execute(self, query: Union[str, Query], executor: Optional[str] = None,
                limit: Optional[int] = None, **overrides):
        """Optimize and immediately execute against the session database.

        *executor* picks the backend (``"interpreter"`` /
        ``"columnar"``); *limit* truncates the result.  Remaining
        *overrides* are per-call optimizer config fields.
        """
        return self.optimize(query, **overrides).execute(executor=executor, limit=limit)

    # -- workloads -----------------------------------------------------------
    def optimize_many(
        self, queries: Sequence[Query], **overrides
    ) -> Iterator[BatchItem]:
        """Stream the service batch driver under the session config/cache."""
        config = self._derive(overrides)
        for item in optimize_many(queries, cache=self.cache, config=config):
            if item.result is not None:  # failed items have no result to trace
                self._emit("result", item.result)
            yield item

    def run_batch(self, queries: Sequence[Query], **overrides) -> BatchReport:
        """Run a whole workload and summarise it (see :func:`run_batch`)."""
        config = self._derive(overrides)
        report = run_batch(queries, cache=self.cache, config=config)
        for item in report.items:
            if item.result is not None:  # failed items have no result to trace
                self._emit("result", item.result)
        return report

    # -- events --------------------------------------------------------------
    def on(self, event: str, callback: Callable) -> Callable[[], None]:
        """Subscribe *callback* to *event*; returns an unsubscribe handle.

        Events: ``"prepare"`` (PreparedQuery), ``"ccp"`` (s1, s2),
        ``"plan"`` (PlanInfo), ``"result"`` (OptimizationResult).  The
        ``ccp``/``plan`` events fire only for in-process optimization —
        batch workers in other processes do not call back.
        """
        if event not in self._listeners:
            raise ValueError(f"unknown event {event!r} (one of {', '.join(EVENTS)})")
        self._listeners[event].append(callback)

        def unsubscribe() -> None:
            try:
                self._listeners[event].remove(callback)
            except ValueError:  # already unsubscribed
                pass

        return unsubscribe

    def _emit(self, event: str, *args) -> None:
        for callback in tuple(self._listeners[event]):
            callback(*args)

    def _hooks(self) -> Optional[OptimizerHooks]:
        """Driver hooks fanning out to listeners; None when nobody listens."""
        listeners = self._listeners
        if not any(listeners[event] for event in EVENTS):
            return None
        return OptimizerHooks(
            on_prepare=(lambda prepared: self._emit("prepare", prepared))
            if listeners["prepare"] else None,
            on_ccp=(lambda s1, s2: self._emit("ccp", s1, s2))
            if listeners["ccp"] else None,
            on_plan=(lambda plan: self._emit("plan", plan))
            if listeners["plan"] else None,
            on_result=(lambda result: self._emit("result", result))
            if listeners["result"] else None,
        )

    # -- lifecycle -----------------------------------------------------------
    def _derive(self, overrides: dict) -> OptimizerConfig:
        return self.config.with_overrides(**overrides) if overrides else self.config

    def enable_revalidation(self, workers: int = 1, on_event=None):
        """Start background revalidation of stale cache entries.

        Replaces the session's passive mark-stale delta subscription with
        an active :class:`~repro.service.revalidate.StaleRevalidator`
        (*workers* threads) that re-costs or re-plans stale entries as
        statistics drift lands.  Returns the revalidator (also owned and
        closed by the session).  Requires a catalog and a cache.
        """
        if self.cache is None or self.catalog is None:
            raise ValueError("revalidation needs both a cache and a catalog")
        if self._revalidator is not None:
            return self._revalidator
        from repro.service.revalidate import StaleRevalidator

        if self._unwatch_deltas is not None:  # the revalidator subscribes itself
            self._unwatch_deltas()
            self._unwatch_deltas = None
        self._revalidator = StaleRevalidator(
            self.cache, self.catalog, self.config,
            workers=workers, on_event=on_event,
        ).subscribe()
        return self._revalidator

    def close(self) -> None:
        """Detach the cache from the catalog (idempotent)."""
        if self._revalidator is not None:
            self._revalidator.close()
            self._revalidator = None
        if self._unwatch_deltas is not None:
            self._unwatch_deltas()
            self._unwatch_deltas = None
        if self._unwatch is not None:
            self._unwatch()
            self._unwatch = None

    def __enter__(self) -> "PlannerSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        catalog = "-" if self.catalog is None else f"{len(self.catalog.tables())} tables"
        cache = "off" if self.cache is None else f"{len(self.cache)}/{self.cache.capacity}"
        return (
            f"PlannerSession(catalog={catalog}, strategy={self.config.strategy_name}, "
            f"cost_model={self.config.cost_model_name}, cache={cache})"
        )


class PreparedStatement:
    """A parsed, bound, conflict-detected query, ready to optimize.

    Binds one :class:`Query` to its strategy-independent pre-pass
    (:class:`PreparedQuery`), so repeated optimization — across
    strategies, or after config tweaks — never re-runs conflict detection
    or hypergraph construction.
    """

    def __init__(
        self,
        session: PlannerSession,
        query: Query,
        prepared: PreparedQuery,
        sql: Optional[str] = None,
    ):
        self.session = session
        self.query = query
        self.prepared = prepared
        self.sql = sql

    def optimize(self, **overrides) -> "PlanHandle":
        """Run the DP driver under the session config (+ *overrides*)."""
        config = self.session._derive(overrides)
        result = optimize(
            self.query,
            prepared=self.prepared,
            cache=self.session.cache,
            config=config,
            hooks=self.session._hooks(),
        )
        return PlanHandle(self, result, config)

    def optimize_all_strategies(
        self, strategies: Optional[Iterable[Union[str, Strategy]]] = None, **overrides
    ) -> "StrategyComparison":
        """Optimize once per strategy (default: every registered one).

        The pre-pass is shared; each strategy keys its own cache entry.
        Returns a :class:`StrategyComparison` whose :attr:`~StrategyComparison.best`
        is the minimum-cost handle (first-registered wins ties).
        """
        chosen = tuple(strategies) if strategies is not None else STRATEGIES.names()
        handles = []
        for strategy in chosen:
            handles.append(self.optimize(strategy=strategy, **overrides))
        return StrategyComparison(tuple(handles))

    def explain(self, **overrides) -> str:
        """Optimize and render the plan (EXPLAIN-style)."""
        return self.optimize(**overrides).explain()

    def __repr__(self) -> str:
        return f"PreparedStatement({self.sql or self.query!r})"


class StrategyComparison:
    """Outcome of :meth:`PreparedStatement.optimize_all_strategies`."""

    def __init__(self, handles: Tuple["PlanHandle", ...]):
        if not handles:
            raise ValueError("comparison needs at least one strategy")
        self.handles = handles

    @property
    def best(self) -> "PlanHandle":
        """The minimum-cost handle (earliest strategy wins ties)."""
        return min(self.handles, key=lambda handle: handle.cost)

    @property
    def winner(self) -> str:
        """Name of the strategy that produced the cheapest plan."""
        return self.best.strategy

    def __iter__(self) -> Iterator["PlanHandle"]:
        return iter(self.handles)

    def __len__(self) -> int:
        return len(self.handles)

    def __getitem__(self, strategy: str) -> "PlanHandle":
        for handle in self.handles:
            if handle.strategy == strategy:
                return handle
        raise KeyError(strategy)

    def to_dict(self) -> dict:
        """JSON-ready summary: per-strategy costs plus the winner."""
        return {
            "winner": self.winner,
            "strategies": [
                {
                    "strategy": handle.strategy,
                    "cost": handle.cost,
                    "elapsed_seconds": handle.result.elapsed_seconds,
                    "cache_hit": handle.result.cache_hit,
                }
                for handle in self.handles
            ],
        }


class PlanHandle:
    """One optimized plan with everything a caller does next.

    Wraps the driver's :class:`OptimizationResult` and keeps the
    statement (and through it the session) in reach: ``.explain()``
    renders, ``.execute()`` runs the plan against the session database
    (either backend), ``.to_dict()`` serialises for JSON serving.
    """

    def __init__(
        self,
        statement: PreparedStatement,
        result: OptimizationResult,
        config: OptimizerConfig,
    ):
        self.statement = statement
        self.result = result
        self.config = config

    # -- the numbers ---------------------------------------------------------
    @property
    def cost(self) -> float:
        return self.result.cost

    @property
    def strategy(self) -> str:
        return self.result.strategy

    @property
    def cardinality(self) -> float:
        return self.result.plan.cardinality

    @property
    def cache_hit(self) -> bool:
        return self.result.cache_hit

    @property
    def degraded(self) -> bool:
        """True when this is a deadline-degraded heuristic fallback plan."""
        return self.result.degraded

    @property
    def plan(self) -> PlanNode:
        """The executable plan tree."""
        return self.result.plan.node

    # -- actions -------------------------------------------------------------
    def explain(self) -> str:
        """The plan rendered as an indented EXPLAIN-style tree."""
        return render_plan(self.plan)

    def execute(
        self,
        database: Optional[Mapping] = None,
        executor: Optional[str] = None,
        limit: Optional[int] = None,
    ):
        """Run the plan against *database* (default: the session's).

        *database* is a mapping of relation name → scan source, or a
        :class:`~repro.data.tables.Dataset` (resolved per-relation via
        the query's source-table bindings).  *executor* picks the
        backend — ``"interpreter"`` (the recursive reference) or
        ``"columnar"`` (vectorized physical operators); default is
        :data:`repro.exec.DEFAULT_EXECUTOR`.  *limit*, when given,
        truncates the result to its first rows.
        """
        from repro.exec import DEFAULT_EXECUTOR, run_plan

        target = database if database is not None else self.statement.session.database
        if target is None:
            raise ValueError(
                "no database to execute against — pass execute(database=...) or "
                "construct the session with PlannerSession(database=...)"
            )
        if hasattr(target, "database_for"):  # a Dataset: bind per-relation views
            target = target.database_for(self.statement.query)
        return run_plan(
            self.plan,
            target,
            executor=executor if executor is not None else DEFAULT_EXECUTOR,
            limit=limit,
        )

    def to_dict(self) -> dict:
        """A JSON-serializable description of this plan (for serving)."""
        result = self.result
        return {
            "strategy": result.strategy,
            "cost_model": self.config.cost_model_name,
            "cost": result.cost,
            "cardinality": self.cardinality,
            "elapsed_seconds": result.elapsed_seconds,
            "cache_hit": result.cache_hit,
            "degraded": result.degraded,
            "ccp_count": result.ccp_count,
            "plans_built": result.plans_built,
            "plan": plan_to_dict(self.plan),
        }

    def __repr__(self) -> str:
        return (
            f"PlanHandle(strategy={self.strategy}, cost={self.cost:,.0f}, "
            f"cache_hit={self.cache_hit})"
        )


def plan_to_dict(node: PlanNode) -> dict:
    """Recursively serialise a plan tree into JSON-ready dicts."""
    if isinstance(node, ScanNode):
        return {
            "op": "scan",
            "relation": node.relation,
            "attributes": list(node.attributes),
        }
    if isinstance(node, SelectNode):
        return {
            "op": "select",
            "predicate": str(node.predicate),
            "input": plan_to_dict(node.child),
        }
    if isinstance(node, JoinNode):
        out = {
            "op": node.op.name.lower(),
            "predicate": str(node.predicate),
            "left": plan_to_dict(node.left),
            "right": plan_to_dict(node.right),
        }
        if node.groupjoin_vector is not None:
            out["groupjoin_vector"] = str(node.groupjoin_vector)
        return out
    if isinstance(node, GroupByNode):
        return {
            "op": "groupby",
            "group_by": list(node.group_attrs),
            "aggregates": str(node.vector),
            "input": plan_to_dict(node.child),
        }
    if isinstance(node, MapNode):
        return {
            "op": "map",
            "extensions": {name: str(expr) for name, expr in node.extensions},
            "input": plan_to_dict(node.child),
        }
    if isinstance(node, ProjectNode):
        return {
            "op": "project",
            "attributes": list(node.attributes),
            "input": plan_to_dict(node.child),
        }
    raise TypeError(f"unknown plan node {node!r}")
