"""SQL values and three-valued logic.

SQL distinguishes the *absence* of a value (``NULL``) from every real value.
We model ``NULL`` as a singleton sentinel so that it can be stored in rows,
compared, hashed (for grouping, where SQL treats two NULLs as equal — the
convention of Paulley [9] adopted in Sec. 2.3 of the paper) and pretty
printed as ``-`` like in the paper's examples.

Three-valued logic (3VL) is represented with Python values:

* ``True``  — SQL TRUE
* ``False`` — SQL FALSE
* ``None``  — SQL UNKNOWN

Comparison helpers below return 3VL values; selections and join predicates
keep a row only when the predicate evaluates to ``True``.
"""

from __future__ import annotations

from typing import Any, Optional


class Null:
    """Singleton marker for the SQL NULL value.

    The paper renders NULL as ``-`` (Fig. 2, Fig. 4); ``repr`` follows suit.
    A dedicated class (rather than Python ``None``) keeps NULL distinct from
    "UNKNOWN" in three-valued logic and avoids accidental truthiness bugs.
    """

    _instance: Optional["Null"] = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "-"

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        # Identity equality: NULL == NULL at the *Python* level.  SQL-level
        # comparison semantics live in `compare`/`sql_eq`, not here.  Python
        # equality is what grouping and duplicate elimination use, matching
        # the "two attributes are equal if they agree in value or are both
        # null" convention from Sec. 2.3.
        return other is self

    def __hash__(self) -> int:
        return 0x5EED_0000


NULL = Null()

#: A SQL value as stored in rows: int/float/str/bool or NULL.
SqlValue = Any


def is_null(value: SqlValue) -> bool:
    """Return True when *value* is the SQL NULL marker."""
    return value is NULL


def sql_eq(left: SqlValue, right: SqlValue) -> Optional[bool]:
    """SQL ``=``: UNKNOWN when either side is NULL."""
    if is_null(left) or is_null(right):
        return None
    return bool(left == right)


def sql_compare(op: str, left: SqlValue, right: SqlValue) -> Optional[bool]:
    """Evaluate a SQL comparison with 3VL semantics.

    *op* is one of ``= <> < <= > >=``.  NULL on either side yields UNKNOWN.
    """
    if is_null(left) or is_null(right):
        return None
    if op == "=":
        return bool(left == right)
    if op == "<>":
        return bool(left != right)
    if op == "<":
        return bool(left < right)
    if op == "<=":
        return bool(left <= right)
    if op == ">":
        return bool(left > right)
    if op == ">=":
        return bool(left >= right)
    raise ValueError(f"unknown comparison operator: {op!r}")


def sql_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """3VL conjunction (FALSE dominates UNKNOWN)."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """3VL disjunction (TRUE dominates UNKNOWN)."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Optional[bool]) -> Optional[bool]:
    """3VL negation (NOT UNKNOWN is UNKNOWN)."""
    if value is None:
        return None
    return not value


def sql_arith(op: str, left: SqlValue, right: SqlValue) -> SqlValue:
    """Evaluate SQL arithmetic; NULL is absorbing."""
    if is_null(left) or is_null(right):
        return NULL
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return NULL
        return left / right
    raise ValueError(f"unknown arithmetic operator: {op!r}")


def group_key(value: SqlValue) -> SqlValue:
    """Normalise a value for use in grouping / duplicate-elimination keys.

    NULL hashes and compares equal to NULL here (Sec. 2.3 / [9]).  Real
    values are returned unchanged.  Integral floats are normalised so that
    ``1`` and ``1.0`` land in the same group, mirroring SQL numeric equality.
    """
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value
