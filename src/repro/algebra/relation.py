"""Relations: named schemas plus bags of rows.

A :class:`Relation` is a *bag* (multiset) of :class:`~repro.algebra.rows.Row`
objects over a fixed attribute list.  Equality is bag equality, which is what
all correctness tests in this repository compare.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.algebra.rows import Row
from repro.algebra.values import SqlValue


class Relation:
    """An ordered-schema, unordered-content bag of rows."""

    __slots__ = ("attributes", "rows")

    def __init__(self, attributes: Sequence[str], rows: Iterable[Row] = ()):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.rows: List[Row] = list(rows)
        expected = set(self.attributes)
        for row in self.rows:
            if set(row.keys()) != expected:
                raise ValueError(
                    f"row schema {sorted(row.keys())} does not match relation schema {sorted(expected)}"
                )

    # -- construction helpers ---------------------------------------------
    @classmethod
    def from_tuples(
        cls, attributes: Sequence[str], tuples: Iterable[Sequence[SqlValue]]
    ) -> "Relation":
        """Build a relation from positional value tuples (test convenience)."""
        attrs = tuple(attributes)
        rows = [Row(dict(zip(attrs, values, strict=True))) for values in tuples]
        return cls(attrs, rows)

    # -- bag protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if set(self.attributes) != set(other.attributes):
            return False
        return Counter(self.rows) == Counter(other.rows)

    def __hash__(self) -> int:  # pragma: no cover - relations are not dict keys
        raise TypeError("Relation is unhashable")

    def counter(self) -> Counter:
        """Multiset view of the rows."""
        return Counter(self.rows)

    def is_duplicate_free(self) -> bool:
        """True when no row occurs more than once."""
        return all(count == 1 for count in self.counter().values())

    # -- presentation -------------------------------------------------------
    def __repr__(self) -> str:
        return f"Relation({list(self.attributes)}, {len(self.rows)} rows)"

    def pretty(self, sort: bool = True) -> str:
        """ASCII table rendering (NULL shown as ``-`` like in the paper)."""
        headers = list(self.attributes)
        body = [[_fmt(row[a]) for a in headers] for row in self.rows]
        if sort:
            body.sort()
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)


def _fmt(value: SqlValue) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def database(relations: Mapping[str, Relation]) -> Mapping[str, Relation]:
    """A database is simply a mapping from relation name to relation."""
    return dict(relations)
