"""Immutable rows (tuples in the paper's terminology).

A row maps qualified attribute names (``"s.nationkey"``) to SQL values.
Rows support the operations the paper's algebra needs: concatenation
(``t1 ◦ t2``), projection, extension by computed attributes (for χ and Γ),
and construction of the all-NULL tuple ``⊥_A`` used to pad outerjoins.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.algebra.values import NULL, SqlValue, group_key


class Row(Mapping[str, SqlValue]):
    """An immutable mapping from attribute names to SQL values."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Mapping[str, SqlValue] | Iterable[Tuple[str, SqlValue]] = ()):
        self._data: Dict[str, SqlValue] = dict(data)
        self._hash: int | None = None

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, key: str) -> SqlValue:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset((k, group_key(v)) for k, v in self._data.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        if self._data.keys() != other._data.keys():
            return False
        return all(group_key(v) == group_key(other._data[k]) for k, v in self._data.items())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._data.items()))
        return f"Row({inner})"

    # -- algebra helpers ---------------------------------------------------
    def concat(self, other: "Row") -> "Row":
        """Tuple concatenation ``self ◦ other``.

        Overlapping attribute names are rejected: the algebra always works
        on disjoint schemas (qualified names ensure this).
        """
        overlap = self._data.keys() & other._data.keys()
        if overlap:
            raise ValueError(f"cannot concatenate rows with overlapping attributes: {overlap}")
        merged = dict(self._data)
        merged.update(other._data)
        return Row(merged)

    def project(self, attrs: Iterable[str]) -> "Row":
        """Keep only *attrs* (duplicate-preserving projection of one row)."""
        return Row({a: self._data[a] for a in attrs})

    def extended(self, new_attrs: Mapping[str, SqlValue]) -> "Row":
        """Return a copy extended by *new_attrs* (the map operator χ)."""
        overlap = self._data.keys() & new_attrs.keys()
        if overlap:
            raise ValueError(f"map would overwrite existing attributes: {overlap}")
        merged = dict(self._data)
        merged.update(new_attrs)
        return Row(merged)

    def values_for(self, attrs: Iterable[str]) -> Tuple[SqlValue, ...]:
        """Hashable key of this row restricted to *attrs* (NULL-safe)."""
        return tuple(group_key(self._data[a]) for a in attrs)


def null_row(attrs: Iterable[str]) -> Row:
    """The all-NULL tuple ``⊥_A`` over attribute set *attrs*."""
    return Row({a: NULL for a in attrs})


def null_row_with_defaults(attrs: Iterable[str], defaults: Mapping[str, SqlValue]) -> Row:
    """``⊥_{A\\A(D)} ◦ [D]`` — NULL padding overridden by a default vector.

    This realises the generalised outerjoins of Eqvs. (7)/(8): attributes
    carrying a default receive the default's value, all others NULL.
    """
    return Row({a: defaults.get(a, NULL) for a in attrs})
