"""Executable bag-semantics relational algebra with SQL NULL handling.

This package is the substrate every other layer builds on: it defines SQL
values (including the ``NULL`` marker and three-valued logic), scalar
expressions, rows, relations, and the physical semantics of every operator
used in the paper (Fig. 1): selection, projections, map, join, semijoin,
antijoin, left/full outerjoin (with *default vectors*), groupjoin and the
grouping operator Γ.
"""

from repro.algebra.values import NULL, Null, is_null
from repro.algebra.rows import Row
from repro.algebra.relation import Relation
from repro.algebra.expressions import (
    Attr,
    BinOp,
    Case,
    Const,
    Expr,
    IsNull,
    Logical,
    Not,
    attrs_of,
)
from repro.algebra import operators

__all__ = [
    "NULL",
    "Null",
    "is_null",
    "Row",
    "Relation",
    "Expr",
    "Attr",
    "Const",
    "BinOp",
    "Logical",
    "Not",
    "IsNull",
    "Case",
    "attrs_of",
    "operators",
]
