"""Physical semantics of every operator in the paper (Fig. 1 + Sec. 2.2).

All functions are pure: they take relations and return new relations with
bag semantics.  Join predicates are :class:`~repro.algebra.expressions.Expr`
trees evaluated with SQL three-valued logic; a pair of rows joins only when
the predicate evaluates to TRUE.

The left and full outerjoin are *generalised* (Eqvs. (7)/(8)): tuples that
find no join partner are padded with a **default vector** ``D`` (attribute →
constant) instead of plain NULLs; attributes without a default stay NULL.
This generalisation is what makes grouping/outerjoin reordering possible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.aggregates.vector import AggVector

from repro.algebra.expressions import Expr
from repro.algebra.relation import Relation
from repro.algebra.rows import Row, null_row_with_defaults
from repro.algebra.values import SqlValue, group_key, sql_compare

Defaults = Mapping[str, SqlValue]


def _truthy(value: SqlValue) -> bool:
    return value is True


# ---------------------------------------------------------------------------
# unary operators
# ---------------------------------------------------------------------------

def select(rel: Relation, predicate: Expr) -> Relation:
    """σ_p(e) — keep rows where the predicate is TRUE (not UNKNOWN)."""
    return Relation(rel.attributes, [row for row in rel if _truthy(predicate.eval(row))])


def project(rel: Relation, attrs: Sequence[str]) -> Relation:
    """Π_A(e) — duplicate-*preserving* projection."""
    attrs = tuple(attrs)
    return Relation(attrs, [row.project(attrs) for row in rel])


def project_distinct(rel: Relation, attrs: Sequence[str]) -> Relation:
    """Π^D_A(e) — duplicate-*removing* projection (NULL equals NULL)."""
    attrs = tuple(attrs)
    seen = set()
    rows: List[Row] = []
    for row in rel:
        key = row.values_for(attrs)
        if key not in seen:
            seen.add(key)
            rows.append(row.project(attrs))
    return Relation(attrs, rows)


def map_(rel: Relation, extensions: Sequence[Tuple[str, Expr]]) -> Relation:
    """χ_{a1:e1,...}(e) — extend every row by computed attributes."""
    new_names = [name for name, _ in extensions]
    attrs = rel.attributes + tuple(new_names)
    rows = [row.extended({name: expr.eval(row) for name, expr in extensions}) for row in rel]
    return Relation(attrs, rows)


def rename(rel: Relation, mapping: Mapping[str, str]) -> Relation:
    """ρ — rename attributes according to *mapping* (old → new)."""
    attrs = tuple(mapping.get(a, a) for a in rel.attributes)
    if len(set(attrs)) != len(attrs):
        raise ValueError(f"rename would create duplicate attributes: {attrs}")
    rows = [Row({mapping.get(k, k): v for k, v in row.items()}) for row in rel]
    return Relation(attrs, rows)


def union_all(left: Relation, right: Relation) -> Relation:
    """Bag union of two union-compatible relations."""
    if set(left.attributes) != set(right.attributes):
        raise ValueError("union requires identical schemas")
    rows = list(left.rows) + [row.project(left.attributes) for row in right.rows]
    return Relation(left.attributes, rows)


# ---------------------------------------------------------------------------
# grouping (Γ) — Sec. 2.2
# ---------------------------------------------------------------------------

def group_by(
    rel: Relation,
    group_attrs: Sequence[str],
    vector: AggVector,
    theta: Optional[Sequence[str]] = None,
) -> Relation:
    """Γ^θ_{G; F}(e) — group by *group_attrs* and apply aggregation vector.

    With the default θ (all ``=``) this is SQL GROUP BY with NULL-equals-NULL
    group keys.  A non-equality θ vector groups each distinct ``y ∈ Π^D_G(e)``
    with all rows ``z`` satisfying ``z.G θ y.G`` (used by θ-groupjoins).

    Note the paper's Γ definition: an **empty input yields an empty output**,
    even for ``G = ∅`` (unlike SQL scalar aggregation).
    """
    group_attrs = tuple(group_attrs)
    out_attrs = group_attrs + vector.names()
    if theta is not None and len(tuple(theta)) != len(group_attrs):
        raise ValueError("theta vector length must match the number of grouping attributes")
    if theta is None or all(op == "=" for op in theta):
        buckets: Dict[Tuple, List[Row]] = {}
        order: List[Tuple] = []
        for row in rel:
            key = row.values_for(group_attrs)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(row)
        rows = []
        for key in order:
            members = buckets[key]
            header = members[0].project(group_attrs)
            rows.append(header.extended(vector.evaluate(members)))
        return Relation(out_attrs, rows)

    theta = tuple(theta)
    if len(theta) != len(group_attrs):
        raise ValueError("theta vector length must match the number of grouping attributes")
    anchors = project_distinct(rel, group_attrs)
    rows = []
    for anchor in anchors:
        members = [row for row in rel if _theta_match(row, anchor, group_attrs, theta)]
        rows.append(anchor.extended(vector.evaluate(members)))
    return Relation(out_attrs, rows)


def _theta_match(row: Row, anchor: Row, attrs: Tuple[str, ...], theta: Tuple[str, ...]) -> bool:
    for attr, op in zip(attrs, theta):
        if op == "=":
            if group_key(row[attr]) != group_key(anchor[attr]):
                return False
        else:
            result = sql_compare(op, row[attr], anchor[attr])
            if result is not True:
                return False
    return True


# ---------------------------------------------------------------------------
# join family — Fig. 1
# ---------------------------------------------------------------------------

def cross(left: Relation, right: Relation) -> Relation:
    """e1 × e2 (Eqv. 1)."""
    attrs = left.attributes + right.attributes
    rows = [l.concat(r) for l in left for r in right]
    return Relation(attrs, rows)


def join(left: Relation, right: Relation, predicate: Expr) -> Relation:
    """e1 ⋈_p e2 — inner join (Eqv. 2)."""
    attrs = left.attributes + right.attributes
    rows = []
    for l in left:
        for r in right:
            combined = l.concat(r)
            if _truthy(predicate.eval(combined)):
                rows.append(combined)
    return Relation(attrs, rows)


def semijoin(left: Relation, right: Relation, predicate: Expr) -> Relation:
    """e1 ⋉_p e2 — left semijoin (Eqv. 3)."""
    rows = []
    for l in left:
        if any(_truthy(predicate.eval(l.concat(r))) for r in right):
            rows.append(l)
    return Relation(left.attributes, rows)


def antijoin(left: Relation, right: Relation, predicate: Expr) -> Relation:
    """e1 ▷_p e2 — left antijoin (Eqv. 4)."""
    rows = []
    for l in left:
        if not any(_truthy(predicate.eval(l.concat(r))) for r in right):
            rows.append(l)
    return Relation(left.attributes, rows)


def left_outerjoin(
    left: Relation,
    right: Relation,
    predicate: Expr,
    defaults: Optional[Defaults] = None,
) -> Relation:
    """e1 ⟕^{D2}_p e2 — left outerjoin with default vector (Eqvs. 5/7)."""
    defaults = defaults or {}
    attrs = left.attributes + right.attributes
    rows = []
    for l in left:
        matched = False
        for r in right:
            combined = l.concat(r)
            if _truthy(predicate.eval(combined)):
                rows.append(combined)
                matched = True
        if not matched:
            rows.append(l.concat(null_row_with_defaults(right.attributes, defaults)))
    return Relation(attrs, rows)


def full_outerjoin(
    left: Relation,
    right: Relation,
    predicate: Expr,
    left_defaults: Optional[Defaults] = None,
    right_defaults: Optional[Defaults] = None,
) -> Relation:
    """e1 ⟗^{D1;D2}_p e2 — full outerjoin with default vectors (Eqvs. 6/8).

    ``left_defaults`` (``D1``) pads *left-side attributes* of right tuples
    that find no partner; ``right_defaults`` (``D2``) pads right-side
    attributes of unmatched left tuples — matching the paper's
    ``e1 K^{D1;D2}_q e2`` notation.
    """
    left_defaults = left_defaults or {}
    right_defaults = right_defaults or {}
    attrs = left.attributes + right.attributes
    rows = []
    matched_right = [False] * len(right.rows)
    for l in left:
        matched = False
        for idx, r in enumerate(right.rows):
            combined = l.concat(r)
            if _truthy(predicate.eval(combined)):
                rows.append(combined)
                matched = True
                matched_right[idx] = True
        if not matched:
            rows.append(l.concat(null_row_with_defaults(right.attributes, right_defaults)))
    for idx, r in enumerate(right.rows):
        if not matched_right[idx]:
            rows.append(null_row_with_defaults(left.attributes, left_defaults).concat(r))
    return Relation(attrs, rows)


def groupjoin(
    left: Relation,
    right: Relation,
    predicate: Expr,
    vector: AggVector,
) -> Relation:
    """e1 ▷◁_{p; F}(e2) — left groupjoin (Eqv. 9, von Bültzingsloewen).

    Every left tuple is extended by the aggregation vector applied to the bag
    of its join partners; left tuples without partners get the aggregates of
    the empty bag (count(*) → 0, sum/min/max/avg → NULL).
    """
    attrs = left.attributes + vector.names()
    rows = []
    for l in left:
        partners = [r for r in right if _truthy(predicate.eval(l.concat(r)))]
        rows.append(l.extended(vector.evaluate(partners)))
    return Relation(attrs, rows)
