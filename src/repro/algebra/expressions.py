"""Scalar expression language used by predicates, map (χ) and aggregates.

The optimizer needs *structured* expressions (to reason about referenced
attributes, NULL rejection, and to build ⊗-scaled aggregate arguments such
as ``sum(c1 * a2)`` or ``sum(CASE WHEN a IS NULL THEN 0 ELSE c END)``), so
predicates are small ASTs rather than opaque Python callables.

Evaluation follows SQL three-valued logic via :mod:`repro.algebra.values`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.algebra.rows import Row
from repro.algebra.values import (
    NULL,
    SqlValue,
    is_null,
    sql_and,
    sql_arith,
    sql_compare,
    sql_not,
    sql_or,
)

_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}
_ARITHMETIC = {"+", "-", "*", "/"}


class Expr:
    """Base class for scalar expressions."""

    def eval(self, row: Row) -> SqlValue:
        """Evaluate against *row*; predicates return True/False/None (3VL)."""
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        """The set of attribute names referenced (``F(e)`` in the paper)."""
        raise NotImplementedError

    # Convenience constructors so tests and examples read naturally.
    def eq(self, other: "Expr") -> "BinOp":
        return BinOp("=", self, other)

    def __mul__(self, other: "Expr") -> "BinOp":
        return BinOp("*", self, other)

    def __add__(self, other: "Expr") -> "BinOp":
        return BinOp("+", self, other)

    def __sub__(self, other: "Expr") -> "BinOp":
        return BinOp("-", self, other)

    def __truediv__(self, other: "Expr") -> "BinOp":
        return BinOp("/", self, other)


@dataclass(frozen=True)
class Attr(Expr):
    """Reference to an attribute by (qualified) name."""

    name: str

    def eval(self, row: Row) -> SqlValue:
        return row[self.name]

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A literal value."""

    value: SqlValue

    def eval(self, row: Row) -> SqlValue:
        return self.value

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinOp(Expr):
    """Comparison (3VL result) or arithmetic (NULL-absorbing result)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS | _ARITHMETIC:
            raise ValueError(f"unknown operator {self.op!r}")

    def eval(self, row: Row) -> SqlValue:
        lhs = self.left.eval(row)
        rhs = self.right.eval(row)
        if self.op in _COMPARISONS:
            result = sql_compare(self.op, lhs, rhs)
            return NULL if result is None else result
        return sql_arith(self.op, lhs, rhs)

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Logical(Expr):
    """AND/OR over sub-predicates with 3VL semantics."""

    op: str  # "and" | "or"
    operands: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ValueError(f"unknown logical operator {self.op!r}")
        if not self.operands:
            raise ValueError("logical expression needs at least one operand")

    def eval(self, row: Row) -> SqlValue:
        combine = sql_and if self.op == "and" else sql_or
        acc: Optional[bool] = None
        first = True
        for operand in self.operands:
            value = operand.eval(row)
            tri = None if is_null(value) else bool(value) if value is not None else None
            if value is True or value is False:
                tri = value
            if first:
                acc = tri
                first = False
            else:
                acc = combine(acc, tri)
        return NULL if acc is None else acc

    def attributes(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result |= operand.attributes()
        return result

    def __repr__(self) -> str:
        sep = f" {self.op} "
        return "(" + sep.join(repr(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expr):
    """3VL negation."""

    operand: Expr

    def eval(self, row: Row) -> SqlValue:
        value = self.operand.eval(row)
        tri = None if is_null(value) else bool(value)
        result = sql_not(tri)
        return NULL if result is None else result

    def attributes(self) -> FrozenSet[str]:
        return self.operand.attributes()

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


@dataclass(frozen=True)
class IsNull(Expr):
    """SQL ``IS NULL`` — always two-valued."""

    operand: Expr

    def eval(self, row: Row) -> SqlValue:
        return is_null(self.operand.eval(row))

    def attributes(self) -> FrozenSet[str]:
        return self.operand.attributes()

    def __repr__(self) -> str:
        return f"({self.operand!r} is null)"


@dataclass(frozen=True)
class Case(Expr):
    """``CASE WHEN cond THEN a ELSE b END`` (UNKNOWN condition takes ELSE)."""

    condition: Expr
    then: Expr
    otherwise: Expr

    def eval(self, row: Row) -> SqlValue:
        cond = self.condition.eval(row)
        if cond is True:
            return self.then.eval(row)
        return self.otherwise.eval(row)

    def attributes(self) -> FrozenSet[str]:
        return self.condition.attributes() | self.then.attributes() | self.otherwise.attributes()

    def __repr__(self) -> str:
        return f"(case when {self.condition!r} then {self.then!r} else {self.otherwise!r} end)"


def attrs_of(expr: Optional[Expr]) -> FrozenSet[str]:
    """``F(e)`` — attributes referenced by *expr* (empty for None)."""
    if expr is None:
        return frozenset()
    return expr.attributes()


def conjunction(predicates: Tuple[Expr, ...] | list) -> Expr:
    """AND together *predicates*; a single predicate is returned unchanged."""
    preds = tuple(predicates)
    if not preds:
        raise ValueError("empty conjunction")
    if len(preds) == 1:
        return preds[0]
    return Logical("and", preds)


def rejects_nulls_on(expr: Expr, attrs: FrozenSet[str] | set) -> bool:
    """True when *expr* cannot evaluate to TRUE if all of *attrs* are NULL.

    Used for the NULL-rejection side conditions of the reordering properties
    (assoc/l-asscom/r-asscom) in :mod:`repro.conflict`.  We use a sound
    syntactic criterion: a comparison that references at least one attribute
    from *attrs* rejects NULLs on them; a conjunction rejects NULLs if any
    conjunct does; a disjunction only if all disjuncts do.
    """
    attrs = frozenset(attrs)
    if isinstance(expr, BinOp) and expr.op in _COMPARISONS:
        return bool(expr.attributes() & attrs)
    if isinstance(expr, Logical):
        if expr.op == "and":
            return any(rejects_nulls_on(op, attrs) for op in expr.operands)
        return all(rejects_nulls_on(op, attrs) for op in expr.operands)
    return False
