"""Command-line front door: EXPLAIN one query or drive a whole batch.

Both subcommands run through :class:`repro.api.PlannerSession` — the same
facade library users get (``explain`` is the default, so the original
invocation style keeps working):

``explain`` — optimize SQL against the TPC-H catalog::

    python -m repro "SELECT ns.n_name, count(*) FROM nation ns \
        JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
    python -m repro --strategy h2 --factor 1.05 --scale-factor 10 "..."
    python -m repro --compare "..."        # every registered strategy

``batch`` — run a workload through the service layer (plan cache +
parallel workers), printing per-batch throughput and cache statistics::

    python -m repro batch --count 100 --relations 6 --unique 25 --repeat 2
    python -m repro batch --sql-file queries.sql --workers 4
    python -m repro batch --mixed-sql --count 50    # EXISTS/IN/outer-join SQL

``serve`` — run the concurrent plan server (JSON over HTTP) until
SIGTERM/SIGINT, then drain gracefully::

    python -m repro serve --port 8080 --workers 4
    curl -X POST localhost:8080/optimize -d '{"sql": "SELECT ..."}'
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List

from repro.api import COST_MODELS, ENGINES, STRATEGIES, OptimizerConfig, PlannerSession
from repro.query.spec import Query

SUBCOMMANDS = ("explain", "batch", "serve")


def _add_strategy_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES.names(),
        default="ea-prune",
        help="plan generator (default: ea-prune)",
    )
    parser.add_argument(
        "--factor", type=float, default=1.03,
        help="H2 eagerness tolerance factor F (default: 1.03)",
    )
    parser.add_argument(
        "--cost-model",
        choices=COST_MODELS.names(),
        default="cout",
        help="cost model pricing the plans (default: cout)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="indexed",
        help="driver code path; all engines produce identical plans "
        "(default: indexed)",
    )


def _config_from(args: argparse.Namespace, **overrides) -> OptimizerConfig:
    return OptimizerConfig(
        strategy=args.strategy,
        factor=args.factor,
        cost_model=args.cost_model,
        engine=args.engine,
        **overrides,
    )


def build_argument_parser() -> argparse.ArgumentParser:
    """The ``explain`` subcommand's parser (also the bare default)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimize a SQL query with eager aggregation "
        "(Eich & Moerkotte, ICDE 2015) against the TPC-H catalog.",
    )
    parser.add_argument("sql", help="the SELECT statement to optimize")
    _add_strategy_options(parser)
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="TPC-H scale factor for the catalog statistics (default: 1)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="run every registered strategy and print a cost/time comparison",
    )
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Optimize a workload through the plan cache and the "
        "parallel batch driver, reporting throughput and cache hit rates.",
    )
    source = parser.add_argument_group("workload source")
    source.add_argument(
        "--sql-file",
        help="file of SELECT statements (one per line, '#' comments) "
        "optimized against the TPC-H catalog; default is a random workload",
    )
    source.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="TPC-H scale factor for --sql-file statistics (default: 1)",
    )
    source.add_argument(
        "--mixed-sql", action="store_true",
        help="random workload: emit mixed-operator SQL text over the TPC-H "
        "catalog (EXISTS/IN subqueries, RIGHT/FULL joins, NULL predicates) "
        "and run it through the full parser/binder front door",
    )
    source.add_argument(
        "--count", type=int, default=100,
        help="random workload: number of queries per batch (default: 100)",
    )
    source.add_argument(
        "--relations", type=int, default=5,
        help="random workload: relations per query (default: 5)",
    )
    source.add_argument(
        "--unique", type=int, default=None,
        help="random workload: distinct query shapes cycled to --count "
        "(default: all distinct)",
    )
    source.add_argument(
        "--seed", type=int, default=42,
        help="random workload seed (default: 42)",
    )
    _add_strategy_options(parser)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: min(cpu count, 8); 1 = serial)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=512,
        help="plan cache capacity in entries (default: 512)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the plan cache (measures raw batch throughput)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="run the same batch this many times — the second run shows "
        "warm-cache behaviour (default: 2)",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve plans over JSON/HTTP: POST /optimize, /batch, "
        "/explain; GET /stats, /healthz.  SIGTERM drains gracefully.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port, 0 for an ephemeral one (default: 8080)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="optimizer worker processes (default: min(cpu count, 8); "
        "0 = optimize in the request thread)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="admitted-but-unfinished request bound before 429 "
        "(default: 2*workers + 8)",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="TPC-H scale factor for the catalog statistics (default: 1)",
    )
    _add_strategy_options(parser)
    parser.add_argument(
        "--cache-size", type=int, default=512,
        help="plan cache capacity in entries (default: 512)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the plan cache",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-request optimization timeout in seconds (default: 120)",
    )
    parser.add_argument(
        "--grace", type=float, default=10.0,
        help="drain grace period on shutdown in seconds (default: 10)",
    )
    parser.add_argument(
        "--degradation", choices=("heuristic", "error"), default="heuristic",
        help="what a blown --timeout budget returns: a greedy heuristic "
        "plan marked degraded (200) or a 504 (default: heuristic)",
    )
    parser.add_argument(
        "--recost-bound", type=float, default=2.0,
        help="serve a stale cached plan while its re-cost stays within "
        "this factor of a cheap greedy replan; past it the entry is "
        "fully re-optimized (default: 2.0)",
    )
    parser.add_argument(
        "--revalidate-workers", type=int, default=1,
        help="background threads re-costing stale cache entries after "
        "statistics drift (sync tier; the async tier revalidates "
        "per shard) (default: 1)",
    )
    parser.add_argument(
        "--band-width", type=float, default=None,
        help="log10 band width for banded cache keys: statistics "
        "snapshots within the same band share one cache entry "
        "(default: exact snapshots)",
    )
    parser.add_argument(
        "--dataset", default=None,
        help="enable POST /execute against this dataset: 'tpch-sf<scale>' "
        "(generated, e.g. tpch-sf0.01) or a directory of .csv/.parquet "
        "files (default: planning only, /execute answers 409)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="directory of .csv/.parquet files to serve /execute against "
        "(shorthand for --dataset <dir>)",
    )
    parser.add_argument(
        "--executor", choices=("interpreter", "columnar"), default="columnar",
        help="default /execute backend when a request names none "
        "(default: columnar)",
    )
    parser.add_argument(
        "--async", dest="use_async", action="store_true",
        help="serve with the async tier: one event loop in front of "
        "sharded worker processes, each owning a private plan-cache "
        "shard (see --shards / --cache-dir)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="[--async] worker shard count (default: one per core, max 4); "
        "--cache-size becomes per-shard capacity",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="[--async] directory for plan-cache shard snapshots: shards "
        "persist on graceful drain and warm-start from it on boot "
        "(default: no persistence)",
    )
    return parser


def run_serve(argv) -> int:
    import logging
    import signal
    import threading

    from repro.server import PlanServer, ServerConfig

    args = build_serve_parser().parse_args(argv)
    logging.basicConfig(level=logging.INFO, format="%(message)s", stream=sys.stderr)
    if args.dataset is not None and args.data_dir is not None:
        print("error: --dataset and --data-dir are mutually exclusive", file=sys.stderr)
        return 1
    args.dataset = args.dataset if args.dataset is not None else args.data_dir
    if args.use_async:
        return _run_serve_async(args)
    if args.shards is not None or args.cache_dir is not None:
        print("error: --shards/--cache-dir require --async", file=sys.stderr)
        return 1
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_inflight=args.max_inflight,
            scale_factor=args.scale_factor,
            strategy=args.strategy,
            factor=args.factor,
            cost_model=args.cost_model,
            engine=args.engine,
            cache_capacity=None if args.no_cache else args.cache_size,
            request_timeout_seconds=args.timeout,
            drain_grace_seconds=args.grace,
            degradation=args.degradation,
            recost_bound=args.recost_bound,
            revalidate_workers=args.revalidate_workers,
            snapshot_band_width=args.band_width,
            dataset=args.dataset,
            default_executor=args.executor,
        )
        server = PlanServer(config)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    signal.signal(signal.SIGINT, lambda signum, frame: stop.set())

    server.start()
    print(
        f"repro plan server listening on {server.url}  "
        f"(workers={config.effective_workers}, strategy={config.strategy}, "
        f"engine={config.engine}, "
        f"cache={'off' if config.cache_capacity in (None, 0) else config.cache_capacity})",
        flush=True,
    )
    try:
        stop.wait()
        drained = server.drain()
    finally:
        server.close()
    print(f"shutdown: {'drained cleanly' if drained else 'drain grace expired'}", flush=True)
    return 0 if drained else 1


def _run_serve_async(args) -> int:
    """``repro serve --async``: the event-loop front + worker shards."""
    import asyncio
    import signal

    from repro.asyncserver import (
        AsyncPlanServer,
        AsyncServerConfig,
        tune_gc_for_serving,
    )

    try:
        config = AsyncServerConfig(
            host=args.host,
            port=args.port,
            shards=args.shards,
            cache_dir=args.cache_dir,
            max_inflight=args.max_inflight,
            scale_factor=args.scale_factor,
            strategy=args.strategy,
            factor=args.factor,
            cost_model=args.cost_model,
            engine=args.engine,
            cache_capacity=args.cache_size,
            request_timeout_seconds=args.timeout,
            drain_grace_seconds=args.grace,
            degradation=args.degradation,
            recost_bound=args.recost_bound,
            snapshot_band_width=args.band_width,
            dataset=args.dataset,
            default_executor=args.executor,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.no_cache:
        print("error: --no-cache makes no sense with --async (the shard "
              "cache IS the tier); use the sync server", file=sys.stderr)
        return 1

    async def main() -> int:
        server = AsyncPlanServer(config)
        try:
            await server.async_start()
        except (ValueError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        tune_gc_for_serving()  # dedicated process: latency-oriented GC
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        print(
            f"repro plan server listening on {server.url}  "
            f"(async, shards={server.service.supervisor.shards}, "
            f"strategy={config.strategy}, engine={config.engine}, "
            f"cache={config.cache_capacity}/shard"
            f"{', dir=' + config.cache_dir if config.cache_dir else ''})",
            flush=True,
        )
        try:
            await stop.wait()
            drained = await server.async_drain()
        finally:
            await server.async_close()
        saved = server.service.supervisor.persistence["saved"]
        print(
            f"shutdown: {'drained cleanly' if drained else 'drain grace expired'}"
            f" ({saved} cached plans snapshotted)"
            if config.cache_dir
            else f"shutdown: {'drained cleanly' if drained else 'drain grace expired'}",
            flush=True,
        )
        return 0 if drained else 1

    return asyncio.run(main())


def run_explain(argv) -> int:
    args = build_argument_parser().parse_args(argv)
    session = PlannerSession.tpch(
        scale_factor=args.scale_factor,
        config=_config_from(args, cache_capacity=None),
    )
    try:
        statement = session.sql(args.sql)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.compare:
        comparison = statement.optimize_all_strategies()
        print(f"{'strategy':10s} {'Cout':>16s} {'time':>10s}")
        for handle in comparison:
            marker = " *" if handle.strategy == comparison.winner else ""
            print(
                f"{handle.strategy:10s} {handle.cost:16,.0f} "
                f"{handle.result.elapsed_seconds * 1000:8.2f}ms{marker}"
            )
        best = comparison.best
        print(f"winner: {comparison.winner} (cost {best.cost:,.0f})")
    else:
        best = statement.optimize()
        print(
            f"strategy={best.strategy}  Cout={best.cost:,.0f}  "
            f"time={best.result.elapsed_seconds * 1000:.2f}ms  "
            f"ccps={best.result.ccp_count}"
        )
    print()
    print(best.explain())
    return 0


def _load_sql_workload(path: str, session: PlannerSession) -> List[Query]:
    """Parse a one-statement-per-line workload file.

    A line that fails to parse raises a :class:`ValueError` locating it as
    ``<file>:<line>:`` so a typo in a 500-line workload is findable.
    """
    queries = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                queries.append(session.parse(text))
            except ValueError as error:
                raise ValueError(f"{path}:{lineno}: {error}") from error
    return queries


def run_batch_command(argv) -> int:
    from repro.workload import generate_workload

    args = build_batch_parser().parse_args(argv)
    config = _config_from(
        args,
        workers=args.workers,
        cache_capacity=None if args.no_cache else args.cache_size,
    )

    if args.sql_file:
        session = PlannerSession.tpch(scale_factor=args.scale_factor, config=config)
        try:
            queries = _load_sql_workload(args.sql_file, session)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if not queries:
            print("error: no queries in --sql-file", file=sys.stderr)
            return 1
    elif args.mixed_sql:
        from repro.workload import generate_sql_workload

        session = PlannerSession.tpch(scale_factor=args.scale_factor, config=config)
        rng = random.Random(args.seed)
        try:
            statements = generate_sql_workload(args.count, rng, unique=args.unique)
            queries = [session.parse(statement) for statement in statements]
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    else:
        session = PlannerSession(config=config)
        rng = random.Random(args.seed)
        try:
            queries = generate_workload(args.count, args.relations, rng, unique=args.unique)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    cache = session.cache
    print(
        f"workload: {len(queries)} queries, strategy={config.strategy_name}, "
        f"cache={'off' if cache is None else f'{cache.capacity} entries'}"
    )
    for round_number in range(1, max(1, args.repeat) + 1):
        report = session.run_batch(queries)
        # Without a cache, reuse can only come from in-batch dedup — don't
        # call that a cache hit.
        reuse_label = "cache hits" if cache is not None else "deduped"
        failures = f"  failed={report.failed}" if report.failed else ""
        print(
            f"batch {round_number}: {report.total} queries in "
            f"{report.wall_seconds:.3f}s  ({report.queries_per_second:,.1f} q/s)  "
            f"optimized={report.total - report.hits}  "
            f"{reuse_label}={report.hits} ({report.hit_rate:.0%})  "
            f"workers={report.workers}{failures}"
        )
    if cache is not None:
        stats = cache.stats
        print(
            f"cache: {len(cache)}/{cache.capacity} entries  hits={stats.hits}  "
            f"misses={stats.misses}  evictions={stats.evictions}  "
            f"hit_rate={stats.hit_rate:.0%}"
        )
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        command, rest = argv[0], argv[1:]
    else:
        command, rest = "explain", argv
    if command == "batch":
        return run_batch_command(rest)
    if command == "serve":
        return run_serve(rest)
    return run_explain(rest)


if __name__ == "__main__":
    sys.exit(main())
