"""Command-line EXPLAIN tool: optimize SQL against the TPC-H catalog.

Usage::

    python -m repro "SELECT ns.n_name, count(*) FROM nation ns \
        JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
    python -m repro --strategy h2 --factor 1.05 --scale-factor 10 "..."
    python -m repro --compare "..."        # all five strategies side by side
"""

from __future__ import annotations

import argparse
import sys

from repro.optimizer import optimize
from repro.plans import render_plan
from repro.sql import Catalog, parse_query

STRATEGIES = ("dphyp", "ea-all", "ea-prune", "h1", "h2")


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimize a SQL query with eager aggregation "
        "(Eich & Moerkotte, ICDE 2015) against the TPC-H catalog.",
    )
    parser.add_argument("sql", help="the SELECT statement to optimize")
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="ea-prune",
        help="plan generator (default: ea-prune)",
    )
    parser.add_argument(
        "--factor", type=float, default=1.03,
        help="H2 eagerness tolerance factor F (default: 1.03)",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="TPC-H scale factor for the catalog statistics (default: 1)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="run every strategy and print a cost/time comparison",
    )
    return parser


def main(argv=None) -> int:
    args = build_argument_parser().parse_args(argv)
    catalog = Catalog.from_tpch(scale_factor=args.scale_factor)
    try:
        query = parse_query(args.sql, catalog)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.compare:
        print(f"{'strategy':10s} {'Cout':>16s} {'time':>10s}")
        for strategy in STRATEGIES:
            result = optimize(query, strategy, factor=args.factor)
            print(
                f"{strategy:10s} {result.cost:16,.0f} "
                f"{result.elapsed_seconds * 1000:8.2f}ms"
            )
        best = optimize(query, "ea-prune", factor=args.factor)
    else:
        best = optimize(query, args.strategy, factor=args.factor)
        print(
            f"strategy={best.strategy}  Cout={best.cost:,.0f}  "
            f"time={best.elapsed_seconds * 1000:.2f}ms  ccps={best.ccp_count}"
        )
    print()
    print(render_plan(best.plan.node))
    return 0


if __name__ == "__main__":
    sys.exit(main())
