"""Command-line front door: EXPLAIN one query or drive a whole batch.

Two subcommands (``explain`` is the default, so the original invocation
style keeps working):

``explain`` — optimize SQL against the TPC-H catalog::

    python -m repro "SELECT ns.n_name, count(*) FROM nation ns \
        JOIN supplier s ON ns.n_nationkey = s.s_nationkey GROUP BY ns.n_name"
    python -m repro --strategy h2 --factor 1.05 --scale-factor 10 "..."
    python -m repro --compare "..."        # all five strategies side by side

``batch`` — run a workload through the service layer (plan cache +
parallel workers), printing per-batch throughput and cache statistics::

    python -m repro batch --count 100 --relations 6 --unique 25 --repeat 2
    python -m repro batch --sql-file queries.sql --workers 4
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.optimizer import optimize
from repro.plans import render_plan
from repro.sql import Catalog, parse_query

STRATEGIES = ("dphyp", "ea-all", "ea-prune", "h1", "h2")
SUBCOMMANDS = ("explain", "batch")


def _add_strategy_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="ea-prune",
        help="plan generator (default: ea-prune)",
    )
    parser.add_argument(
        "--factor", type=float, default=1.03,
        help="H2 eagerness tolerance factor F (default: 1.03)",
    )


def build_argument_parser() -> argparse.ArgumentParser:
    """The ``explain`` subcommand's parser (also the bare default)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimize a SQL query with eager aggregation "
        "(Eich & Moerkotte, ICDE 2015) against the TPC-H catalog.",
    )
    parser.add_argument("sql", help="the SELECT statement to optimize")
    _add_strategy_options(parser)
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="TPC-H scale factor for the catalog statistics (default: 1)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="run every strategy and print a cost/time comparison",
    )
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Optimize a workload through the plan cache and the "
        "parallel batch driver, reporting throughput and cache hit rates.",
    )
    source = parser.add_argument_group("workload source")
    source.add_argument(
        "--sql-file",
        help="file of SELECT statements (one per line, '#' comments) "
        "optimized against the TPC-H catalog; default is a random workload",
    )
    source.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="TPC-H scale factor for --sql-file statistics (default: 1)",
    )
    source.add_argument(
        "--count", type=int, default=100,
        help="random workload: number of queries per batch (default: 100)",
    )
    source.add_argument(
        "--relations", type=int, default=5,
        help="random workload: relations per query (default: 5)",
    )
    source.add_argument(
        "--unique", type=int, default=None,
        help="random workload: distinct query shapes cycled to --count "
        "(default: all distinct)",
    )
    source.add_argument(
        "--seed", type=int, default=42,
        help="random workload seed (default: 42)",
    )
    _add_strategy_options(parser)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: min(cpu count, 8); 1 = serial)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=512,
        help="plan cache capacity in entries (default: 512)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the plan cache (measures raw batch throughput)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="run the same batch this many times — the second run shows "
        "warm-cache behaviour (default: 2)",
    )
    return parser


def run_explain(argv) -> int:
    args = build_argument_parser().parse_args(argv)
    catalog = Catalog.from_tpch(scale_factor=args.scale_factor)
    try:
        query = parse_query(args.sql, catalog)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.compare:
        print(f"{'strategy':10s} {'Cout':>16s} {'time':>10s}")
        from repro.optimizer import prepare

        prepared = prepare(query)
        results = {}
        for strategy in STRATEGIES:
            results[strategy] = optimize(query, strategy, factor=args.factor, prepared=prepared)
            print(
                f"{strategy:10s} {results[strategy].cost:16,.0f} "
                f"{results[strategy].elapsed_seconds * 1000:8.2f}ms"
            )
        best = results["ea-prune"]
    else:
        best = optimize(query, args.strategy, factor=args.factor)
        print(
            f"strategy={best.strategy}  Cout={best.cost:,.0f}  "
            f"time={best.elapsed_seconds * 1000:.2f}ms  ccps={best.ccp_count}"
        )
    print()
    print(render_plan(best.plan.node))
    return 0


def _load_sql_workload(path: str, scale_factor: float):
    catalog = Catalog.from_tpch(scale_factor=scale_factor)
    queries = []
    with open(path) as handle:
        for line in handle:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            queries.append(parse_query(text, catalog))
    return queries


def run_batch_command(argv) -> int:
    from repro.service import PlanCache, run_batch
    from repro.workload import generate_workload

    args = build_batch_parser().parse_args(argv)
    if args.sql_file:
        try:
            queries = _load_sql_workload(args.sql_file, args.scale_factor)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if not queries:
            print("error: no queries in --sql-file", file=sys.stderr)
            return 1
    else:
        rng = random.Random(args.seed)
        try:
            queries = generate_workload(args.count, args.relations, rng, unique=args.unique)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    cache = None if args.no_cache else PlanCache(capacity=args.cache_size)
    print(
        f"workload: {len(queries)} queries, strategy={args.strategy}, "
        f"cache={'off' if cache is None else f'{cache.capacity} entries'}"
    )
    for round_number in range(1, max(1, args.repeat) + 1):
        report = run_batch(
            queries, args.strategy, args.factor, workers=args.workers, cache=cache
        )
        # Without a cache, reuse can only come from in-batch dedup — don't
        # call that a cache hit.
        reuse_label = "cache hits" if cache is not None else "deduped"
        print(
            f"batch {round_number}: {report.total} queries in "
            f"{report.wall_seconds:.3f}s  ({report.queries_per_second:,.1f} q/s)  "
            f"optimized={report.total - report.hits}  "
            f"{reuse_label}={report.hits} ({report.hit_rate:.0%})  "
            f"workers={report.workers}"
        )
    if cache is not None:
        stats = cache.stats
        print(
            f"cache: {len(cache)}/{cache.capacity} entries  hits={stats.hits}  "
            f"misses={stats.misses}  evictions={stats.evictions}  "
            f"hit_rate={stats.hit_rate:.0%}"
        )
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        command, rest = argv[0], argv[1:]
    else:
        command, rest = "explain", argv
    if command == "batch":
        return run_batch_command(rest)
    return run_explain(rest)


if __name__ == "__main__":
    sys.exit(main())
