"""The DPhyp csg-cmp-pair enumerator (Moerkotte & Neumann).

``enumerate_ccps`` yields every csg-cmp-pair (Def. 3 of the paper) exactly
once, in an order suitable for dynamic programming: both components of a
pair are always emitted after all of their own connected subsets.  This is
the enumeration backbone shared by *all* plan generators in the repository
(DPhyp baseline, EA-All, EA-Prune, H1, H2) — exactly as in the paper, where
only ``BuildPlans`` differs between algorithms.

Like the published algorithm — which consults the DP table before emitting —
the enumerator tracks which vertex sets are *buildable* (have at least one
plan): the representative-based neighbourhood growth of hypergraph DPhyp can
visit sets that no join of two connected parts can ever produce, and those
must not surface as csg-cmp components.

Two implementations live here:

* :class:`_Enumerator` — the hot path.  EnumerateCsgRec / EmitCsg /
  EnumerateCmpRec are small generators that yield either a csg-cmp-pair or
  a child generator, and ``run`` drives them from an explicit LIFO stack.
  That keeps the exact depth-first emission order of the published
  recursion while making every emitted pair O(1) (the recursive
  ``yield from`` chains re-yield each pair through O(depth) frames) and
  removing Python's recursion limit from the picture — chains of hundreds
  of relations enumerate fine.
* :class:`_RecursiveEnumerator` — the seed's literal recursive
  transcription, kept as the executable reference.  Equivalence tests pin
  the iterative enumerator to it, and ``engine="reference"`` optimizer
  runs (see :mod:`benchmarks.bench_hotpath`) time against it.  It uses the
  uncached ``*_scan`` graph methods, so its cost profile is the seed's.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.hypergraph.bitset import bits_of, prefix_below, subsets
from repro.hypergraph.graph import Hypergraph

#: Recursion depth the reference enumerator can safely need per vertex.
_REFERENCE_MAX_N = 400


class _Enumerator:
    """Stateful DPhyp run over one hypergraph (iterative hot path)."""

    __slots__ = ("graph", "buildable")

    def __init__(self, graph: Hypergraph):
        self.graph = graph
        # Mirrors "DPTable[S] is non-empty": singletons start buildable, and
        # every emitted pair makes its union buildable.
        self.buildable = {1 << v for v in range(graph.n)}

    def run(self) -> Iterator[Tuple[int, int]]:
        """Drive the generator frames from an explicit stack.

        Each frame yields csg-cmp-pairs (tuples) and child frames
        (generators); children are pushed and fully drained before their
        parent resumes — exactly the published depth-first order.
        """
        stack = [self._seeds()]
        push = stack.append
        pop = stack.pop
        while stack:
            frame = stack[-1]
            for item in frame:
                if item.__class__ is tuple:
                    yield item
                else:
                    push(item)
                    break
            else:
                pop()

    def _seeds(self):
        for i in range(self.graph.n - 1, -1, -1):
            seed = 1 << i
            yield self._emit_csg(seed)
            yield self._enumerate_csg_rec(seed, prefix_below(i))

    def _enumerate_csg_rec(self, s1: int, excluded: int):
        neighborhood = self.graph.neighborhood(s1, excluded)
        if not neighborhood:
            return
        buildable = self.buildable
        for subset in subsets(neighborhood):
            if s1 | subset in buildable:
                yield self._emit_csg(s1 | subset)
        grown_excluded = excluded | neighborhood
        for subset in subsets(neighborhood):
            yield self._enumerate_csg_rec(s1 | subset, grown_excluded)

    def _emit_csg(self, s1: int):
        graph = self.graph
        excluded = s1 | prefix_below((s1 & -s1).bit_length() - 1)
        neighborhood = graph.neighborhood(s1, excluded)
        for v in sorted(bits_of(neighborhood), reverse=True):
            s2 = 1 << v
            if graph.connected(s1, s2):
                self.buildable.add(s1 | s2)
                yield s1, s2
            below = neighborhood & prefix_below(v)
            yield self._enumerate_cmp_rec(s1, s2, excluded | below)

    def _enumerate_cmp_rec(self, s1: int, s2: int, excluded: int):
        graph = self.graph
        neighborhood = graph.neighborhood(s2, excluded)
        if not neighborhood:
            return
        buildable = self.buildable
        for subset in subsets(neighborhood):
            grown = s2 | subset
            if grown in buildable and graph.connected(s1, grown):
                buildable.add(s1 | grown)
                yield s1, grown
        grown_excluded = excluded | neighborhood
        for subset in subsets(neighborhood):
            yield self._enumerate_cmp_rec(s1, s2 | subset, grown_excluded)


class _RecursiveEnumerator:
    """The seed's recursive DPhyp transcription (reference implementation).

    Every emitted pair travels back through a ``yield from`` chain of up to
    O(n) generator frames, and deep recursions can exhaust the interpreter
    stack — which is why the hot path above is iterative.  Uses the
    uncached ``connected_scan`` / ``neighborhood_scan`` graph methods so
    reference timings reflect the pre-index cost profile.
    """

    def __init__(self, graph: Hypergraph):
        self.graph = graph
        self.buildable = {1 << v for v in range(graph.n)}

    def run(self) -> Iterator[Tuple[int, int]]:
        if self.graph.n > _REFERENCE_MAX_N:
            raise RecursionError(
                f"reference enumerator supports n <= {_REFERENCE_MAX_N} "
                f"(got n={self.graph.n}); use the default iterative enumerator"
            )
        for i in range(self.graph.n - 1, -1, -1):
            seed = 1 << i
            yield from self.emit_csg(seed)
            yield from self.enumerate_csg_rec(seed, prefix_below(i))

    def enumerate_csg_rec(self, s1: int, excluded: int) -> Iterator[Tuple[int, int]]:
        neighborhood = self.graph.neighborhood_scan(s1, excluded)
        if not neighborhood:
            return
        for subset in subsets(neighborhood):
            grown = s1 | subset
            if grown in self.buildable:
                yield from self.emit_csg(grown)
        for subset in subsets(neighborhood):
            yield from self.enumerate_csg_rec(s1 | subset, excluded | neighborhood)

    def emit_csg(self, s1: int) -> Iterator[Tuple[int, int]]:
        min_index = (s1 & -s1).bit_length() - 1
        excluded = s1 | prefix_below(min_index)
        neighborhood = self.graph.neighborhood_scan(s1, excluded)
        for v in sorted(bits_of(neighborhood), reverse=True):
            s2 = 1 << v
            if self.graph.connected_scan(s1, s2):
                self.buildable.add(s1 | s2)
                yield s1, s2
            below = neighborhood & prefix_below(v)
            yield from self.enumerate_cmp_rec(s1, s2, excluded | below)

    def enumerate_cmp_rec(self, s1: int, s2: int, excluded: int) -> Iterator[Tuple[int, int]]:
        neighborhood = self.graph.neighborhood_scan(s2, excluded)
        if not neighborhood:
            return
        for subset in subsets(neighborhood):
            grown = s2 | subset
            if grown in self.buildable and self.graph.connected_scan(s1, grown):
                self.buildable.add(s1 | grown)
                yield s1, grown
        for subset in subsets(neighborhood):
            yield from self.enumerate_cmp_rec(s1, s2 | subset, excluded | neighborhood)


def enumerate_ccps(graph: Hypergraph) -> Iterator[Tuple[int, int]]:
    """Yield csg-cmp-pairs ``(S1, S2)`` (bitsets), each unordered pair once.

    The enumeration follows the published algorithm:

    * ``EnumerateCsg``: seeds every singleton {v_i} (descending i) and grows
      connected subgraphs only with vertices of index > i,
    * ``EmitCsg``: for each csg S1, finds complements among vertices larger
      than min(S1) that are neighbours of S1,
    * ``EnumerateCmpRec``: grows each complement seed into all connected
      complements.
    """
    return _Enumerator(graph).run()


def enumerate_ccps_reference(graph: Hypergraph) -> Iterator[Tuple[int, int]]:
    """The seed's recursive enumerator over uncached graph scans.

    Raises :class:`RecursionError` up front for graphs too deep for the
    interpreter stack; the default :func:`enumerate_ccps` has no such
    limit.  Emission order is pinned to :func:`enumerate_ccps` by tests.
    """
    return _RecursiveEnumerator(graph).run()


def count_ccps(graph: Hypergraph) -> int:
    """Number of csg-cmp-pairs (#ccp in the paper's complexity analysis)."""
    return sum(1 for _ in enumerate_ccps(graph))


def brute_force_ccps(graph: Hypergraph) -> set:
    """Reference implementation straight from Def. 3 (for testing).

    Enumerates every unordered pair of disjoint, individually connected
    (buildable) vertex sets that are connected to each other by a hyperedge.
    """
    n = graph.n
    result = set()
    for s1 in range(1, 1 << n):
        if not graph.induces_connected_subgraph(s1):
            continue
        for s2 in range(s1 + 1, 1 << n):
            if s1 & s2:
                continue
            if not graph.induces_connected_subgraph(s2):
                continue
            if graph.connected(s1, s2):
                result.add((s1, s2))
    return result
