"""The DPhyp csg-cmp-pair enumerator (Moerkotte & Neumann).

``enumerate_ccps`` yields every csg-cmp-pair (Def. 3 of the paper) exactly
once, in an order suitable for dynamic programming: both components of a
pair are always emitted after all of their own connected subsets.  This is
the enumeration backbone shared by *all* plan generators in the repository
(DPhyp baseline, EA-All, EA-Prune, H1, H2) — exactly as in the paper, where
only ``BuildPlans`` differs between algorithms.

Like the published algorithm — which consults the DP table before emitting —
the enumerator tracks which vertex sets are *buildable* (have at least one
plan): the representative-based neighbourhood growth of hypergraph DPhyp can
visit sets that no join of two connected parts can ever produce, and those
must not surface as csg-cmp components.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.hypergraph.bitset import bits_of, prefix_below, subsets
from repro.hypergraph.graph import Hypergraph


class _Enumerator:
    """Stateful DPhyp run over one hypergraph."""

    def __init__(self, graph: Hypergraph):
        self.graph = graph
        # Mirrors "DPTable[S] is non-empty": singletons start buildable, and
        # every emitted pair makes its union buildable.
        self.buildable = {1 << v for v in range(graph.n)}

    def run(self) -> Iterator[Tuple[int, int]]:
        for i in range(self.graph.n - 1, -1, -1):
            seed = 1 << i
            yield from self.emit_csg(seed)
            yield from self.enumerate_csg_rec(seed, prefix_below(i))

    def enumerate_csg_rec(self, s1: int, excluded: int) -> Iterator[Tuple[int, int]]:
        neighborhood = self.graph.neighborhood(s1, excluded)
        if not neighborhood:
            return
        for subset in subsets(neighborhood):
            grown = s1 | subset
            if grown in self.buildable:
                yield from self.emit_csg(grown)
        for subset in subsets(neighborhood):
            yield from self.enumerate_csg_rec(s1 | subset, excluded | neighborhood)

    def emit_csg(self, s1: int) -> Iterator[Tuple[int, int]]:
        min_index = (s1 & -s1).bit_length() - 1
        excluded = s1 | prefix_below(min_index)
        neighborhood = self.graph.neighborhood(s1, excluded)
        for v in sorted(bits_of(neighborhood), reverse=True):
            s2 = 1 << v
            if self.graph.connected(s1, s2):
                self.buildable.add(s1 | s2)
                yield s1, s2
            below = neighborhood & prefix_below(v)
            yield from self.enumerate_cmp_rec(s1, s2, excluded | below)

    def enumerate_cmp_rec(self, s1: int, s2: int, excluded: int) -> Iterator[Tuple[int, int]]:
        neighborhood = self.graph.neighborhood(s2, excluded)
        if not neighborhood:
            return
        for subset in subsets(neighborhood):
            grown = s2 | subset
            if grown in self.buildable and self.graph.connected(s1, grown):
                self.buildable.add(s1 | grown)
                yield s1, grown
        for subset in subsets(neighborhood):
            yield from self.enumerate_cmp_rec(s1, s2 | subset, excluded | neighborhood)


def enumerate_ccps(graph: Hypergraph) -> Iterator[Tuple[int, int]]:
    """Yield csg-cmp-pairs ``(S1, S2)`` (bitsets), each unordered pair once.

    The enumeration follows the published algorithm:

    * ``EnumerateCsg``: seeds every singleton {v_i} (descending i) and grows
      connected subgraphs only with vertices of index > i,
    * ``EmitCsg``: for each csg S1, finds complements among vertices larger
      than min(S1) that are neighbours of S1,
    * ``EnumerateCmpRec``: grows each complement seed into all connected
      complements.
    """
    return _Enumerator(graph).run()


def count_ccps(graph: Hypergraph) -> int:
    """Number of csg-cmp-pairs (#ccp in the paper's complexity analysis)."""
    return sum(1 for _ in enumerate_ccps(graph))


def brute_force_ccps(graph: Hypergraph) -> set:
    """Reference implementation straight from Def. 3 (for testing).

    Enumerates every unordered pair of disjoint, individually connected
    (buildable) vertex sets that are connected to each other by a hyperedge.
    """
    n = graph.n
    result = set()
    for s1 in range(1, 1 << n):
        if not graph.induces_connected_subgraph(s1):
            continue
        for s2 in range(s1 + 1, 1 << n):
            if s1 & s2:
                continue
            if not graph.induces_connected_subgraph(s2):
                continue
            if graph.connected(s1, s2):
                result.add((s1, s2))
    return result
