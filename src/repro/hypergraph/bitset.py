"""Bitset helpers: integers as sets of vertex indices."""

from __future__ import annotations

from typing import Iterable, Iterator


def set_of(indices: Iterable[int]) -> int:
    """Build a bitset from vertex indices."""
    result = 0
    for index in indices:
        result |= 1 << index
    return result


def bits_of(bitset: int) -> Iterator[int]:
    """Yield the vertex indices contained in *bitset* (ascending)."""
    while bitset:
        low = bitset & -bitset
        yield low.bit_length() - 1
        bitset ^= low


def lowest_bit(bitset: int) -> int:
    """Index of the smallest element; -1 for the empty set."""
    if not bitset:
        return -1
    return (bitset & -bitset).bit_length() - 1


def is_subset(small: int, big: int) -> bool:
    """small ⊆ big."""
    return small & ~big == 0


def subsets(bitset: int) -> Iterator[int]:
    """Enumerate all non-empty subsets of *bitset* (ascending order).

    Uses the ascending variant of the classic subset-enumeration trick,
    ``sub = (sub - bitset) & bitset``, which visits subsets in increasing
    numeric order directly — the order DPhyp's EnumerateCsgRec expects (it
    must emit a csg before any of its supersets) — without materialising
    them in a list first.
    """
    sub = (0 - bitset) & bitset
    while sub:
        yield sub
        sub = (sub - bitset) & bitset


def prefix_below(index: int) -> int:
    """``B_i`` — the set {v_0, ..., v_i} of all vertices up to *index*."""
    return (1 << (index + 1)) - 1
