"""Bitset helpers: integers as sets of vertex indices."""

from __future__ import annotations

from typing import Iterable, Iterator


def set_of(indices: Iterable[int]) -> int:
    """Build a bitset from vertex indices."""
    result = 0
    for index in indices:
        result |= 1 << index
    return result


def bits_of(bitset: int) -> Iterator[int]:
    """Yield the vertex indices contained in *bitset* (ascending)."""
    while bitset:
        low = bitset & -bitset
        yield low.bit_length() - 1
        bitset ^= low


def lowest_bit(bitset: int) -> int:
    """Index of the smallest element; -1 for the empty set."""
    if not bitset:
        return -1
    return (bitset & -bitset).bit_length() - 1


def is_subset(small: int, big: int) -> bool:
    """small ⊆ big."""
    return small & ~big == 0


def subsets(bitset: int) -> Iterator[int]:
    """Enumerate all non-empty subsets of *bitset* (ascending order).

    Uses the classic ``sub = (sub - 1) & bitset`` trick, reversed so that
    smaller subsets come first — the order DPhyp's EnumerateCsgRec expects
    (it must emit a csg before any of its supersets).
    """
    sub = bitset & -bitset if bitset else 0
    collected = []
    sub = bitset
    while sub:
        collected.append(sub)
        sub = (sub - 1) & bitset
    yield from reversed(collected)


def prefix_below(index: int) -> int:
    """``B_i`` — the set {v_0, ..., v_i} of all vertices up to *index*."""
    return (1 << (index + 1)) - 1
