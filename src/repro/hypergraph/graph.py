"""Query hypergraphs.

A hypergraph ``H = (V, E)`` has vertices ``0..n-1`` (the base relations) and
hyperedges ``(u, w)`` — pairs of disjoint, non-empty vertex sets.  A *simple*
edge has ``|u| = |w| = 1``.  The conflict detector maps every operator of
the initial tree to one hyperedge ``(L-TES, R-TES)``, so hyperedges carry an
opaque ``label`` (the operator's edge id) for the plan generator.

Hot-path design (see docs/architecture.md): the DPhyp enumerator calls
``neighborhood`` and ``connected`` once or more per csg-cmp-pair, so both
are served from per-vertex indexes instead of scans over ``self.edges``:

* ``_simple_neighbors[v]`` — union of simple-edge neighbours of ``v``,
* ``_sides_by_min[v]`` — every edge *orientation* ``(u, w)`` whose side
  ``u`` has ``min(u) = v``.  Any edge with ``u ⊆ S`` is findable under one
  of S's vertices, so membership tests touch only edges incident to S,
* memo dictionaries for ``connected`` and ``neighborhood`` — both are pure
  functions of the (immutable) graph, so results are cached across the
  run.  ``reset_caches()`` drops them (e.g. between benchmark repetitions).

The pre-index linear scans survive as ``connected_scan`` /
``neighborhood_scan`` — the executable reference implementation used by
equivalence tests and by the ``engine="reference"`` optimizer path that
:mod:`benchmarks.bench_hotpath` times speedups against.

``counters`` tracks index probes and memo hits; the optimizer surfaces a
snapshot of them on :class:`~repro.optimizer.driver.OptimizationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.hypergraph.bitset import bits_of, is_subset, lowest_bit


@dataclass(frozen=True)
class Hyperedge:
    """An undirected hyperedge between two disjoint vertex sets (bitsets)."""

    left: int
    right: int
    label: Any = None

    def __post_init__(self) -> None:
        if not self.left or not self.right:
            raise ValueError("hyperedge sides must be non-empty")
        if self.left & self.right:
            raise ValueError("hyperedge sides must be disjoint")

    @property
    def simple(self) -> bool:
        return self.left.bit_count() == 1 and self.right.bit_count() == 1

    def vertices(self) -> int:
        return self.left | self.right


class Hypergraph:
    """Vertices 0..n-1 plus a list of hyperedges."""

    def __init__(self, n: int, edges: Sequence[Hyperedge] = ()):
        if n <= 0:
            raise ValueError("hypergraph needs at least one vertex")
        self.n = n
        self.edges: List[Hyperedge] = list(edges)
        self.all_vertices = (1 << n) - 1
        for edge in self.edges:
            if edge.vertices() & ~self.all_vertices:
                raise ValueError(f"edge {edge} references vertices outside 0..{n - 1}")
        # Simple-edge adjacency per vertex accelerates the common case.
        self._simple_neighbors = [0] * n
        self._complex_edges: List[Hyperedge] = []
        # Both orientations (u, w) of every edge, indexed by min(u); the
        # complex-only sublist drives the neighbourhood representatives.
        self._sides_by_min: List[List[Tuple[int, int, Hyperedge]]] = [[] for _ in range(n)]
        self._complex_sides_by_min: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for edge in self.edges:
            if edge.simple:
                u = lowest_bit(edge.left)
                w = lowest_bit(edge.right)
                self._simple_neighbors[u] |= edge.right
                self._simple_neighbors[w] |= edge.left
            else:
                self._complex_edges.append(edge)
            for u, w in ((edge.left, edge.right), (edge.right, edge.left)):
                self._sides_by_min[lowest_bit(u)].append((u, w, edge))
                if not edge.simple:
                    self._complex_sides_by_min[lowest_bit(u)].append((u, w))
        #: Simple-only graphs (every bench topology) answer both hot-path
        #: queries from the bitmask adjacency alone — the explicit
        #: crossover that keeps small graphs from paying per-edge
        #: orientation scans that the reference scan never amortises.
        self._no_complex = not self._complex_edges
        self._connected_cache: Dict[Tuple[int, int], bool] = {}
        self._neighborhood_cache: Dict[Tuple[int, int], int] = {}
        self.counters: Dict[str, int] = {
            "neighborhood_calls": 0,
            "neighborhood_memo_hits": 0,
            "connected_calls": 0,
            "connected_memo_hits": 0,
            "edge_sides_scanned": 0,
        }

    @classmethod
    def from_pairs(cls, n: int, pairs: Sequence[Tuple[int, int]]) -> "Hypergraph":
        """Build a simple graph from vertex-index pairs (test convenience)."""
        edges = [Hyperedge(1 << u, 1 << w, label=i) for i, (u, w) in enumerate(pairs)]
        return cls(n, edges)

    def reset_caches(self) -> None:
        """Drop the connected/neighbourhood memos and zero the counters."""
        self._connected_cache.clear()
        self._neighborhood_cache.clear()
        for key in self.counters:
            self.counters[key] = 0

    # -- connectivity -------------------------------------------------------
    def neighborhood(self, s: int, excluded: int) -> int:
        """``N(S, X)`` — DPhyp's neighbourhood of *s* avoiding *excluded*.

        Simple neighbours contribute directly; a complex edge ``(u, w)``
        with ``u ⊆ S`` and ``w ∩ (S ∪ X) = ∅`` contributes only ``min(w)``
        as its representative (Moerkotte & Neumann 2008).
        """
        counters = self.counters
        counters["neighborhood_calls"] += 1
        forbidden = s | excluded
        # The result depends only on (s, s ∪ X), so memoise on that — it
        # also folds together calls whose excluded sets differ inside s.
        key = (s, forbidden)
        cached = self._neighborhood_cache.get(key)
        if cached is not None:
            counters["neighborhood_memo_hits"] += 1
            return cached
        result = 0
        simple = self._simple_neighbors
        if self._no_complex:
            for v in bits_of(s):
                result |= simple[v]
            result &= ~forbidden
            self._neighborhood_cache[key] = result
            return result
        complex_sides = self._complex_sides_by_min
        scanned = 0
        for v in bits_of(s):
            result |= simple[v]
            for u, w in complex_sides[v]:
                scanned += 1
                if not (u & ~s) and not (w & forbidden):
                    result |= w & -w
        result &= ~forbidden
        counters["edge_sides_scanned"] += scanned
        self._neighborhood_cache[key] = result
        return result

    def neighborhood_scan(self, s: int, excluded: int) -> int:
        """Reference ``N(S, X)``: the pre-index linear scan over all edges."""
        forbidden = s | excluded
        result = 0
        for v in bits_of(s):
            result |= self._simple_neighbors[v]
        result &= ~forbidden
        for edge in self._complex_edges:
            for u, w in ((edge.left, edge.right), (edge.right, edge.left)):
                if is_subset(u, s) and not (w & forbidden):
                    result |= 1 << lowest_bit(w)
        return result

    def connecting_edges(self, s1: int, s2: int) -> List[Hyperedge]:
        """All hyperedges with one side inside *s1* and the other inside *s2*.

        Not on the DP hot path (the driver resolves operators through
        :class:`repro.optimizer.edgeindex.EdgeResolver`), so this stays
        the simple order-preserving scan.
        """
        found = []
        for edge in self.edges:
            if (is_subset(edge.left, s1) and is_subset(edge.right, s2)) or (
                is_subset(edge.left, s2) and is_subset(edge.right, s1)
            ):
                found.append(edge)
        return found

    def connected(self, s1: int, s2: int) -> bool:
        """Whether some hyperedge connects *s1* and *s2* (memoised)."""
        counters = self.counters
        counters["connected_calls"] += 1
        key = (s1, s2) if s1 <= s2 else (s2, s1)
        cached = self._connected_cache.get(key)
        if cached is not None:
            counters["connected_memo_hits"] += 1
            return cached
        # Any crossing edge has the min vertex of its s1-side inside s1, so
        # scanning the smaller side's incident orientations suffices.
        if s1.bit_count() > s2.bit_count():
            s1, s2 = s2, s1
        # A simple crossing edge shows up in the bitmask adjacency — the
        # O(|S1|) test that settles simple-only graphs without touching
        # any orientation list.
        simple = self._simple_neighbors
        result = False
        for v in bits_of(s1):
            if simple[v] & s2:
                result = True
                break
        if result or self._no_complex:
            self._connected_cache[key] = result
            return result
        sides = self._complex_sides_by_min
        scanned = 0
        for v in bits_of(s1):
            for u, w in sides[v]:
                scanned += 1
                if not (u & ~s1) and not (w & ~s2):
                    result = True
                    break
            if result:
                break
        counters["edge_sides_scanned"] += scanned
        self._connected_cache[key] = result
        return result

    def connected_scan(self, s1: int, s2: int) -> bool:
        """Reference connectivity test: the pre-index scan over all edges."""
        for edge in self.edges:
            if (is_subset(edge.left, s1) and is_subset(edge.right, s2)) or (
                is_subset(edge.left, s2) and is_subset(edge.right, s1)
            ):
                return True
        return False

    def induces_connected_subgraph(self, s: int) -> bool:
        """Whether *s* is connected in the DP-relevant (buildable) sense.

        For hypergraphs the right notion of connectivity is recursive: a set
        is connected iff it is a single vertex, or it can be partitioned into
        two connected parts S1, S2 linked by a hyperedge ``(u, w)`` with
        ``u ⊆ S1 ∧ w ⊆ S2``.  (A set like {2,4} whose only incident
        hyperedge is ({2,4}, {1}) is *not* connected: no plan could ever be
        built for it.)  Computed bottom-up over the connected subsets of *s*.
        """
        if not s:
            return False
        if s.bit_count() == 1:
            return True
        known = {1 << v for v in bits_of(s)}
        frontier = list(known)
        while frontier:
            a = frontier.pop()
            for b in list(known):
                if a & b:
                    continue
                combined = a | b
                if combined in known or not is_subset(combined, s):
                    continue
                if self.connected(a, b):
                    if combined == s:
                        return True
                    known.add(combined)
                    frontier.append(combined)
        return False

    def __repr__(self) -> str:
        return f"Hypergraph(n={self.n}, edges={len(self.edges)})"
