"""Query hypergraphs.

A hypergraph ``H = (V, E)`` has vertices ``0..n-1`` (the base relations) and
hyperedges ``(u, w)`` — pairs of disjoint, non-empty vertex sets.  A *simple*
edge has ``|u| = |w| = 1``.  The conflict detector maps every operator of
the initial tree to one hyperedge ``(L-TES, R-TES)``, so hyperedges carry an
opaque ``label`` (the operator's edge id) for the plan generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro.hypergraph.bitset import bits_of, is_subset, lowest_bit


@dataclass(frozen=True)
class Hyperedge:
    """An undirected hyperedge between two disjoint vertex sets (bitsets)."""

    left: int
    right: int
    label: Any = None

    def __post_init__(self) -> None:
        if not self.left or not self.right:
            raise ValueError("hyperedge sides must be non-empty")
        if self.left & self.right:
            raise ValueError("hyperedge sides must be disjoint")

    @property
    def simple(self) -> bool:
        return self.left.bit_count() == 1 and self.right.bit_count() == 1

    def vertices(self) -> int:
        return self.left | self.right


class Hypergraph:
    """Vertices 0..n-1 plus a list of hyperedges."""

    def __init__(self, n: int, edges: Sequence[Hyperedge] = ()):
        if n <= 0:
            raise ValueError("hypergraph needs at least one vertex")
        self.n = n
        self.edges: List[Hyperedge] = list(edges)
        self.all_vertices = (1 << n) - 1
        for edge in self.edges:
            if edge.vertices() & ~self.all_vertices:
                raise ValueError(f"edge {edge} references vertices outside 0..{n - 1}")
        # Simple-edge adjacency per vertex accelerates the common case.
        self._simple_neighbors = [0] * n
        self._complex_edges: List[Hyperedge] = []
        for edge in self.edges:
            if edge.simple:
                u = lowest_bit(edge.left)
                w = lowest_bit(edge.right)
                self._simple_neighbors[u] |= edge.right
                self._simple_neighbors[w] |= edge.left
            else:
                self._complex_edges.append(edge)

    @classmethod
    def from_pairs(cls, n: int, pairs: Sequence[Tuple[int, int]]) -> "Hypergraph":
        """Build a simple graph from vertex-index pairs (test convenience)."""
        edges = [Hyperedge(1 << u, 1 << w, label=i) for i, (u, w) in enumerate(pairs)]
        return cls(n, edges)

    # -- connectivity -------------------------------------------------------
    def neighborhood(self, s: int, excluded: int) -> int:
        """``N(S, X)`` — DPhyp's neighbourhood of *s* avoiding *excluded*.

        Simple neighbours contribute directly; a complex edge ``(u, w)``
        with ``u ⊆ S`` and ``w ∩ (S ∪ X) = ∅`` contributes only ``min(w)``
        as its representative (Moerkotte & Neumann 2008).
        """
        forbidden = s | excluded
        result = 0
        for v in bits_of(s):
            result |= self._simple_neighbors[v]
        result &= ~forbidden
        for edge in self._complex_edges:
            for u, w in ((edge.left, edge.right), (edge.right, edge.left)):
                if is_subset(u, s) and not (w & forbidden):
                    result |= 1 << lowest_bit(w)
        return result

    def connecting_edges(self, s1: int, s2: int) -> List[Hyperedge]:
        """All hyperedges with one side inside *s1* and the other inside *s2*."""
        found = []
        for edge in self.edges:
            if (is_subset(edge.left, s1) and is_subset(edge.right, s2)) or (
                is_subset(edge.left, s2) and is_subset(edge.right, s1)
            ):
                found.append(edge)
        return found

    def connected(self, s1: int, s2: int) -> bool:
        """Whether some hyperedge connects *s1* and *s2*."""
        for edge in self.edges:
            if (is_subset(edge.left, s1) and is_subset(edge.right, s2)) or (
                is_subset(edge.left, s2) and is_subset(edge.right, s1)
            ):
                return True
        return False

    def induces_connected_subgraph(self, s: int) -> bool:
        """Whether *s* is connected in the DP-relevant (buildable) sense.

        For hypergraphs the right notion of connectivity is recursive: a set
        is connected iff it is a single vertex, or it can be partitioned into
        two connected parts S1, S2 linked by a hyperedge ``(u, w)`` with
        ``u ⊆ S1 ∧ w ⊆ S2``.  (A set like {2,4} whose only incident
        hyperedge is ({2,4}, {1}) is *not* connected: no plan could ever be
        built for it.)  Computed bottom-up over the connected subsets of *s*.
        """
        if not s:
            return False
        if s.bit_count() == 1:
            return True
        known = {1 << v for v in bits_of(s)}
        frontier = list(known)
        while frontier:
            a = frontier.pop()
            for b in list(known):
                if a & b:
                    continue
                combined = a | b
                if combined in known or not is_subset(combined, s):
                    continue
                if self.connected(a, b):
                    if combined == s:
                        return True
                    known.add(combined)
                    frontier.append(combined)
        return False

    def __repr__(self) -> str:
        return f"Hypergraph(n={self.n}, edges={len(self.edges)})"
