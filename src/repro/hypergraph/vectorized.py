"""numpy-backed bitset layer over :class:`~repro.hypergraph.graph.Hypergraph`.

The iterative DPhyp enumerator consumes exactly three things from a
graph: ``n``, ``neighborhood(s, excluded)`` and ``connected(s1, s2)``.
Both queries reduce to testing every *edge orientation* ``(u, w)``
incident to a vertex set against two bitmasks — a loop the indexed
engine runs in Python, one orientation at a time.

:class:`VectorizedGraph` keeps the per-vertex orientation lists as
contiguous ``uint64`` arrays instead, so one call tests all incident
orientations with a handful of broadcasted bitwise operations.  Vertex
sets are plain Python ints everywhere else in the optimizer, so the view
only batches internally and returns the same exact integers the base
graph would — bitwise arithmetic on ``uint64`` is exact, which is what
makes the vectorized engine's golden/differential guarantees possible at
this layer for free.

Design notes:

* the view *wraps* the base graph rather than replacing it: ``counters``
  is the base graph's dict (shared, so driver stats diffs keep working),
  the simple-neighbor index is reused, and anything the view does not
  implement (``connecting_edges``, ``induces_connected_subgraph``, …)
  delegates via ``__getattr__``,
* memoisation mirrors the base graph exactly (same keys), because the
  enumerator's call pattern is identical either way,
* tiny orientation lists fall back to the scalar loop — batching three
  edges costs more in array setup than it saves,
* requires ``n <= 64`` (vertex sets must fit ``uint64``) and numpy; the
  caller (:mod:`repro.optimizer.driver`) checks both and keeps the base
  graph otherwise.
"""

from __future__ import annotations

from typing import Dict, Tuple

try:  # pragma: no cover - exercised via the numpy-less fallback suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.hypergraph.bitset import bits_of
from repro.hypergraph.graph import Hypergraph

#: Below this many incident orientations the scalar loop wins.
_BATCH_THRESHOLD = 8


def numpy_available() -> bool:
    return _np is not None


def supports(graph: Hypergraph) -> bool:
    """Whether *graph* can be served by a :class:`VectorizedGraph`."""
    return _np is not None and graph.n <= 64


class VectorizedGraph:
    """A batched ``neighborhood``/``connected`` view of a base graph."""

    __slots__ = (
        "_base",
        "n",
        "counters",
        "_simple_neighbors",
        "_neighborhood_cache",
        "_connected_cache",
        "_complex_u",
        "_complex_w",
        "_complex_rep",
        "_sides_u",
        "_sides_w",
    )

    def __init__(self, base: Hypergraph):
        if _np is None:
            raise RuntimeError("VectorizedGraph requires numpy")
        if base.n > 64:
            raise ValueError("vertex sets beyond 64 bits do not fit uint64 lanes")
        self._base = base
        self.n = base.n
        # Shared with the base graph so end-minus-start stats diffs in the
        # driver see one coherent counter set regardless of the view.
        self.counters: Dict[str, int] = base.counters
        self.counters.setdefault("vector_batched_calls", 0)
        self._simple_neighbors = base._simple_neighbors
        self._neighborhood_cache: Dict[Tuple[int, int], int] = {}
        self._connected_cache: Dict[Tuple[int, int], bool] = {}
        # Per-vertex orientation lanes, uint64: complex-only (for the
        # neighbourhood representatives) and all orientations (for
        # connectivity), mirroring the base graph's two indexes.
        u64 = _np.uint64
        self._complex_u = []
        self._complex_w = []
        self._complex_rep = []
        self._sides_u = []
        self._sides_w = []
        for v in range(base.n):
            cu = _np.array([u for u, _w in base._complex_sides_by_min[v]], dtype=u64)
            cw = _np.array([w for _u, w in base._complex_sides_by_min[v]], dtype=u64)
            self._complex_u.append(cu)
            self._complex_w.append(cw)
            self._complex_rep.append(cw & (~cw + u64(1)))  # w & -w per lane
            su = _np.array([u for u, _w, _e in base._sides_by_min[v]], dtype=u64)
            sw = _np.array([w for _u, w, _e in base._sides_by_min[v]], dtype=u64)
            self._sides_u.append(su)
            self._sides_w.append(sw)

    def __getattr__(self, name):
        return getattr(self._base, name)

    def reset_caches(self) -> None:
        self._neighborhood_cache.clear()
        self._connected_cache.clear()
        self._base.reset_caches()

    # -- connectivity -------------------------------------------------------
    def neighborhood(self, s: int, excluded: int) -> int:
        """``N(S, X)`` — identical integers to the base graph's answer."""
        counters = self.counters
        counters["neighborhood_calls"] += 1
        forbidden = s | excluded
        key = (s, forbidden)
        cached = self._neighborhood_cache.get(key)
        if cached is not None:
            counters["neighborhood_memo_hits"] += 1
            return cached
        result = 0
        simple = self._simple_neighbors
        vertices = list(bits_of(s))
        for v in vertices:
            result |= simple[v]
        scanned = sum(len(self._complex_u[v]) for v in vertices)
        if scanned:
            if scanned < _BATCH_THRESHOLD:
                complex_sides = self._base._complex_sides_by_min
                for v in vertices:
                    for u, w in complex_sides[v]:
                        if not (u & ~s) and not (w & forbidden):
                            result |= w & -w
            else:
                counters["vector_batched_calls"] += 1
                u64 = _np.uint64
                not_s = u64(~s & ((1 << 64) - 1))
                forb = u64(forbidden)
                zero = u64(0)
                for v in vertices:
                    cu = self._complex_u[v]
                    if not len(cu):
                        continue
                    hit = ((cu & not_s) == zero) & ((self._complex_w[v] & forb) == zero)
                    if hit.any():
                        result |= int(_np.bitwise_or.reduce(self._complex_rep[v][hit]))
        result &= ~forbidden
        counters["edge_sides_scanned"] += scanned
        self._neighborhood_cache[key] = result
        return result

    def connected(self, s1: int, s2: int) -> bool:
        """Whether some hyperedge connects *s1* and *s2* (memoised)."""
        counters = self.counters
        counters["connected_calls"] += 1
        key = (s1, s2) if s1 <= s2 else (s2, s1)
        cached = self._connected_cache.get(key)
        if cached is not None:
            counters["connected_memo_hits"] += 1
            return cached
        if s1.bit_count() > s2.bit_count():
            s1, s2 = s2, s1
        vertices = list(bits_of(s1))
        scanned = sum(len(self._sides_u[v]) for v in vertices)
        result = False
        if scanned and scanned < _BATCH_THRESHOLD:
            sides = self._base._sides_by_min
            for v in vertices:
                for u, w, _edge in sides[v]:
                    if not (u & ~s1) and not (w & ~s2):
                        result = True
                        break
                if result:
                    break
        elif scanned:
            counters["vector_batched_calls"] += 1
            u64 = _np.uint64
            mask = (1 << 64) - 1
            not_s1 = u64(~s1 & mask)
            not_s2 = u64(~s2 & mask)
            zero = u64(0)
            for v in vertices:
                su = self._sides_u[v]
                if not len(su):
                    continue
                if (((su & not_s1) == zero) & ((self._sides_w[v] & not_s2) == zero)).any():
                    result = True
                    break
        counters["edge_sides_scanned"] += scanned
        self._connected_cache[key] = result
        return result
