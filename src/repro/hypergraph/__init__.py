"""Query hypergraphs and the DPhyp csg-cmp-pair enumerator.

Vertex sets are represented as Python integers used as bitsets, which keeps
the enumeration loops allocation-free.  :mod:`repro.hypergraph.enumerate`
implements ``EnumerateCsg`` / ``EnumerateCmp`` from Moerkotte & Neumann
(VLDB 2006 / SIGMOD 2008 [6, 8]), generalised to hyperedges so that the
conflict-detector TES sets of non-inner joins (SIGMOD 2013 [7]) plug in
directly.
"""

from repro.hypergraph.bitset import bits_of, lowest_bit, set_of
from repro.hypergraph.graph import Hyperedge, Hypergraph
from repro.hypergraph.enumerate import count_ccps, enumerate_ccps

__all__ = [
    "Hyperedge",
    "Hypergraph",
    "enumerate_ccps",
    "count_ccps",
    "bits_of",
    "set_of",
    "lowest_bit",
]
