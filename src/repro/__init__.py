"""repro — a reproduction of *Dynamic Programming: The Next Step*
(Eich & Moerkotte, ICDE 2015).

Eager aggregation in a DP-based query optimizer: the package implements
the paper's equivalences for pushing grouping through inner joins,
outerjoins, semijoins, antijoins and groupjoins, and the plan generators
DPhyp / EA-All / EA-Prune / H1 / H2 that explore the enlarged search
space.

Typical entry points::

    from repro.sql import Catalog, parse_query
    from repro.optimizer import optimize
    from repro.plans import render_plan
    from repro.exec import execute

See README.md for a guided tour and docs/architecture.md for the
architecture, including the batch-optimization service layer
(:mod:`repro.service`).
"""

__version__ = "1.0.0"

__all__ = [
    "algebra",
    "aggregates",
    "rewrites",
    "query",
    "hypergraph",
    "conflict",
    "cardinality",
    "plans",
    "optimizer",
    "service",
    "workload",
    "tpch",
    "sql",
    "exec",
]
