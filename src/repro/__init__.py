"""repro — a reproduction of *Dynamic Programming: The Next Step*
(Eich & Moerkotte, ICDE 2015).

Eager aggregation in a DP-based query optimizer: the package implements
the paper's equivalences for pushing grouping through inner joins,
outerjoins, semijoins, antijoins and groupjoins, and the plan generators
DPhyp / EA-All / EA-Prune / H1 / H2 that explore the enlarged search
space.

The front door is :mod:`repro.api`::

    from repro.api import PlannerSession

    session = PlannerSession.tpch(scale_factor=1.0)
    handle = session.sql("SELECT ... GROUP BY ...").optimize()
    handle.explain(); handle.cost; handle.execute(database); handle.to_dict()

The layer-level entry points remain available (and are what the session
delegates to)::

    from repro.sql import Catalog, parse_query
    from repro.optimizer import optimize
    from repro.plans import render_plan
    from repro.exec import execute

See README.md for a guided tour and docs/architecture.md for the
architecture, including the batch-optimization service layer
(:mod:`repro.service`).
"""

__version__ = "1.1.0"

__all__ = [
    "api",
    "algebra",
    "aggregates",
    "rewrites",
    "query",
    "hypergraph",
    "conflict",
    "cardinality",
    "plans",
    "optimizer",
    "service",
    "workload",
    "tpch",
    "sql",
    "exec",
]
