"""The binder: SQL AST + catalog → :class:`~repro.query.spec.Query`.

Responsibilities:

* name resolution (aliases, unqualified columns),
* building the initial operator tree (left-deep in FROM order — exactly the
  "straightforward" derivation the paper assumes, Sec. 4.1),
* classifying WHERE conjuncts into base-table predicates (with estimated
  selectivities) and cycle-closing equijoins,
* assembling the aggregation vector and grouping attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Const, Expr, Logical
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import Tree, TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind
from repro.sql.catalog import Catalog
from repro.sql.parser import (
    Binary,
    ColumnRef,
    FuncCall,
    Literal,
    SelectStmt,
    SqlExpr,
    parse_select,
)

_JOIN_KINDS = {"inner": OpKind.INNER, "left": OpKind.LEFT_OUTER, "full": OpKind.FULL_OUTER}
_AGG_KINDS = {
    "sum": AggKind.SUM,
    "count": AggKind.COUNT,
    "min": AggKind.MIN,
    "max": AggKind.MAX,
    "avg": AggKind.AVG,
}
#: default selectivity for range predicates (the classic System-R guess)
RANGE_SELECTIVITY = 1.0 / 3.0


class BindError(ValueError):
    """Raised when the statement cannot be bound against the catalog."""


@dataclass
class _Scope:
    """Alias → (vertex index, RelationInfo, unqualified column set)."""

    relations: List[RelationInfo]
    by_alias: Dict[str, int]
    columns: Dict[str, List[str]]  # unqualified column -> [alias, ...]

    def resolve(self, ref: ColumnRef) -> str:
        if ref.table is not None:
            if ref.table not in self.by_alias:
                raise BindError(f"unknown table or alias {ref.table!r}")
            attr = f"{ref.table}.{ref.column}"
            vertex = self.by_alias[ref.table]
            if attr not in self.relations[vertex].attributes:
                raise BindError(f"table {ref.table!r} has no column {ref.column!r}")
            return attr
        owners = self.columns.get(ref.column, [])
        if not owners:
            raise BindError(f"unknown column {ref.column!r}")
        if len(owners) > 1:
            raise BindError(f"ambiguous column {ref.column!r} (in {sorted(owners)})")
        return f"{owners[0]}.{ref.column}"

    def vertex_of_attr(self, attr: str) -> int:
        alias = attr.split(".", 1)[0]
        return self.by_alias[alias]

    def distinct_of(self, attr: str) -> float:
        vertex = self.vertex_of_attr(attr)
        return self.relations[vertex].distinct_count(attr)


def bind(stmt: SelectStmt, catalog: Catalog) -> Query:
    """Bind a parsed statement against *catalog*."""
    scope = _build_scope(stmt, catalog)
    edges, tree = _build_tree(stmt, scope)
    group_by = tuple(scope.resolve(ref) for ref in stmt.group_by)
    aggregates = _build_aggregates(stmt, scope, group_by)
    local_predicates, floating = _bind_where(stmt, scope, edges)
    edges = edges + floating
    return Query(
        scope.relations, edges, tree, group_by, aggregates,
        local_predicates=local_predicates,
    )


def parse_query(sql: str, catalog: Catalog) -> Query:
    """Parse and bind in one step."""
    return bind(parse_select(sql), catalog)


# --------------------------------------------------------------------------

def _build_scope(stmt: SelectStmt, catalog: Catalog) -> _Scope:
    relations: List[RelationInfo] = []
    by_alias: Dict[str, int] = {}
    columns: Dict[str, List[str]] = {}
    for ref in [stmt.base] + [join.table for join in stmt.joins]:
        stats = catalog.lookup(ref.table)
        if stats is None:
            raise BindError(f"unknown table {ref.table!r}")
        alias = ref.alias or ref.table
        if alias in by_alias:
            raise BindError(f"duplicate table alias {alias!r}")
        attrs = tuple(f"{alias}.{c}" for c in stats.columns)
        distinct = {f"{alias}.{c}": v for c, v in stats.distinct.items()}
        keys = tuple(frozenset(f"{alias}.{c}" for c in key) for key in stats.keys)
        by_alias[alias] = len(relations)
        relations.append(
            RelationInfo(alias, attrs, stats.cardinality, distinct, keys, source=stats.name)
        )
        for column in stats.columns:
            columns.setdefault(column, []).append(alias)
    return _Scope(relations, by_alias, columns)


def _build_tree(stmt: SelectStmt, scope: _Scope) -> Tuple[List[JoinEdge], Tree]:
    tree: Tree = TreeLeaf(0)
    edges: List[JoinEdge] = []
    for join in stmt.joins:
        predicate = _bind_scalar(join.condition, scope)
        selectivity = _join_selectivity(join.condition, scope)
        edge = JoinEdge(len(edges), _JOIN_KINDS[join.kind], predicate, selectivity)
        edges.append(edge)
        vertex = scope.by_alias[join.table.alias or join.table.table]
        tree = TreeNode(edge.edge_id, tree, TreeLeaf(vertex))
    return edges, tree


def _bind_scalar(expr: SqlExpr, scope: _Scope) -> Expr:
    if isinstance(expr, ColumnRef):
        return Attr(scope.resolve(expr))
    if isinstance(expr, Literal):
        return Const(expr.value)
    if isinstance(expr, Binary):
        if expr.op in ("and", "or"):
            return Logical(
                expr.op, (_bind_scalar(expr.left, scope), _bind_scalar(expr.right, scope))
            )
        return BinOp(expr.op, _bind_scalar(expr.left, scope), _bind_scalar(expr.right, scope))
    if isinstance(expr, FuncCall):
        raise BindError("aggregate calls are only allowed in the SELECT list")
    raise AssertionError(f"unhandled SQL expression {expr!r}")


def _join_selectivity(condition: SqlExpr, scope: _Scope) -> float:
    """σ for an ON condition: 1/max(d) per equijoin conjunct, 1/3 for ranges."""
    selectivity = 1.0
    for conjunct in _conjuncts(condition):
        if (
            isinstance(conjunct, Binary)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            d1 = scope.distinct_of(scope.resolve(conjunct.left))
            d2 = scope.distinct_of(scope.resolve(conjunct.right))
            selectivity *= 1.0 / max(d1, d2)
        else:
            selectivity *= RANGE_SELECTIVITY
    return max(selectivity, 1e-12)


def _conjuncts(expr: SqlExpr):
    if isinstance(expr, Binary) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _build_aggregates(stmt: SelectStmt, scope: _Scope, group_by: Tuple[str, ...]) -> AggVector:
    items: List[AggItem] = []
    counter = 0
    for item in stmt.items:
        if isinstance(item.expr, ColumnRef):
            attr = scope.resolve(item.expr)
            if attr not in group_by:
                raise BindError(
                    f"column {attr} appears in SELECT but not in GROUP BY"
                )
            continue
        if isinstance(item.expr, FuncCall):
            call = _bind_aggregate(item.expr, scope)
            name = item.alias or f"agg{counter}"
            counter += 1
            items.append(AggItem(name, call))
            continue
        raise BindError(f"unsupported SELECT item {item.expr!r}")
    if not items:
        raise BindError("the SELECT list needs at least one aggregate")
    return AggVector(items)


def _bind_aggregate(call: FuncCall, scope: _Scope) -> AggCall:
    if call.name not in _AGG_KINDS:
        raise BindError(f"unknown aggregate function {call.name!r}")
    if call.argument is None:
        return AggCall(AggKind.COUNT_STAR)
    return AggCall(_AGG_KINDS[call.name], _bind_scalar(call.argument, scope), call.distinct)


def _bind_where(
    stmt: SelectStmt, scope: _Scope, edges: List[JoinEdge]
) -> Tuple[Dict[int, Tuple[Expr, float]], List[JoinEdge]]:
    """Split WHERE into per-table predicates and cycle-closing equijoins."""
    local_parts: Dict[int, List[Tuple[Expr, float]]] = {}
    floating: List[JoinEdge] = []
    if stmt.where is None:
        return {}, []
    next_edge_id = len(edges)
    for conjunct in _conjuncts(stmt.where):
        bound = _bind_scalar(conjunct, scope)
        vertices = sorted({scope.vertex_of_attr(a) for a in bound.attributes()})
        if len(vertices) == 1:
            selectivity = _local_selectivity(conjunct, scope)
            local_parts.setdefault(vertices[0], []).append((bound, selectivity))
        elif len(vertices) == 2 and isinstance(conjunct, Binary) and conjunct.op == "=":
            floating.append(
                JoinEdge(
                    next_edge_id, OpKind.INNER, bound,
                    _join_selectivity(conjunct, scope),
                )
            )
            next_edge_id += 1
        else:
            raise BindError(
                f"unsupported WHERE conjunct (must be single-table or a binary equijoin): {conjunct!r}"
            )
    locals_: Dict[int, Tuple[Expr, float]] = {}
    for vertex, parts in local_parts.items():
        combined: Expr = parts[0][0]
        selectivity = parts[0][1]
        for expr, sel in parts[1:]:
            combined = Logical("and", (combined, expr))
            selectivity *= sel
        locals_[vertex] = (combined, selectivity)
    return locals_, floating


def _local_selectivity(conjunct: SqlExpr, scope: _Scope) -> float:
    """Equality with a constant → 1/d; ranges → 1/3; else 1/3."""
    if isinstance(conjunct, Binary) and conjunct.op == "=":
        column = None
        if isinstance(conjunct.left, ColumnRef) and isinstance(conjunct.right, Literal):
            column = conjunct.left
        elif isinstance(conjunct.right, ColumnRef) and isinstance(conjunct.left, Literal):
            column = conjunct.right
        if column is not None:
            return 1.0 / scope.distinct_of(scope.resolve(column))
    return RANGE_SELECTIVITY
