"""The binder: SQL AST + catalog → :class:`~repro.query.spec.Query`.

Responsibilities:

* name resolution (aliases, unqualified columns),
* building the initial operator tree (left-deep in FROM order — exactly the
  "straightforward" derivation the paper assumes, Sec. 4.1),
* classifying WHERE conjuncts into base-table predicates (with estimated
  selectivities), join predicates merged into cross-join edges, and
  cycle-closing equijoins,
* decorrelating ``[NOT] EXISTS`` / ``[NOT] IN`` subqueries into
  semijoin / antijoin edges applied on top of the outer tree,
* normalizing ``RIGHT [OUTER] JOIN`` to a left outerjoin with swapped
  inputs,
* assembling the aggregation vector and grouping attributes.

Operator mapping (the full surface of Eich & Moerkotte's algebra):

================================  =======================================
SQL construct                      :class:`~repro.rewrites.pushdown.OpKind`
================================  =======================================
``JOIN ... ON`` / ``INNER JOIN``   ``INNER``
``FROM a, b`` / ``CROSS JOIN``     ``INNER`` (TRUE predicate; WHERE
                                   equijoins merge into the edge)
``LEFT [OUTER] JOIN``              ``LEFT_OUTER``
``RIGHT [OUTER] JOIN``             ``LEFT_OUTER`` with swapped inputs
``FULL [OUTER] JOIN``              ``FULL_OUTER``
``EXISTS (subquery)``              ``LEFT_SEMI``
``NOT EXISTS (subquery)``          ``LEFT_ANTI``
``x IN (subquery)``                ``LEFT_SEMI`` on ``x = selected``
``x NOT IN (subquery)``            ``LEFT_ANTI`` on ``x = selected``
================================  =======================================

``NOT IN`` caveat: SQL's ``NOT IN`` yields UNKNOWN for every row once the
subquery produces a NULL, which an antijoin does not model.  The binder
deliberately binds ``NOT IN`` to the antijoin (``NOT EXISTS`` semantics),
the rewrite every practical optimizer applies when the compared columns
are non-nullable.

Subqueries share one flat namespace with the outer query: every alias
must be unique across the whole statement, and unqualified columns are
resolved against the tables in scope at their syntactic position (outer
tables for outer conjuncts; outer *and* subquery tables inside a
subquery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Const, Expr, IsNull, Logical, Not
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import Tree, TreeLeaf, TreeNode, tree_leaves
from repro.rewrites.pushdown import OpKind
from repro.sql.catalog import Catalog
from repro.sql.parser import (
    Binary,
    ColumnRef,
    Exists,
    FuncCall,
    InSubquery,
    IsNullExpr,
    JoinClause,
    Literal,
    NotExpr,
    SelectStmt,
    SqlExpr,
    TableRef,
    parse_select,
)

_AGG_KINDS = {
    "sum": AggKind.SUM,
    "count": AggKind.COUNT,
    "min": AggKind.MIN,
    "max": AggKind.MAX,
    "avg": AggKind.AVG,
}
#: default selectivity for range predicates (the classic System-R guess)
RANGE_SELECTIVITY = 1.0 / 3.0
#: default selectivity for ``IS NULL`` (few rows are NULL in practice)
NULL_SELECTIVITY = 0.1
#: floor keeping every estimate inside JoinEdge's (0, 1] contract
MIN_SELECTIVITY = 1e-12


class BindError(ValueError):
    """Raised when the statement cannot be bound against the catalog."""


@dataclass
class _Scope:
    """Alias → (vertex index, RelationInfo, unqualified column set)."""

    relations: List[RelationInfo]
    by_alias: Dict[str, int]
    columns: Dict[str, List[str]]  # unqualified column -> [alias, ...]

    def resolve(self, ref: ColumnRef) -> str:
        if ref.table is not None:
            if ref.table not in self.by_alias:
                raise BindError(f"unknown table or alias {ref.table!r}")
            attr = f"{ref.table}.{ref.column}"
            vertex = self.by_alias[ref.table]
            if attr not in self.relations[vertex].attributes:
                raise BindError(f"table {ref.table!r} has no column {ref.column!r}")
            return attr
        owners = self.columns.get(ref.column, [])
        if not owners:
            raise BindError(f"unknown column {ref.column!r}")
        if len(owners) > 1:
            raise BindError(f"ambiguous column {ref.column!r} (in {sorted(owners)})")
        return f"{owners[0]}.{ref.column}"

    def vertex_of_attr(self, attr: str) -> int:
        alias = attr.split(".", 1)[0]
        return self.by_alias[alias]

    def distinct_of(self, attr: str) -> float:
        vertex = self.vertex_of_attr(attr)
        return self.relations[vertex].distinct_count(attr)


def bind(stmt: SelectStmt, catalog: Catalog) -> Query:
    """Bind a parsed statement against *catalog*."""
    return _Binder(catalog).bind(stmt)


def parse_query(sql: str, catalog: Catalog) -> Query:
    """Parse and bind in one step."""
    return bind(parse_select(sql), catalog)


# --------------------------------------------------------------------------

class _Binder:
    """One statement's binding pass: scope + tree + edges under construction."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.scope = _Scope([], {}, {})
        self.edges: List[JoinEdge] = []
        #: edge ids carrying a placeholder TRUE predicate (comma-FROM /
        #: CROSS JOIN) that WHERE join conjuncts may merge into.
        self.cross_edge_ids: set = set()

    def bind(self, stmt: SelectStmt) -> Query:
        for ref in stmt.tables:
            self._add_table(ref)
        for join in stmt.joins:
            self._add_table(join.table)
        outer_vertex_count = len(self.scope.relations)

        tree = self._build_tree(stmt.tables, stmt.joins)

        # Resolve the output shape against the *outer* scope only — before
        # any subquery extends it — so grouping or aggregating over an
        # attribute hidden inside an EXISTS subquery cannot bind.
        group_by = tuple(self.scope.resolve(ref) for ref in stmt.group_by)
        aggregates = self._build_aggregates(stmt, group_by)

        local_predicates: Dict[int, Tuple[Expr, float]] = {}
        floating_conjuncts: List[SqlExpr] = []
        subquery_conjuncts: List[SqlExpr] = []
        if stmt.where is not None:
            for conjunct in _conjuncts(stmt.where):
                if isinstance(conjunct, (Exists, InSubquery)):
                    subquery_conjuncts.append(conjunct)
                    continue
                tree = self._classify_conjunct(
                    conjunct, tree, local_predicates, floating_conjuncts
                )

        for conjunct in subquery_conjuncts:
            tree = self._bind_subquery_conjunct(
                conjunct, tree, outer_vertex_count, local_predicates
            )

        self._append_floating_edges(floating_conjuncts)
        return Query(
            self.scope.relations, self.edges, tree, group_by, aggregates,
            local_predicates=local_predicates,
        )

    # -- scope -------------------------------------------------------------
    def _add_table(self, ref: TableRef) -> int:
        stats = self.catalog.lookup(ref.table)
        if stats is None:
            raise BindError(f"unknown table {ref.table!r}")
        alias = ref.alias or ref.table
        if alias in self.scope.by_alias:
            raise BindError(f"duplicate table alias {alias!r}")
        attrs = tuple(f"{alias}.{c}" for c in stats.columns)
        distinct = {f"{alias}.{c}": v for c, v in stats.distinct.items()}
        keys = tuple(frozenset(f"{alias}.{c}" for c in key) for key in stats.keys)
        vertex = len(self.scope.relations)
        self.scope.by_alias[alias] = vertex
        self.scope.relations.append(
            RelationInfo(alias, attrs, stats.cardinality, distinct, keys, source=stats.name)
        )
        for column in stats.columns:
            self.scope.columns.setdefault(column, []).append(alias)
        return vertex

    def _vertex_of(self, ref: TableRef) -> int:
        return self.scope.by_alias[ref.alias or ref.table]

    # -- the initial operator tree ------------------------------------------
    def _build_tree(
        self, tables: Sequence[TableRef], joins: Sequence[JoinClause]
    ) -> Tree:
        """FROM-order tree with SQL precedence: JOIN binds tighter than the
        comma, so the join clauses extend the *last* FROM item and the
        comma items cross in above the join group (``FROM a, b JOIN c``
        means ``a × (b ⋈ c)``, and a WHERE equijoin over the boundary
        merges into the cross edge — i.e. applies after the join)."""
        join_group = self._apply_joins(
            TreeLeaf(self._vertex_of(tables[-1])), joins
        )
        if len(tables) == 1:
            return join_group
        tree: Tree = TreeLeaf(self._vertex_of(tables[0]))
        for ref in tables[1:-1]:
            tree = self._cross(tree, TreeLeaf(self._vertex_of(ref)))
        return self._cross(tree, join_group)

    def _apply_joins(self, tree: Tree, joins: Sequence[JoinClause]) -> Tree:
        for join in joins:
            vertex = self._vertex_of(join.table)
            if join.kind == "cross":
                tree = self._cross(tree, TreeLeaf(vertex))
                continue
            assert join.condition is not None
            predicate = self._bind_scalar(join.condition)
            in_scope = tree_leaves(tree) | (1 << vertex)
            for attr in predicate.attributes():
                if not (1 << self.scope.vertex_of_attr(attr)) & in_scope:
                    raise BindError(
                        f"the ON clause may only reference tables of its "
                        f"join group, not {attr.split('.', 1)[0]!r} "
                        "(comma-listed FROM items bind looser than JOIN)"
                    )
            selectivity = self._join_selectivity(join.condition)
            if join.kind == "right":
                # a RIGHT JOIN b  ≡  b LEFT JOIN a: same edge, swapped inputs.
                edge = JoinEdge(len(self.edges), OpKind.LEFT_OUTER, predicate, selectivity)
                self.edges.append(edge)
                tree = TreeNode(edge.edge_id, TreeLeaf(vertex), tree)
                continue
            op = {
                "inner": OpKind.INNER,
                "left": OpKind.LEFT_OUTER,
                "full": OpKind.FULL_OUTER,
            }[join.kind]
            edge = JoinEdge(len(self.edges), op, predicate, selectivity)
            self.edges.append(edge)
            tree = TreeNode(edge.edge_id, tree, TreeLeaf(vertex))
        return tree

    def _cross(self, left: Tree, right: Tree) -> Tree:
        edge = JoinEdge(len(self.edges), OpKind.INNER, Const(True), 1.0)
        self.edges.append(edge)
        self.cross_edge_ids.add(edge.edge_id)
        return TreeNode(edge.edge_id, left, right)

    # -- WHERE classification -----------------------------------------------
    def _classify_conjunct(
        self,
        conjunct: SqlExpr,
        tree: Tree,
        local_predicates: Dict[int, Tuple[Expr, float]],
        floating_conjuncts: List[SqlExpr],
    ) -> Tree:
        """Route one non-subquery WHERE conjunct; returns the (possibly
        predicate-merged) tree."""
        bound = self._bind_scalar(conjunct)
        vertices = sorted({self.scope.vertex_of_attr(a) for a in bound.attributes()})
        if not vertices:
            # A constant conjunct has no leaf to live on — pushing it to an
            # arbitrary vertex changes outer-join results.
            raise BindError(
                f"a WHERE conjunct must reference at least one table column: {conjunct!r}"
            )
        if len(vertices) == 1:
            selectivity = self._local_selectivity(conjunct)
            _append_local(local_predicates, vertices[0], bound, selectivity)
            return tree
        if len(vertices) == 2:
            merged = self._merge_into_cross_edge(tree, vertices, bound, conjunct)
            if merged is not None:
                return merged
            if isinstance(conjunct, Binary) and conjunct.op == "=":
                floating_conjuncts.append(conjunct)
                return tree
        raise BindError(
            "unsupported WHERE conjunct (must be single-table, a join "
            f"predicate over two tables, or a binary equijoin): {conjunct!r}"
        )

    def _merge_into_cross_edge(
        self, tree: Tree, vertices: List[int], bound: Expr, conjunct: SqlExpr
    ) -> Optional[Tree]:
        """AND *bound* into the TRUE cross edge separating *vertices*.

        ``FROM a, b WHERE a.x = b.x`` turns the placeholder cross product
        into a proper join edge; returns None when no cross edge splits the
        two vertices (the conjunct then falls back to a floating edge).
        """
        v1, v2 = (1 << vertices[0]), (1 << vertices[1])

        def walk(node: Tree) -> Optional[Tree]:
            if isinstance(node, TreeLeaf):
                return None
            left_set, right_set = tree_leaves(node.left), tree_leaves(node.right)
            both = v1 | v2
            if ((left_set | right_set) & both) != both:
                return None
            # Recurse first: merge at the lowest separating edge.
            for attr, child in (("left", node.left), ("right", node.right)):
                replaced = walk(child)
                if replaced is not None:
                    return TreeNode(
                        node.edge_id,
                        replaced if attr == "left" else node.left,
                        replaced if attr == "right" else node.right,
                    )
            separates = (left_set & v1 and right_set & v2) or (
                left_set & v2 and right_set & v1
            )
            if not separates or node.edge_id not in self.cross_edge_ids:
                return None
            old = self.edges[node.edge_id]
            predicate = (
                bound if isinstance(old.predicate, Const)
                else Logical("and", (old.predicate, bound))
            )
            selectivity = max(
                MIN_SELECTIVITY, old.selectivity * self._join_selectivity(conjunct)
            )
            self.edges[node.edge_id] = JoinEdge(
                old.edge_id, old.op, predicate, selectivity
            )
            return node

        return walk(tree)

    def _append_floating_edges(self, conjuncts: List[SqlExpr]) -> None:
        if not conjuncts:
            return
        if any(edge.op is not OpKind.INNER for edge in self.edges):
            raise BindError(
                "a WHERE equijoin that closes a cycle requires an "
                "all-inner-join query (outer joins, semijoins and antijoins "
                "pin predicates to their operators)"
            )
        for conjunct in conjuncts:
            self.edges.append(
                JoinEdge(
                    len(self.edges), OpKind.INNER,
                    self._bind_scalar(conjunct),
                    self._join_selectivity(conjunct),
                )
            )

    # -- subqueries → semijoin / antijoin edges ------------------------------
    def _bind_subquery_conjunct(
        self,
        conjunct: SqlExpr,
        tree: Tree,
        outer_vertex_count: int,
        local_predicates: Dict[int, Tuple[Expr, float]],
    ) -> Tree:
        if isinstance(conjunct, Exists):
            subquery, negated, needle = conjunct.subquery, conjunct.negated, None
        else:
            assert isinstance(conjunct, InSubquery)
            subquery, negated, needle = conjunct.subquery, conjunct.negated, conjunct.needle
            if subquery.select is None:
                raise BindError(
                    "an IN subquery must select exactly one plain column "
                    "(SELECT <column> FROM ...)"
                )

        # The IN needle binds against the *outer* scope as it stood — check
        # before the subquery's tables join the namespace.
        bound_needle = self._bind_scalar(needle) if needle is not None else None
        if bound_needle is not None:
            needle_vertices = {
                self.scope.vertex_of_attr(a) for a in bound_needle.attributes()
            }
            if any(v >= outer_vertex_count for v in needle_vertices):
                raise BindError(
                    "the left side of IN must reference outer tables only"
                )

        sub_start = len(self.scope.relations)
        for ref in subquery.tables:
            self._add_table(ref)
        for join in subquery.joins:
            self._add_table(join.table)
        sub_tree = self._build_tree(subquery.tables, subquery.joins)

        correlation: List[Expr] = []
        selectivity = 1.0
        if bound_needle is not None:
            selected = self._bind_scalar(subquery.select)
            sel_vertices = {
                self.scope.vertex_of_attr(a) for a in selected.attributes()
            }
            if any(v < sub_start for v in sel_vertices):
                raise BindError(
                    "the IN subquery's selected column must come from the "
                    "subquery's own tables"
                )
            correlation.append(BinOp("=", bound_needle, selected))
            # Estimate from the already-bound sides: re-resolving the raw
            # needle here would see the subquery's tables in scope and
            # mis-flag an unqualified needle column as ambiguous.
            selectivity *= self._bound_equality_selectivity(bound_needle, selected)

        if subquery.where is not None:
            for sub_conjunct in _conjuncts(subquery.where):
                if isinstance(sub_conjunct, (Exists, InSubquery)):
                    raise BindError(
                        "nested EXISTS/IN subqueries are not supported"
                    )
                bound = self._bind_scalar(sub_conjunct)
                vertices = sorted(
                    {self.scope.vertex_of_attr(a) for a in bound.attributes()}
                )
                if any(outer_vertex_count <= v < sub_start for v in vertices):
                    # References an earlier subquery's tables — out of scope.
                    raise BindError(
                        "a subquery predicate may only reference its own "
                        f"tables and the outer query's tables: {sub_conjunct!r}"
                    )
                inner = [v for v in vertices if v >= sub_start]
                outer = [v for v in vertices if v < sub_start]
                if outer and inner:
                    correlation.append(bound)
                    selectivity *= self._conjunct_selectivity(sub_conjunct)
                elif inner:
                    if len(inner) == 1:
                        _append_local(
                            local_predicates, inner[0], bound,
                            self._local_selectivity(sub_conjunct),
                        )
                    else:
                        merged = (
                            self._merge_into_cross_edge(
                                sub_tree, inner, bound, sub_conjunct
                            )
                            if len(inner) == 2 else None
                        )
                        if merged is None:
                            raise BindError(
                                "a multi-table subquery predicate must join "
                                "exactly two comma-listed subquery tables: "
                                f"{sub_conjunct!r}"
                            )
                        sub_tree = merged
                else:
                    raise BindError(
                        "a subquery predicate referencing only outer tables "
                        f"belongs in the outer WHERE clause: {sub_conjunct!r}"
                    )

        predicate: Expr = (
            Logical("and", tuple(correlation)) if len(correlation) > 1
            else correlation[0] if correlation else Const(True)
        )
        op = OpKind.LEFT_ANTI if negated else OpKind.LEFT_SEMI
        edge = JoinEdge(
            len(self.edges), op, predicate, max(MIN_SELECTIVITY, selectivity)
        )
        self.edges.append(edge)
        return TreeNode(edge.edge_id, tree, sub_tree)

    # -- scalar expressions ---------------------------------------------------
    def _bind_scalar(self, expr: SqlExpr) -> Expr:
        if isinstance(expr, ColumnRef):
            return Attr(self.scope.resolve(expr))
        if isinstance(expr, Literal):
            return Const(expr.value)
        if isinstance(expr, Binary):
            if expr.op in ("and", "or"):
                return Logical(
                    expr.op,
                    (self._bind_scalar(expr.left), self._bind_scalar(expr.right)),
                )
            return BinOp(
                expr.op, self._bind_scalar(expr.left), self._bind_scalar(expr.right)
            )
        if isinstance(expr, NotExpr):
            return Not(self._bind_scalar(expr.operand))
        if isinstance(expr, IsNullExpr):
            test = IsNull(self._bind_scalar(expr.operand))
            return Not(test) if expr.negated else test
        if isinstance(expr, (Exists, InSubquery)):
            raise BindError(
                "EXISTS/IN subqueries are only supported as top-level WHERE "
                "conjuncts (not under OR or inside expressions)"
            )
        if isinstance(expr, FuncCall):
            raise BindError("aggregate calls are only allowed in the SELECT list")
        raise AssertionError(f"unhandled SQL expression {expr!r}")

    # -- selectivities --------------------------------------------------------
    def _join_selectivity(self, condition: SqlExpr) -> float:
        """σ for a join condition: 1/max(d) per equijoin conjunct, 1/3 else."""
        selectivity = 1.0
        for conjunct in _conjuncts(condition):
            selectivity *= self._conjunct_selectivity(conjunct)
        return max(selectivity, MIN_SELECTIVITY)

    def _bound_equality_selectivity(self, left: Expr, right: Expr) -> float:
        """1/max(d) for an equality over two already-bound attributes."""
        if isinstance(left, Attr) and isinstance(right, Attr):
            d1 = self.scope.distinct_of(left.name)
            d2 = self.scope.distinct_of(right.name)
            return 1.0 / max(d1, d2)
        return RANGE_SELECTIVITY

    def _conjunct_selectivity(self, conjunct: SqlExpr) -> float:
        if (
            isinstance(conjunct, Binary)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            d1 = self.scope.distinct_of(self.scope.resolve(conjunct.left))
            d2 = self.scope.distinct_of(self.scope.resolve(conjunct.right))
            return 1.0 / max(d1, d2)
        return RANGE_SELECTIVITY

    def _local_selectivity(self, conjunct: SqlExpr) -> float:
        """Equality with a constant → 1/d; IS [NOT] NULL → 0.1/0.9;
        NOT p → 1 − σ(p); ranges and everything else → 1/3."""
        if isinstance(conjunct, IsNullExpr):
            base = NULL_SELECTIVITY
            return (1.0 - base) if conjunct.negated else base
        if isinstance(conjunct, NotExpr):
            return min(
                1.0, max(MIN_SELECTIVITY, 1.0 - self._local_selectivity(conjunct.operand))
            )
        if isinstance(conjunct, Binary) and conjunct.op == "=":
            column = None
            if isinstance(conjunct.left, ColumnRef) and isinstance(conjunct.right, Literal):
                column = conjunct.left
            elif isinstance(conjunct.right, ColumnRef) and isinstance(conjunct.left, Literal):
                column = conjunct.right
            if column is not None:
                return 1.0 / self.scope.distinct_of(self.scope.resolve(column))
        return RANGE_SELECTIVITY

    # -- aggregation -----------------------------------------------------------
    def _build_aggregates(self, stmt: SelectStmt, group_by: Tuple[str, ...]) -> AggVector:
        items: List[AggItem] = []
        counter = 0
        for item in stmt.items:
            if isinstance(item.expr, ColumnRef):
                attr = self.scope.resolve(item.expr)
                if attr not in group_by:
                    raise BindError(
                        f"column {attr} appears in SELECT but not in GROUP BY"
                    )
                continue
            if isinstance(item.expr, FuncCall):
                call = self._bind_aggregate(item.expr)
                name = item.alias or f"agg{counter}"
                counter += 1
                items.append(AggItem(name, call))
                continue
            raise BindError(f"unsupported SELECT item {item.expr!r}")
        if not items:
            raise BindError("the SELECT list needs at least one aggregate")
        return AggVector(items)

    def _bind_aggregate(self, call: FuncCall) -> AggCall:
        if call.name not in _AGG_KINDS:
            raise BindError(f"unknown aggregate function {call.name!r}")
        if call.argument is None:
            return AggCall(AggKind.COUNT_STAR)
        return AggCall(_AGG_KINDS[call.name], self._bind_scalar(call.argument), call.distinct)


# --------------------------------------------------------------------------

def _conjuncts(expr: SqlExpr):
    if isinstance(expr, Binary) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _append_local(
    local_predicates: Dict[int, Tuple[Expr, float]],
    vertex: int,
    bound: Expr,
    selectivity: float,
) -> None:
    existing = local_predicates.get(vertex)
    if existing is None:
        local_predicates[vertex] = (bound, selectivity)
    else:
        combined = Logical("and", (existing[0], bound))
        local_predicates[vertex] = (
            combined, max(MIN_SELECTIVITY, existing[1] * selectivity)
        )


