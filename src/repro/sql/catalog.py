"""Catalogs: table statistics the SQL binder resolves names against."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table (unqualified column names)."""

    name: str
    columns: Tuple[str, ...]
    cardinality: float
    distinct: Mapping[str, float] = field(default_factory=dict)
    keys: Tuple[FrozenSet[str], ...] = ()

    def distinct_count(self, column: str) -> float:
        return max(1.0, min(self.distinct.get(column, self.cardinality), self.cardinality))


@dataclass(frozen=True)
class StatsDelta:
    """One statistics drift event: a table's stats moved old → new.

    Emitted by :meth:`Catalog.update_stats` to delta subscribers so they
    can react *proportionally* — a plan cache marks affected entries
    stale for re-costing instead of dropping them wholesale (the
    stale-while-revalidate path), and a monitor can log how far the
    numbers moved.
    """

    relation: str
    old: TableStats
    new: TableStats

    @property
    def cardinality_ratio(self) -> float:
        """new/old row count (1.0 = unchanged; guards old == 0)."""
        if self.old.cardinality <= 0:
            return float("inf") if self.new.cardinality > 0 else 1.0
        return self.new.cardinality / self.old.cardinality

    def payload(self) -> dict:
        """A JSON-ready old → new summary (for /stats and logs)."""
        return {
            "relation": self.relation,
            "old_cardinality": self.old.cardinality,
            "new_cardinality": self.new.cardinality,
            "cardinality_ratio": self.cardinality_ratio,
            "distinct_changed": sorted(
                column
                for column in self.new.columns
                if self.old.distinct_count(column) != self.new.distinct_count(column)
            ),
        }


class Catalog:
    """A set of tables the binder can resolve.

    Registering (or re-registering with fresh statistics) a table notifies
    subscribers — the hook :class:`repro.service.cache.PlanCache` uses to
    evict plans whose statistics went stale.
    """

    def __init__(self):
        self._tables: Dict[str, TableStats] = {}
        self._listeners: List[Callable[[str], object]] = []
        self._delta_listeners: List[Callable[[StatsDelta], object]] = []

    def subscribe(self, callback: Callable[[str], object]) -> Callable[[], None]:
        """Call *callback(table_name)* whenever a table (re)registers.

        Returns an unsubscribe handle; calling it detaches the callback
        (idempotent), releasing the catalog's reference to it.
        """
        return self._attach(self._listeners, callback)

    def subscribe_deltas(
        self, callback: Callable[[StatsDelta], object]
    ) -> Callable[[], None]:
        """Call *callback(delta)* whenever :meth:`update_stats` drifts a
        table's statistics.  Deltas carry the old AND new stats, so a
        subscriber can react proportionally (mark-stale + re-cost) where
        the name-only :meth:`subscribe` channel can only invalidate.

        Returns an unsubscribe handle like :meth:`subscribe`.
        """
        return self._attach(self._delta_listeners, callback)

    @staticmethod
    def _attach(listeners: List, callback) -> Callable[[], None]:
        listeners.append(callback)
        detached = False

        def unsubscribe() -> None:
            # One-shot: a second call must not detach another subscription
            # that registered an equal callback.
            nonlocal detached
            if detached:
                return
            detached = True
            listeners.remove(callback)

        return unsubscribe

    def register(self, stats: TableStats) -> None:
        self._tables[stats.name.lower()] = stats
        for callback in list(self._listeners):
            try:
                callback(stats.name)
            except Exception:
                # A misbehaving subscriber must not fail table registration
                # or starve the remaining subscribers.
                continue

    def update_stats(self, table: str, stats: TableStats) -> StatsDelta:
        """Drift an existing table's statistics, emitting a typed delta.

        The successor to the re-register idiom for statistics refreshes:
        where :meth:`register` announces "this table changed, drop
        everything" to name subscribers, ``update_stats`` requires the
        table to already exist and tells delta subscribers exactly how
        its numbers moved (old → new), which is what lifecycle-aware
        caches need to mark entries stale and re-cost instead of
        cold-starting.  Name subscribers are deliberately NOT notified —
        wholesale invalidation is exactly what this path replaces.

        Raises ``KeyError`` for unknown tables and ``ValueError`` when
        *stats* names a different table.
        """
        old = self._tables.get(table.lower())
        if old is None:
            raise KeyError(f"unknown table {table!r} (register it first)")
        if stats.name.lower() != table.lower():
            raise ValueError(
                f"stats are for table {stats.name!r}, not {table!r}"
            )
        self._tables[table.lower()] = stats
        delta = StatsDelta(relation=old.name, old=old, new=stats)
        for callback in list(self._delta_listeners):
            try:
                callback(delta)
            except Exception:
                # A misbehaving subscriber must not abort the update or
                # starve the remaining subscribers.
                continue
        return delta

    def lookup(self, name: str) -> Optional[TableStats]:
        return self._tables.get(name.lower())

    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    @classmethod
    def from_tpch(cls, scale_factor: float = 1.0) -> "Catalog":
        """The eight TPC-H tables with SF-scaled statistics."""
        from repro.tpch.schema import TABLES
        from repro.tpch.stats import scaled_distinct

        catalog = cls()
        for table in TABLES.values():
            distinct = {
                column: scaled_distinct(table.name, column, scale_factor)
                for column in table.columns
            }
            catalog.register(
                TableStats(
                    name=table.name,
                    columns=table.columns,
                    cardinality=table.cardinality(scale_factor),
                    distinct=distinct,
                    keys=(frozenset(table.primary_key),),
                )
            )
        return catalog
