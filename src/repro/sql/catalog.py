"""Catalogs: table statistics the SQL binder resolves names against."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table (unqualified column names)."""

    name: str
    columns: Tuple[str, ...]
    cardinality: float
    distinct: Mapping[str, float] = field(default_factory=dict)
    keys: Tuple[FrozenSet[str], ...] = ()

    def distinct_count(self, column: str) -> float:
        return max(1.0, min(self.distinct.get(column, self.cardinality), self.cardinality))


class Catalog:
    """A set of tables the binder can resolve.

    Registering (or re-registering with fresh statistics) a table notifies
    subscribers — the hook :class:`repro.service.cache.PlanCache` uses to
    evict plans whose statistics went stale.
    """

    def __init__(self):
        self._tables: Dict[str, TableStats] = {}
        self._listeners: List[Callable[[str], object]] = []

    def subscribe(self, callback: Callable[[str], object]) -> None:
        """Call *callback(table_name)* whenever a table (re)registers."""
        self._listeners.append(callback)

    def register(self, stats: TableStats) -> None:
        self._tables[stats.name.lower()] = stats
        for callback in list(self._listeners):
            callback(stats.name)

    def lookup(self, name: str) -> Optional[TableStats]:
        return self._tables.get(name.lower())

    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    @classmethod
    def from_tpch(cls, scale_factor: float = 1.0) -> "Catalog":
        """The eight TPC-H tables with SF-scaled statistics."""
        from repro.tpch.schema import TABLES
        from repro.tpch.stats import scaled_distinct

        catalog = cls()
        for table in TABLES.values():
            distinct = {
                column: scaled_distinct(table.name, column, scale_factor)
                for column in table.columns
            }
            catalog.register(
                TableStats(
                    name=table.name,
                    columns=table.columns,
                    cardinality=table.cardinality(scale_factor),
                    distinct=distinct,
                    keys=(frozenset(table.primary_key),),
                )
            )
        return catalog
