"""Catalogs: table statistics the SQL binder resolves names against."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table (unqualified column names)."""

    name: str
    columns: Tuple[str, ...]
    cardinality: float
    distinct: Mapping[str, float] = field(default_factory=dict)
    keys: Tuple[FrozenSet[str], ...] = ()

    def distinct_count(self, column: str) -> float:
        return max(1.0, min(self.distinct.get(column, self.cardinality), self.cardinality))


class Catalog:
    """A set of tables the binder can resolve.

    Registering (or re-registering with fresh statistics) a table notifies
    subscribers — the hook :class:`repro.service.cache.PlanCache` uses to
    evict plans whose statistics went stale.
    """

    def __init__(self):
        self._tables: Dict[str, TableStats] = {}
        self._listeners: List[Callable[[str], object]] = []

    def subscribe(self, callback: Callable[[str], object]) -> Callable[[], None]:
        """Call *callback(table_name)* whenever a table (re)registers.

        Returns an unsubscribe handle; calling it detaches the callback
        (idempotent), releasing the catalog's reference to it.
        """
        self._listeners.append(callback)
        detached = False

        def unsubscribe() -> None:
            # One-shot: a second call must not detach another subscription
            # that registered an equal callback.
            nonlocal detached
            if detached:
                return
            detached = True
            self._listeners.remove(callback)

        return unsubscribe

    def register(self, stats: TableStats) -> None:
        self._tables[stats.name.lower()] = stats
        for callback in list(self._listeners):
            try:
                callback(stats.name)
            except Exception:
                # A misbehaving subscriber must not fail table registration
                # or starve the remaining subscribers.
                continue

    def lookup(self, name: str) -> Optional[TableStats]:
        return self._tables.get(name.lower())

    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    @classmethod
    def from_tpch(cls, scale_factor: float = 1.0) -> "Catalog":
        """The eight TPC-H tables with SF-scaled statistics."""
        from repro.tpch.schema import TABLES
        from repro.tpch.stats import scaled_distinct

        catalog = cls()
        for table in TABLES.values():
            distinct = {
                column: scaled_distinct(table.name, column, scale_factor)
                for column in table.columns
            }
            catalog.register(
                TableStats(
                    name=table.name,
                    columns=table.columns,
                    cardinality=table.cardinality(scale_factor),
                    distinct=distinct,
                    keys=(frozenset(table.primary_key),),
                )
            )
        return catalog
