"""A SQL frontend for the subset the paper's queries need.

``parse_query(sql, catalog)`` turns::

    SELECT ns.n_name, nc.n_name, count(*)
    FROM nation ns JOIN supplier s ON ns.n_nationkey = s.s_nationkey
         FULL JOIN ...
    WHERE ...
    GROUP BY ns.n_name, nc.n_name

into a :class:`~repro.query.spec.Query` ready for any plan generator.
Supported: INNER / LEFT [OUTER] / FULL [OUTER] JOIN with ON conditions,
conjunctive WHERE (base-table predicates and cycle-closing equijoins),
GROUP BY, aggregate select lists (sum/count/min/max/avg, DISTINCT,
arithmetic argument expressions) and aliases.
"""

from repro.sql.catalog import Catalog, TableStats
from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.parser import parse_select
from repro.sql.binder import BindError, bind, parse_query

__all__ = [
    "Catalog",
    "TableStats",
    "tokenize",
    "parse_select",
    "bind",
    "parse_query",
    "SqlSyntaxError",
    "BindError",
]
