"""A SQL frontend covering the paper's full operator algebra.

``parse_query(sql, catalog)`` turns::

    SELECT ns.n_name, count(*) AS cnt
    FROM nation ns JOIN supplier s ON ns.n_nationkey = s.s_nationkey
    WHERE EXISTS (SELECT * FROM customer c
                  WHERE c.c_nationkey = ns.n_nationkey)
    GROUP BY ns.n_name

into a :class:`~repro.query.spec.Query` ready for any plan generator.

Supported surface (see :mod:`repro.sql.binder` for the operator mapping):

* INNER / LEFT / RIGHT / FULL [OUTER] JOIN with ON conditions (RIGHT is
  normalized to a left outerjoin with swapped inputs), CROSS JOIN, and
  comma-separated FROM items (WHERE equijoins merge into the cross
  edges);
* ``[NOT] EXISTS (subquery)`` and ``x [NOT] IN (subquery)`` as top-level
  WHERE conjuncts — bound to semijoin / antijoin edges, with correlated
  subqueries over one or more tables;
* conjunctive WHERE over base-table predicates (``IS [NOT] NULL``,
  prefix ``NOT`` with SQL three-valued semantics, comparisons) and
  cycle-closing equijoins;
* GROUP BY and aggregate select lists (sum/count/min/max/avg, DISTINCT,
  arithmetic argument expressions) with aliases.

Reserved-but-unimplemented keywords (BETWEEN, ORDER, HAVING, LIMIT, ...)
raise ``'X' is reserved but not yet supported`` naming the offset.
"""

from repro.sql.catalog import Catalog, TableStats
from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.parser import parse_select
from repro.sql.binder import BindError, bind, parse_query

__all__ = [
    "Catalog",
    "TableStats",
    "tokenize",
    "parse_select",
    "bind",
    "parse_query",
    "SqlSyntaxError",
    "BindError",
]
