"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class SqlSyntaxError(ValueError):
    """Raised for malformed SQL text."""


KEYWORDS = {
    "select", "from", "where", "group", "by", "join", "inner", "left",
    "right", "full", "outer", "cross", "on", "and", "or", "not", "as",
    "distinct", "is", "null", "exists", "in", "between", "asc", "desc",
    "order", "having", "limit", "offset", "union", "intersect", "except",
}

#: Reserved keywords the parser does not implement yet.  Kept here (next to
#: KEYWORDS) so reserving a new word forces a decision: implement it or let
#: the parser raise the honest "reserved but not yet supported" error.
UNSUPPORTED_KEYWORDS = {
    "between", "asc", "desc", "order", "having", "limit", "offset",
    "union", "intersect", "except",
}

SYMBOLS = ["<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+", "-", "/", "."]


@dataclass(frozen=True)
class Token:
    """One lexical token: kind ∈ {ident, keyword, number, string, symbol, eof}."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; raises :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise SqlSyntaxError(f"unterminated string literal at offset {i}")
            tokens.append(Token("string", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            tokens.append(Token(kind, word.lower() if kind == "keyword" else word, i))
            i = j
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("symbol", symbol, i))
                i += len(symbol)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token("eof", "", n))
    return tokens
