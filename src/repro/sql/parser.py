"""Recursive-descent parser for the supported SQL subset.

Grammar (roughly)::

    select    := SELECT item (',' item)* FROM table_ref (',' table_ref)*
                 join* [WHERE cond] [GROUP BY column (',' column)*]
    item      := expr [[AS] ident]
    join      := (JOIN | INNER JOIN | LEFT [OUTER] JOIN
                  | RIGHT [OUTER] JOIN | FULL [OUTER] JOIN)
                 table_ref ON cond
               | CROSS JOIN table_ref
    table_ref := ident [[AS] ident]
    cond      := disjunction of conjunctions of predicates
    predicate := '(' cond ')'
               | NOT predicate
               | [NOT] EXISTS '(' subquery ')'
               | expr (comparison expr
                       | IS [NOT] NULL
                       | [NOT] IN '(' subquery ')')
    subquery  := SELECT ('*' | expr) FROM table_ref (',' table_ref)*
                 join* [WHERE cond]
    expr      := arithmetic over columns, literals and aggregate calls

Comma-separated FROM items are cross joins; the binder turns them into
TRUE-predicate inner-join edges and later merges WHERE equijoins into
them.  JOIN binds tighter than the comma (SQL precedence): the join
clauses extend the last FROM item, and an ON clause may only reference
tables of its join group.  ``RIGHT [OUTER] JOIN`` survives parsing as ``kind="right"`` — the
binder normalizes it to a left outerjoin with swapped inputs.  EXISTS /
IN subqueries may reference outer tables (correlation); the binder turns
them into semijoin / antijoin edges.

Reserved keywords without an implementation (``BETWEEN``, ``ORDER``,
``HAVING``, ``LIMIT``, ...) raise ``'X' is reserved but not yet
supported`` instead of a misleading ``expected 'eof'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.sql.lexer import UNSUPPORTED_KEYWORDS, SqlSyntaxError, Token, tokenize


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnRef:
    table: Optional[str]
    column: str


@dataclass(frozen=True)
class Literal:
    value: Union[int, float, str]


@dataclass(frozen=True)
class FuncCall:
    name: str  # sum | count | min | max | avg
    argument: Optional["SqlExpr"]  # None => count(*)
    distinct: bool = False


@dataclass(frozen=True)
class Binary:
    op: str
    left: "SqlExpr"
    right: "SqlExpr"


@dataclass(frozen=True)
class NotExpr:
    """Prefix ``NOT`` over a predicate (SQL three-valued negation)."""

    operand: "SqlExpr"


@dataclass(frozen=True)
class IsNullExpr:
    """``expr IS [NOT] NULL`` — always two-valued."""

    operand: "SqlExpr"
    negated: bool = False


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: Optional[str]


@dataclass(frozen=True)
class Subquery:
    """The FROM/WHERE core of an EXISTS / IN subquery (no grouping).

    ``select`` is the single selected column for IN subqueries; EXISTS
    subqueries select ``*`` or an arbitrary expression, recorded as None.
    """

    select: Optional[ColumnRef]
    tables: Tuple[TableRef, ...]
    joins: Tuple["JoinClause", ...]
    where: Optional["SqlExpr"]


@dataclass(frozen=True)
class Exists:
    """``[NOT] EXISTS (SELECT ... )`` — a semijoin (antijoin) predicate."""

    subquery: Subquery
    negated: bool = False


@dataclass(frozen=True)
class InSubquery:
    """``expr [NOT] IN (SELECT col ... )`` — semijoin (antijoin) on equality."""

    needle: "SqlExpr"
    subquery: Subquery
    negated: bool = False


SqlExpr = Union[
    ColumnRef, Literal, FuncCall, Binary, NotExpr, IsNullExpr, Exists, InSubquery
]

AGGREGATE_NAMES = {"sum", "count", "min", "max", "avg"}


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: Optional[str]


@dataclass(frozen=True)
class JoinClause:
    kind: str  # inner | left | right | full | cross
    table: TableRef
    condition: Optional[SqlExpr]  # None only for cross joins


@dataclass(frozen=True)
class SelectStmt:
    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]  # comma-separated FROM items (>= 1)
    joins: Tuple[JoinClause, ...]
    where: Optional[SqlExpr]
    group_by: Tuple[ColumnRef, ...]

    @property
    def base(self) -> TableRef:
        """The first FROM item (the historical single-table field)."""
        return self.tables[0]


# --------------------------------------------------------------------------
# parser
# --------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers ----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            self._raise_reserved_if_unsupported(token)
            wanted = value or kind
            raise SqlSyntaxError(
                f"expected {wanted!r}, found {token.value or token.kind!r} at offset {token.position}"
            )
        return self.advance()

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def _raise_reserved_if_unsupported(self, token: Token) -> None:
        if token.kind == "keyword" and token.value in UNSUPPORTED_KEYWORDS:
            raise SqlSyntaxError(
                f"{token.value!r} is reserved but not yet supported "
                f"at offset {token.position}"
            )

    # -- grammar ------------------------------------------------------------
    def parse_select(self) -> SelectStmt:
        self.expect("keyword", "select")
        items = [self.parse_item()]
        while self.accept("symbol", ","):
            items.append(self.parse_item())
        self.expect("keyword", "from")
        tables, joins, where = self.parse_from_where()
        group_by: List[ColumnRef] = []
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            group_by.append(self.parse_column_ref())
            while self.accept("symbol", ","):
                group_by.append(self.parse_column_ref())
        self.expect("eof")
        return SelectStmt(tuple(items), tables, joins, where, tuple(group_by))

    def parse_from_where(
        self,
    ) -> Tuple[Tuple[TableRef, ...], Tuple[JoinClause, ...], Optional[SqlExpr]]:
        """``table_ref (',' table_ref)* join* [WHERE cond]`` — shared by the
        top-level statement and subqueries."""
        tables = [self.parse_table_ref()]
        while self.accept("symbol", ","):
            tables.append(self.parse_table_ref())
        joins: List[JoinClause] = []
        while True:
            join = self.try_parse_join()
            if join is None:
                break
            joins.append(join)
        where = None
        if self.accept("keyword", "where"):
            where = self.parse_condition()
        return tuple(tables), tuple(joins), where

    def parse_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("ident").value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def parse_table_ref(self) -> TableRef:
        table = self.expect("ident").value
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("ident").value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return TableRef(table, alias)

    def try_parse_join(self) -> Optional[JoinClause]:
        kind = None
        if self.accept("keyword", "join"):
            kind = "inner"
        elif self.accept("keyword", "inner"):
            self.expect("keyword", "join")
            kind = "inner"
        elif self.accept("keyword", "left"):
            self.accept("keyword", "outer")
            self.expect("keyword", "join")
            kind = "left"
        elif self.accept("keyword", "right"):
            self.accept("keyword", "outer")
            self.expect("keyword", "join")
            kind = "right"
        elif self.accept("keyword", "full"):
            self.accept("keyword", "outer")
            self.expect("keyword", "join")
            kind = "full"
        elif self.accept("keyword", "cross"):
            self.expect("keyword", "join")
            return JoinClause("cross", self.parse_table_ref(), None)
        if kind is None:
            return None
        table = self.parse_table_ref()
        self.expect("keyword", "on")
        condition = self.parse_condition()
        return JoinClause(kind, table, condition)

    # conditions: or > and > predicate
    def parse_condition(self) -> SqlExpr:
        left = self.parse_conjunction()
        while self.accept("keyword", "or"):
            right = self.parse_conjunction()
            left = Binary("or", left, right)
        return left

    def parse_conjunction(self) -> SqlExpr:
        left = self.parse_predicate()
        while self.accept("keyword", "and"):
            right = self.parse_predicate()
            left = Binary("and", left, right)
        return left

    def parse_predicate(self) -> SqlExpr:
        if self.accept("keyword", "not"):
            operand = self.parse_predicate()
            # NOT EXISTS / NOT IN fold into the quantified predicate so the
            # binder sees one antijoin construct, not a negation wrapper.
            if isinstance(operand, Exists):
                return Exists(operand.subquery, negated=not operand.negated)
            if isinstance(operand, InSubquery):
                return InSubquery(
                    operand.needle, operand.subquery, negated=not operand.negated
                )
            return NotExpr(operand)
        if self.peek().kind == "keyword" and self.peek().value == "exists":
            self.advance()
            return Exists(self.parse_subquery("EXISTS"), negated=False)
        if self.accept("symbol", "("):
            inner = self.parse_condition()
            self.expect("symbol", ")")
            return inner
        left = self.parse_expr()
        token = self.peek()
        if token.kind == "symbol" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            right = self.parse_expr()
            return Binary(op, left, right)
        if token.kind == "keyword" and token.value == "is":
            self.advance()
            negated = bool(self.accept("keyword", "not"))
            self.expect("keyword", "null")
            return IsNullExpr(left, negated=negated)
        if token.kind == "keyword" and token.value in ("in", "not"):
            negated = bool(self.accept("keyword", "not"))
            self.expect("keyword", "in")
            return InSubquery(left, self.parse_subquery("IN"), negated=negated)
        self._raise_reserved_if_unsupported(token)
        raise SqlSyntaxError(
            "expected a comparison operator, IS [NOT] NULL or [NOT] IN after "
            f"expression at offset {token.position}"
        )

    def parse_subquery(self, construct: str) -> Subquery:
        """``'(' SELECT ('*' | expr) FROM ... [WHERE ...] ')'``.

        *construct* names the enclosing predicate (EXISTS / IN) so errors
        locate the right construct.
        """
        opener = self.peek()
        if not self.accept("symbol", "("):
            raise SqlSyntaxError(
                f"{construct} requires a parenthesised subquery "
                f"at offset {opener.position}"
            )
        keyword = self.peek()
        if not self.accept("keyword", "select"):
            raise SqlSyntaxError(
                f"{construct} requires a subquery starting with SELECT "
                f"(value lists are not supported) at offset {keyword.position}"
            )
        select: Optional[ColumnRef] = None
        if not self.accept("symbol", "*"):
            item = self.parse_expr()
            if isinstance(item, ColumnRef):
                select = item
        self.expect("keyword", "from")
        tables, joins, where = self.parse_from_where()
        closer = self.peek()
        if closer.kind == "keyword" and closer.value == "group":
            raise SqlSyntaxError(
                f"GROUP BY is not supported inside {construct} subqueries "
                f"at offset {closer.position}"
            )
        self.expect("symbol", ")")
        return Subquery(select, tables, joins, where)

    # arithmetic expressions: additive > multiplicative > primary
    def parse_expr(self) -> SqlExpr:
        left = self.parse_term()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("+", "-"):
                op = self.advance().value
                left = Binary(op, left, self.parse_term())
            else:
                return left

    def parse_term(self) -> SqlExpr:
        left = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("*", "/"):
                op = self.advance().value
                left = Binary(op, left, self.parse_primary())
            else:
                return left

    def parse_primary(self) -> SqlExpr:
        token = self.peek()
        if token.kind == "symbol" and token.value == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("symbol", ")")
            return inner
        if token.kind == "number":
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "ident":
            if token.value.lower() in AGGREGATE_NAMES and self._lookahead_is("symbol", "("):
                return self.parse_aggregate()
            return self.parse_column_ref()
        self._raise_reserved_if_unsupported(token)
        raise SqlSyntaxError(f"unexpected token {token.value!r} at offset {token.position}")

    def parse_aggregate(self) -> FuncCall:
        name = self.expect("ident").value.lower()
        self.expect("symbol", "(")
        if self.accept("symbol", "*"):
            self.expect("symbol", ")")
            if name != "count":
                raise SqlSyntaxError(f"{name}(*) is not valid SQL")
            return FuncCall("count", None)
        distinct = bool(self.accept("keyword", "distinct"))
        argument = self.parse_expr()
        self.expect("symbol", ")")
        return FuncCall(name, argument, distinct)

    def parse_column_ref(self) -> ColumnRef:
        first = self.expect("ident").value
        if self.accept("symbol", "."):
            second = self.expect("ident").value
            return ColumnRef(first, second)
        return ColumnRef(None, first)

    def _lookahead_is(self, kind: str, value: str) -> bool:
        nxt = self.tokens[self.index + 1]
        return nxt.kind == kind and nxt.value == value


def parse_select(sql: str) -> SelectStmt:
    """Parse *sql* into a :class:`SelectStmt` AST."""
    return _Parser(tokenize(sql)).parse_select()
