"""Recursive-descent parser for the supported SQL subset.

Grammar (roughly)::

    select    := SELECT item (',' item)* FROM table_ref join* [WHERE cond]
                 [GROUP BY column (',' column)*]
    item      := expr [[AS] ident]
    join      := (JOIN | INNER JOIN | LEFT [OUTER] JOIN | FULL [OUTER] JOIN)
                 table_ref ON cond
    table_ref := ident [[AS] ident]
    cond      := disjunction of conjunctions of comparisons
    expr      := arithmetic over columns, literals and aggregate calls
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.sql.lexer import SqlSyntaxError, Token, tokenize


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnRef:
    table: Optional[str]
    column: str


@dataclass(frozen=True)
class Literal:
    value: Union[int, float, str]


@dataclass(frozen=True)
class FuncCall:
    name: str  # sum | count | min | max | avg
    argument: Optional["SqlExpr"]  # None => count(*)
    distinct: bool = False


@dataclass(frozen=True)
class Binary:
    op: str
    left: "SqlExpr"
    right: "SqlExpr"


SqlExpr = Union[ColumnRef, Literal, FuncCall, Binary]

AGGREGATE_NAMES = {"sum", "count", "min", "max", "avg"}


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: Optional[str]


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: Optional[str]


@dataclass(frozen=True)
class JoinClause:
    kind: str  # inner | left | full
    table: TableRef
    condition: SqlExpr


@dataclass(frozen=True)
class SelectStmt:
    items: Tuple[SelectItem, ...]
    base: TableRef
    joins: Tuple[JoinClause, ...]
    where: Optional[SqlExpr]
    group_by: Tuple[ColumnRef, ...]


# --------------------------------------------------------------------------
# parser
# --------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers ----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value or kind
            raise SqlSyntaxError(
                f"expected {wanted!r}, found {token.value or token.kind!r} at offset {token.position}"
            )
        return self.advance()

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    # -- grammar ------------------------------------------------------------
    def parse_select(self) -> SelectStmt:
        self.expect("keyword", "select")
        items = [self.parse_item()]
        while self.accept("symbol", ","):
            items.append(self.parse_item())
        self.expect("keyword", "from")
        base = self.parse_table_ref()
        joins: List[JoinClause] = []
        while True:
            join = self.try_parse_join()
            if join is None:
                break
            joins.append(join)
        where = None
        if self.accept("keyword", "where"):
            where = self.parse_condition()
        group_by: List[ColumnRef] = []
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            group_by.append(self.parse_column_ref())
            while self.accept("symbol", ","):
                group_by.append(self.parse_column_ref())
        self.expect("eof")
        return SelectStmt(tuple(items), base, tuple(joins), where, tuple(group_by))

    def parse_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("ident").value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def parse_table_ref(self) -> TableRef:
        table = self.expect("ident").value
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("ident").value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return TableRef(table, alias)

    def try_parse_join(self) -> Optional[JoinClause]:
        kind = None
        if self.accept("keyword", "join"):
            kind = "inner"
        elif self.accept("keyword", "inner"):
            self.expect("keyword", "join")
            kind = "inner"
        elif self.accept("keyword", "left"):
            self.accept("keyword", "outer")
            self.expect("keyword", "join")
            kind = "left"
        elif self.accept("keyword", "full"):
            self.accept("keyword", "outer")
            self.expect("keyword", "join")
            kind = "full"
        if kind is None:
            return None
        table = self.parse_table_ref()
        self.expect("keyword", "on")
        condition = self.parse_condition()
        return JoinClause(kind, table, condition)

    # conditions: or > and > comparison
    def parse_condition(self) -> SqlExpr:
        left = self.parse_conjunction()
        while self.accept("keyword", "or"):
            right = self.parse_conjunction()
            left = Binary("or", left, right)
        return left

    def parse_conjunction(self) -> SqlExpr:
        left = self.parse_comparison()
        while self.accept("keyword", "and"):
            right = self.parse_comparison()
            left = Binary("and", left, right)
        return left

    def parse_comparison(self) -> SqlExpr:
        if self.accept("symbol", "("):
            inner = self.parse_condition()
            self.expect("symbol", ")")
            return inner
        left = self.parse_expr()
        token = self.peek()
        if token.kind == "symbol" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            right = self.parse_expr()
            return Binary(op, left, right)
        raise SqlSyntaxError(f"expected comparison operator at offset {token.position}")

    # arithmetic expressions: additive > multiplicative > primary
    def parse_expr(self) -> SqlExpr:
        left = self.parse_term()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("+", "-"):
                op = self.advance().value
                left = Binary(op, left, self.parse_term())
            else:
                return left

    def parse_term(self) -> SqlExpr:
        left = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("*", "/"):
                op = self.advance().value
                left = Binary(op, left, self.parse_primary())
            else:
                return left

    def parse_primary(self) -> SqlExpr:
        token = self.peek()
        if token.kind == "symbol" and token.value == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("symbol", ")")
            return inner
        if token.kind == "number":
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "ident":
            if token.value.lower() in AGGREGATE_NAMES and self._lookahead_is("symbol", "("):
                return self.parse_aggregate()
            return self.parse_column_ref()
        raise SqlSyntaxError(f"unexpected token {token.value!r} at offset {token.position}")

    def parse_aggregate(self) -> FuncCall:
        name = self.expect("ident").value.lower()
        self.expect("symbol", "(")
        if self.accept("symbol", "*"):
            self.expect("symbol", ")")
            if name != "count":
                raise SqlSyntaxError(f"{name}(*) is not valid SQL")
            return FuncCall("count", None)
        distinct = bool(self.accept("keyword", "distinct"))
        argument = self.parse_expr()
        self.expect("symbol", ")")
        return FuncCall(name, argument, distinct)

    def parse_column_ref(self) -> ColumnRef:
        first = self.expect("ident").value
        if self.accept("symbol", "."):
            second = self.expect("ident").value
            return ColumnRef(first, second)
        return ColumnRef(None, first)

    def _lookahead_is(self, kind: str, value: str) -> bool:
        nxt = self.tokens[self.index + 1]
        return nxt.kind == kind and nxt.value == value


def parse_select(sql: str) -> SelectStmt:
    """Parse *sql* into a :class:`SelectStmt` AST."""
    return _Parser(tokenize(sql)).parse_select()
