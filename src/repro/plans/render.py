"""ASCII rendering of plan trees (EXPLAIN-style output)."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.plans.nodes import PlanNode

Annotator = Optional[Callable[[PlanNode], str]]


def render_plan(node: PlanNode, annotate: Annotator = None) -> str:
    """Render *node* as an indented tree.

    ``annotate`` may be a callable ``PlanNode -> str`` appending extra text
    (cost, cardinality, ...) to each line.
    """
    lines: List[str] = []
    _render(node, "", "", lines, annotate)
    return "\n".join(lines)


def _render(
    node: PlanNode, own_prefix: str, child_prefix: str, lines: List[str], annotate: Annotator
) -> None:
    extra = f"  [{annotate(node)}]" if annotate else ""
    lines.append(f"{own_prefix}{node.label()}{extra}")
    children = node.children()
    for index, child in enumerate(children):
        last = index == len(children) - 1
        connector = "└─ " if last else "├─ "
        continuation = "   " if last else "│  "
        _render(child, child_prefix + connector, child_prefix + continuation, lines, annotate)
