"""Plan node definitions.

A plan node is a logical-algebra operator with everything needed to execute
it.  The node set mirrors the paper's algebra (Fig. 1 + Γ + χ + Π):

* :class:`ScanNode` — base relation access path,
* :class:`SelectNode` — σ (used for base-table predicates of TPC-H queries),
* :class:`JoinNode` — the whole join family, including outerjoin default
  vectors and the groupjoin's aggregation vector,
* :class:`GroupByNode` — Γ with an optional post-projection list (avg
  reconstruction at the top grouping),
* :class:`MapNode` / :class:`ProjectNode` — χ and Π (top-grouping
  elimination, Eqv. 42).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.aggregates.vector import AggVector
from repro.algebra.expressions import Expr
from repro.algebra.values import SqlValue
from repro.rewrites.pushdown import OpKind


class PlanNode:
    """Base class; ``attributes`` is the node's output schema."""

    attributes: Tuple[str, ...]

    def children(self) -> Tuple["PlanNode", ...]:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Scan of a base relation."""

    relation: str
    attributes: Tuple[str, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return ()

    def label(self) -> str:
        return self.relation


@dataclass(frozen=True)
class SelectNode(PlanNode):
    """σ_p — base-table selections (applied before join ordering)."""

    predicate: Expr
    child: PlanNode
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", self.child.attributes)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"σ[{self.predicate!r}]"


_JOIN_SYMBOLS = {
    OpKind.INNER: "⋈",
    OpKind.LEFT_OUTER: "⟕",
    OpKind.FULL_OUTER: "⟗",
    OpKind.LEFT_SEMI: "⋉",
    OpKind.LEFT_ANTI: "▷",
    OpKind.GROUPJOIN: "▷◁",
}


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """Any operator of the join family (Fig. 1)."""

    op: OpKind
    predicate: Expr
    left: PlanNode
    right: PlanNode
    left_defaults: Tuple[Tuple[str, SqlValue], ...] = ()
    right_defaults: Tuple[Tuple[str, SqlValue], ...] = ()
    groupjoin_vector: Optional[AggVector] = None
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.op is OpKind.GROUPJOIN:
            if self.groupjoin_vector is None:
                raise ValueError("groupjoin node needs an aggregation vector")
            attrs = self.left.attributes + self.groupjoin_vector.names()
        elif self.op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI):
            attrs = self.left.attributes
        else:
            attrs = self.left.attributes + self.right.attributes
        object.__setattr__(self, "attributes", attrs)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        symbol = _JOIN_SYMBOLS[self.op]
        defaults = ""
        if self.left_defaults or self.right_defaults:
            defaults = f" D1={dict(self.left_defaults)} D2={dict(self.right_defaults)}"
        return f"{symbol}[{self.predicate!r}]{defaults}"


@dataclass(frozen=True)
class GroupByNode(PlanNode):
    """Γ_{G; F} with optional scalar post-projections (avg rebuild)."""

    group_attrs: Tuple[str, ...]
    vector: AggVector
    child: PlanNode
    post: Tuple[Tuple[str, Expr], ...] = ()
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.post:
            attrs = self.group_attrs + tuple(name for name, _ in self.post)
        else:
            attrs = self.group_attrs + self.vector.names()
        object.__setattr__(self, "attributes", attrs)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Γ[{','.join(self.group_attrs)}; {self.vector!r}]"


@dataclass(frozen=True)
class MapNode(PlanNode):
    """χ — extend rows by computed attributes."""

    extensions: Tuple[Tuple[str, Expr], ...]
    child: PlanNode
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        attrs = self.child.attributes + tuple(name for name, _ in self.extensions)
        object.__setattr__(self, "attributes", attrs)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"χ[{', '.join(name for name, _ in self.extensions)}]"


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Π — duplicate-preserving projection."""

    attributes: Tuple[str, ...]
    child: PlanNode

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Π[{', '.join(self.attributes)}]"


def count_groupings(node: PlanNode) -> int:
    """Number of Γ nodes in a plan (used by tests and statistics)."""
    total = 1 if isinstance(node, GroupByNode) else 0
    return total + sum(count_groupings(child) for child in node.children())


def direct_grouping_children(node: PlanNode) -> int:
    """The paper's *Eagerness* (Sec. 4.5): Γ nodes directly below a join."""
    if not isinstance(node, JoinNode):
        return 0
    return sum(1 for child in (node.left, node.right) if isinstance(child, GroupByNode))
