"""Executable plan trees shared by the optimizer and the interpreter.

Optimizer output *is* an executable algebra tree — the repository's
strongest correctness check evaluates optimized plans against canonical
trees on real data (see ``tests/optimizer/test_plan_correctness.py``).
"""

from repro.plans.nodes import (
    GroupByNode,
    JoinNode,
    MapNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.plans.render import render_plan

__all__ = [
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "JoinNode",
    "GroupByNode",
    "MapNode",
    "ProjectNode",
    "render_plan",
]
