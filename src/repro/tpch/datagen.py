"""Deterministic micro-scale TPC-H data generator.

The optimizer works with SF-1 *statistics*; executing the paper's queries
only needs data that exercises every code path (matches, misses, NULL
padding, grouping collisions).  The generator therefore produces tiny
tables — with referentially plausible foreign keys and honoured primary
keys — deterministically from a seed.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Mapping, Optional

from repro.algebra.relation import Relation
from repro.algebra.rows import Row
from repro.tpch.schema import TABLES
from repro.tpch.stats import ORDERDATE_DAYS, SHIPDATE_DAYS

#: micro-scale row counts (large enough for joins to hit *and* miss)
MICRO_ROWS = {
    "region": 3,
    "nation": 6,
    "supplier": 8,
    "customer": 12,
    "part": 8,
    "partsupp": 12,
    "orders": 18,
    "lineitem": 30,
}

_REGION_NAMES = ["ASIA", "AMERICA", "EUROPE"]
_SEGMENTS = ["BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"]
_FLAGS = ["R", "A", "N"]


def micro_table(table: str, alias: Optional[str] = None, seed: int = 0) -> Relation:
    """Generate one micro table; attributes are ``alias.column``-qualified."""
    prefix = alias or table
    rng = random.Random((hash(table) ^ seed) & 0xFFFFFFFF)
    n = MICRO_ROWS[table]
    rows = [
        Row({f"{prefix}.{k}": v for k, v in _row(table, i, rng).items()})
        for i in range(n)
    ]
    attributes = tuple(rows[0].keys())
    return Relation(attributes, rows)


def _row(
    table: str,
    i: int,
    rng: random.Random,
    counts: Mapping[str, int] = MICRO_ROWS,
) -> Dict[str, object]:
    """Row *i* of *table*; foreign-key ranges come from *counts*."""
    if table == "region":
        return {"r_regionkey": i, "r_name": _REGION_NAMES[i % len(_REGION_NAMES)]}
    if table == "nation":
        return {
            "n_nationkey": i,
            "n_name": f"NATION#{i}",
            "n_regionkey": rng.randrange(counts["region"]),
        }
    if table == "supplier":
        return {
            "s_suppkey": i,
            "s_name": f"Supplier#{i}",
            "s_nationkey": rng.randrange(counts["nation"]),
            "s_acctbal": rng.randint(-100, 1000),
        }
    if table == "customer":
        return {
            "c_custkey": i,
            "c_name": f"Customer#{i}",
            "c_address": f"Addr#{i}",
            "c_nationkey": rng.randrange(counts["nation"]),
            "c_phone": f"13-{i:03d}",
            "c_acctbal": rng.randint(-100, 1000),
            "c_mktsegment": _SEGMENTS[rng.randrange(len(_SEGMENTS))],
            "c_comment": f"comment {i}",
        }
    if table == "part":
        return {
            "p_partkey": i,
            "p_name": f"Part#{i}",
            "p_type": f"TYPE{i % 3}",
            "p_size": rng.randint(1, 50),
        }
    if table == "partsupp":
        return {
            # (partkey, suppkey) pairs stay unique: the primary key holds.
            "ps_partkey": i % counts["part"],
            "ps_suppkey": i // counts["part"],
            "ps_availqty": rng.randint(0, 999),
            "ps_supplycost": rng.randint(1, 100),
        }
    if table == "orders":
        return {
            "o_orderkey": i,
            "o_custkey": rng.randrange(counts["customer"] + 4),  # some dangle
            "o_orderstatus": rng.choice(["O", "F", "P"]),
            "o_totalprice": rng.randint(100, 10_000),
            "o_orderdate": rng.randrange(ORDERDATE_DAYS),
            "o_shippriority": 0,
        }
    if table == "lineitem":
        return {
            "l_orderkey": rng.randrange(counts["orders"] + 4),  # some dangle
            "l_partkey": rng.randrange(counts["part"]),
            "l_suppkey": rng.randrange(counts["supplier"] + 2),
            "l_linenumber": i,
            "l_quantity": rng.randint(1, 50),
            "l_extendedprice": rng.randint(100, 5_000),
            "l_discount": rng.randint(0, 10) / 100.0,
            "l_returnflag": _FLAGS[rng.randrange(len(_FLAGS))],
            "l_shipdate": rng.randrange(SHIPDATE_DAYS),
        }
    raise KeyError(f"unknown TPC-H table {table!r}")


# ---------------------------------------------------------------------------
# scaled generation (SF 0.01 – 1) into columnar tables
# ---------------------------------------------------------------------------

def scaled_counts(scale_factor: float) -> Dict[str, int]:
    """TPC-H row counts at *scale_factor* (region/nation do not scale)."""
    if not 0 < scale_factor <= 1:
        raise ValueError(f"scale_factor must be in (0, 1], got {scale_factor}")
    return {
        name: max(1, int(round(spec.cardinality(scale_factor))))
        for name, spec in TABLES.items()
    }


def scaled_table(table: str, scale_factor: float, seed: int = 0):
    """One TPC-H table at *scale_factor* as a bare-column ``ColumnTable``.

    Unlike :func:`micro_table`, the rng seed is derived from a stable
    CRC of the table name, so the data is identical across processes
    (benchmark baselines stay comparable between runs).
    """
    from repro.data.tables import ColumnTable

    counts = scaled_counts(scale_factor)
    rng = random.Random((zlib.crc32(table.encode()) ^ seed) & 0xFFFFFFFF)
    columns: Dict[str, List[object]] = {col: [] for col in TABLES[table].columns}
    for i in range(counts[table]):
        for key, value in _row(table, i, rng, counts).items():
            columns[key].append(value)
    return ColumnTable(table, columns)


def scaled_dataset(scale_factor: float, seed: int = 0):
    """All eight TPC-H tables at *scale_factor* as a ``Dataset``."""
    from repro.data.tables import Dataset

    tables = {name: scaled_table(name, scale_factor, seed) for name in TABLES}
    return Dataset(tables, name=f"tpch-sf{scale_factor:g}")


def table_keys() -> Dict[str, tuple]:
    """Primary keys per table, as frozensets for ``TableStats.keys``."""
    return {name: (frozenset(spec.primary_key),) for name, spec in TABLES.items()}
