"""The TPC-H schema (tables, columns, primary keys, base cardinalities).

Column subsets cover everything the paper's four queries touch plus the
usual identifiers; cardinalities follow the TPC-H specification as a
function of the scale factor SF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class TpchTable:
    """One TPC-H table: columns, primary key and SF-scaled cardinality."""

    name: str
    columns: Tuple[str, ...]
    primary_key: Tuple[str, ...]
    #: rows at scale factor 1
    rows_sf1: float
    #: whether the table scales with SF (region/nation do not)
    scales: bool = True

    def cardinality(self, scale_factor: float = 1.0) -> float:
        return self.rows_sf1 * (scale_factor if self.scales else 1.0)


TABLES: Dict[str, TpchTable] = {
    table.name: table
    for table in [
        TpchTable(
            "region",
            ("r_regionkey", "r_name"),
            ("r_regionkey",),
            5,
            scales=False,
        ),
        TpchTable(
            "nation",
            ("n_nationkey", "n_name", "n_regionkey"),
            ("n_nationkey",),
            25,
            scales=False,
        ),
        TpchTable(
            "supplier",
            ("s_suppkey", "s_name", "s_nationkey", "s_acctbal"),
            ("s_suppkey",),
            10_000,
        ),
        TpchTable(
            "customer",
            (
                "c_custkey",
                "c_name",
                "c_address",
                "c_nationkey",
                "c_phone",
                "c_acctbal",
                "c_mktsegment",
                "c_comment",
            ),
            ("c_custkey",),
            150_000,
        ),
        TpchTable(
            "part",
            ("p_partkey", "p_name", "p_type", "p_size"),
            ("p_partkey",),
            200_000,
        ),
        TpchTable(
            "partsupp",
            ("ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"),
            ("ps_partkey", "ps_suppkey"),
            800_000,
        ),
        TpchTable(
            "orders",
            (
                "o_orderkey",
                "o_custkey",
                "o_orderstatus",
                "o_totalprice",
                "o_orderdate",
                "o_shippriority",
            ),
            ("o_orderkey",),
            1_500_000,
        ),
        TpchTable(
            "lineitem",
            (
                "l_orderkey",
                "l_partkey",
                "l_suppkey",
                "l_linenumber",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_returnflag",
                "l_shipdate",
            ),
            ("l_orderkey", "l_linenumber"),
            6_001_215,
        ),
    ]
}
