"""TPC-H substrate: schema, SF-scaled statistics, micro data, queries.

The paper's Table 2 evaluates the plan generators on the intro example
query (Ex) and TPC-H queries Q3, Q5 and Q10 with scale-factor-1 statistics.
This package provides:

* :mod:`repro.tpch.schema` — the eight TPC-H tables with keys,
* :mod:`repro.tpch.stats` — SF-scaled cardinalities and distinct counts,
* :mod:`repro.tpch.queries` — Ex/Q3/Q5/Q10 as :class:`~repro.query.spec.Query`
  objects (aliased relations supported, e.g. the two nation instances of Ex),
* :mod:`repro.tpch.datagen` — a deterministic micro-scale generator so the
  queries can actually be *executed* and optimizer output cross-checked.
"""

from repro.tpch.schema import TABLES, TpchTable
from repro.tpch.stats import scaled_cardinality, scaled_distinct
from repro.tpch.queries import (
    build_ex,
    build_q3,
    build_q5,
    build_q10,
    micro_database,
    TPCH_QUERIES,
)

__all__ = [
    "TABLES",
    "TpchTable",
    "scaled_cardinality",
    "scaled_distinct",
    "build_ex",
    "build_q3",
    "build_q5",
    "build_q10",
    "micro_database",
    "TPCH_QUERIES",
]
