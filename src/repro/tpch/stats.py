"""SF-scaled TPC-H statistics: distinct counts and predicate selectivities.

Distinct counts follow the TPC-H specification's value-generation rules
(e.g. one third of customers never place an order, orderdates span ~2406
days from 1992-01-01 to 1998-08-02).  Selectivities for the Q3/Q5/Q10 base
predicates are the standard values derivable from those rules.
"""

from __future__ import annotations

from typing import Dict

from repro.tpch.schema import TABLES

#: days in the o_orderdate domain (1992-01-01 .. 1998-08-02)
ORDERDATE_DAYS = 2_406
#: days in the l_shipdate domain (orderdate + 1..121)
SHIPDATE_DAYS = 2_526

_DISTINCT_SF1: Dict[str, Dict[str, float]] = {
    "region": {"r_regionkey": 5, "r_name": 5},
    "nation": {"n_nationkey": 25, "n_name": 25, "n_regionkey": 5},
    "supplier": {
        "s_suppkey": 10_000,
        "s_name": 10_000,
        "s_nationkey": 25,
        "s_acctbal": 9_955,
    },
    "customer": {
        "c_custkey": 150_000,
        "c_name": 150_000,
        "c_address": 150_000,
        "c_nationkey": 25,
        "c_phone": 150_000,
        "c_acctbal": 140_187,
        "c_mktsegment": 5,
        "c_comment": 149_968,
    },
    "part": {"p_partkey": 200_000, "p_name": 199_997, "p_type": 150, "p_size": 50},
    "partsupp": {
        "ps_partkey": 200_000,
        "ps_suppkey": 10_000,
        "ps_availqty": 9_999,
        "ps_supplycost": 99_865,
    },
    "orders": {
        "o_orderkey": 1_500_000,
        "o_custkey": 99_996,  # two thirds of customers have orders
        "o_orderstatus": 3,
        "o_totalprice": 1_464_556,
        "o_orderdate": ORDERDATE_DAYS,
        "o_shippriority": 1,
    },
    "lineitem": {
        "l_orderkey": 1_500_000,
        "l_partkey": 200_000,
        "l_suppkey": 10_000,
        "l_linenumber": 7,
        "l_quantity": 50,
        "l_extendedprice": 933_900,
        "l_discount": 11,
        "l_returnflag": 3,
        "l_shipdate": SHIPDATE_DAYS,
    },
}

#: base-predicate selectivities used by the paper's TPC-H queries
SELECTIVITIES = {
    # Q3
    "c_mktsegment = 'BUILDING'": 1.0 / 5.0,
    "o_orderdate < '1995-03-15'": 1_169.0 / ORDERDATE_DAYS,  # ~0.486
    "l_shipdate > '1995-03-15'": 1_357.0 / SHIPDATE_DAYS,  # ~0.537
    # Q5
    "r_name = 'ASIA'": 1.0 / 5.0,
    "o_orderdate in 1994": 365.0 / ORDERDATE_DAYS,  # ~0.152
    # Q10
    "o_orderdate in 1993Q4": 92.0 / ORDERDATE_DAYS,  # ~0.038
    "l_returnflag = 'R'": 0.2466,
}


def scaled_cardinality(table: str, scale_factor: float = 1.0) -> float:
    """Row count of *table* at the given scale factor."""
    return TABLES[table].cardinality(scale_factor)


def scaled_distinct(table: str, column: str, scale_factor: float = 1.0) -> float:
    """Distinct count of *column* at the given scale factor.

    Key-like columns scale linearly (capped at the cardinality); small
    categorical domains (nations, segments, flags, dates) do not scale.
    """
    base = _DISTINCT_SF1[table][column]
    cardinality_sf1 = TABLES[table].cardinality(1.0)
    cardinality = TABLES[table].cardinality(scale_factor)
    if base >= cardinality_sf1 * 0.05:
        # scales with the table (identifiers, monetary amounts)
        return min(cardinality, base * (cardinality / cardinality_sf1))
    return min(cardinality, base)
