"""The paper's TPC-H queries (Table 2) as query specifications.

Dates are encoded as integer day offsets from 1992-01-01 (the TPC-H
orderdate epoch): 1995-03-15 = day 1169, the 1994 calendar year =
[731, 1096), 1993-10-01..1994-01-01 = [639, 731).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Const, Logical
from repro.algebra.relation import Relation
from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import TreeLeaf, TreeNode
from repro.rewrites.pushdown import OpKind
from repro.tpch.datagen import micro_table
from repro.tpch.schema import TABLES
from repro.tpch.stats import SELECTIVITIES, scaled_distinct

DAY_1995_03_15 = 1_169
YEAR_1994_START, YEAR_1994_END = 731, 1_096
Q10_START, Q10_END = 639, 731


def relation_info(table: str, alias: Optional[str] = None, scale_factor: float = 1.0) -> RelationInfo:
    """A TPC-H table as an optimizer relation, optionally aliased."""
    spec = TABLES[table]
    prefix = alias or table
    attrs = tuple(f"{prefix}.{c}" for c in spec.columns)
    distinct = {
        f"{prefix}.{c}": scaled_distinct(table, c, scale_factor) for c in spec.columns
    }
    keys = (frozenset(f"{prefix}.{c}" for c in spec.primary_key),)
    return RelationInfo(prefix, attrs, spec.cardinality(scale_factor), distinct, keys)


def _revenue(prefix: str = "lineitem") -> AggCall:
    """sum(l_extendedprice * (1 - l_discount))."""
    return AggCall(
        AggKind.SUM,
        BinOp(
            "*",
            Attr(f"{prefix}.l_extendedprice"),
            BinOp("-", Const(1), Attr(f"{prefix}.l_discount")),
        ),
    )


def build_ex(scale_factor: float = 1.0) -> Query:
    """The introduction's example query:

    ``(nation ns ⋈ supplier) ⟗ (nation nc ⋈ customer)`` on the nation keys,
    grouped by both nation names with ``count(*)`` — the outerjoin is the
    reordering barrier the paper's equivalences remove.
    """
    ns = relation_info("nation", "ns", scale_factor)
    s = relation_info("supplier", "supplier", scale_factor)
    nc = relation_info("nation", "nc", scale_factor)
    c = relation_info("customer", "customer", scale_factor)
    edges = [
        JoinEdge(0, OpKind.INNER, Attr("ns.n_nationkey").eq(Attr("supplier.s_nationkey")), 1 / 25),
        JoinEdge(1, OpKind.INNER, Attr("nc.n_nationkey").eq(Attr("customer.c_nationkey")), 1 / 25),
        JoinEdge(2, OpKind.FULL_OUTER, Attr("ns.n_nationkey").eq(Attr("nc.n_nationkey")), 1 / 25),
    ]
    tree = TreeNode(2, TreeNode(0, TreeLeaf(0), TreeLeaf(1)), TreeNode(1, TreeLeaf(2), TreeLeaf(3)))
    aggregates = AggVector([AggItem("cnt", AggCall(AggKind.COUNT_STAR))])
    return Query([ns, s, nc, c], edges, tree, ("ns.n_name", "nc.n_name"), aggregates)


def build_q3(scale_factor: float = 1.0) -> Query:
    """TPC-H Q3 (shipping priority)."""
    customer = relation_info("customer", scale_factor=scale_factor)
    orders = relation_info("orders", scale_factor=scale_factor)
    lineitem = relation_info("lineitem", scale_factor=scale_factor)
    edges = [
        JoinEdge(
            0, OpKind.INNER,
            Attr("customer.c_custkey").eq(Attr("orders.o_custkey")),
            1.0 / scaled_distinct("customer", "c_custkey", scale_factor),
        ),
        JoinEdge(
            1, OpKind.INNER,
            Attr("orders.o_orderkey").eq(Attr("lineitem.l_orderkey")),
            1.0 / scaled_distinct("orders", "o_orderkey", scale_factor),
        ),
    ]
    tree = TreeNode(1, TreeNode(0, TreeLeaf(0), TreeLeaf(1)), TreeLeaf(2))
    locals_ = {
        0: (
            Attr("customer.c_mktsegment").eq(Const("BUILDING")),
            SELECTIVITIES["c_mktsegment = 'BUILDING'"],
        ),
        1: (
            BinOp("<", Attr("orders.o_orderdate"), Const(DAY_1995_03_15)),
            SELECTIVITIES["o_orderdate < '1995-03-15'"],
        ),
        2: (
            BinOp(">", Attr("lineitem.l_shipdate"), Const(DAY_1995_03_15)),
            SELECTIVITIES["l_shipdate > '1995-03-15'"],
        ),
    }
    aggregates = AggVector([AggItem("revenue", _revenue())])
    return Query(
        [customer, orders, lineitem],
        edges,
        tree,
        ("lineitem.l_orderkey", "orders.o_orderdate", "orders.o_shippriority"),
        aggregates,
        local_predicates=locals_,
    )


def build_q5(scale_factor: float = 1.0) -> Query:
    """TPC-H Q5 (local supplier volume) — a *cyclic* inner-join query."""
    customer = relation_info("customer", scale_factor=scale_factor)
    orders = relation_info("orders", scale_factor=scale_factor)
    lineitem = relation_info("lineitem", scale_factor=scale_factor)
    supplier = relation_info("supplier", scale_factor=scale_factor)
    nation = relation_info("nation", scale_factor=scale_factor)
    region = relation_info("region", scale_factor=scale_factor)
    edges = [
        JoinEdge(
            0, OpKind.INNER,
            Attr("customer.c_custkey").eq(Attr("orders.o_custkey")),
            1.0 / scaled_distinct("customer", "c_custkey", scale_factor),
        ),
        JoinEdge(
            1, OpKind.INNER,
            Attr("orders.o_orderkey").eq(Attr("lineitem.l_orderkey")),
            1.0 / scaled_distinct("orders", "o_orderkey", scale_factor),
        ),
        JoinEdge(
            2, OpKind.INNER,
            Attr("lineitem.l_suppkey").eq(Attr("supplier.s_suppkey")),
            1.0 / scaled_distinct("supplier", "s_suppkey", scale_factor),
        ),
        JoinEdge(
            3, OpKind.INNER,
            Attr("supplier.s_nationkey").eq(Attr("nation.n_nationkey")),
            1.0 / 25,
        ),
        JoinEdge(
            4, OpKind.INNER,
            Attr("nation.n_regionkey").eq(Attr("region.r_regionkey")),
            1.0 / 5,
        ),
        # the cycle-closing WHERE predicate: customers buy locally
        JoinEdge(
            5, OpKind.INNER,
            Attr("customer.c_nationkey").eq(Attr("supplier.s_nationkey")),
            1.0 / 25,
        ),
    ]
    tree = TreeNode(
        4,
        TreeNode(3, TreeNode(2, TreeNode(1, TreeNode(0, TreeLeaf(0), TreeLeaf(1)), TreeLeaf(2)), TreeLeaf(3)), TreeLeaf(4)),
        TreeLeaf(5),
    )
    locals_ = {
        1: (
            Logical(
                "and",
                (
                    BinOp(">=", Attr("orders.o_orderdate"), Const(YEAR_1994_START)),
                    BinOp("<", Attr("orders.o_orderdate"), Const(YEAR_1994_END)),
                ),
            ),
            SELECTIVITIES["o_orderdate in 1994"],
        ),
        5: (
            Attr("region.r_name").eq(Const("ASIA")),
            SELECTIVITIES["r_name = 'ASIA'"],
        ),
    }
    aggregates = AggVector([AggItem("revenue", _revenue())])
    return Query(
        [customer, orders, lineitem, supplier, nation, region],
        edges,
        tree,
        ("nation.n_name",),
        aggregates,
        local_predicates=locals_,
    )


def build_q10(scale_factor: float = 1.0) -> Query:
    """TPC-H Q10 (returned item reporting)."""
    customer = relation_info("customer", scale_factor=scale_factor)
    orders = relation_info("orders", scale_factor=scale_factor)
    lineitem = relation_info("lineitem", scale_factor=scale_factor)
    nation = relation_info("nation", scale_factor=scale_factor)
    edges = [
        JoinEdge(
            0, OpKind.INNER,
            Attr("customer.c_custkey").eq(Attr("orders.o_custkey")),
            1.0 / scaled_distinct("customer", "c_custkey", scale_factor),
        ),
        JoinEdge(
            1, OpKind.INNER,
            Attr("orders.o_orderkey").eq(Attr("lineitem.l_orderkey")),
            1.0 / scaled_distinct("orders", "o_orderkey", scale_factor),
        ),
        JoinEdge(
            2, OpKind.INNER,
            Attr("customer.c_nationkey").eq(Attr("nation.n_nationkey")),
            1.0 / 25,
        ),
    ]
    tree = TreeNode(
        2,
        TreeNode(1, TreeNode(0, TreeLeaf(0), TreeLeaf(1)), TreeLeaf(2)),
        TreeLeaf(3),
    )
    locals_ = {
        1: (
            Logical(
                "and",
                (
                    BinOp(">=", Attr("orders.o_orderdate"), Const(Q10_START)),
                    BinOp("<", Attr("orders.o_orderdate"), Const(Q10_END)),
                ),
            ),
            SELECTIVITIES["o_orderdate in 1993Q4"],
        ),
        2: (
            Attr("lineitem.l_returnflag").eq(Const("R")),
            SELECTIVITIES["l_returnflag = 'R'"],
        ),
    }
    aggregates = AggVector([AggItem("revenue", _revenue())])
    group_by = (
        "customer.c_custkey",
        "customer.c_name",
        "customer.c_acctbal",
        "customer.c_phone",
        "nation.n_name",
        "customer.c_address",
        "customer.c_comment",
    )
    return Query(
        [customer, orders, lineitem, nation], edges, tree, group_by, aggregates,
        local_predicates=locals_,
    )


TPCH_QUERIES: Dict[str, Callable[[float], Query]] = {
    "Ex": build_ex,
    "Q3": build_q3,
    "Q5": build_q5,
    "Q10": build_q10,
}


def micro_database(query: Query, seed: int = 0) -> Dict[str, Relation]:
    """Micro tables for every (possibly aliased) relation of *query*."""
    database: Dict[str, Relation] = {}
    for rel in query.relations:
        table = _table_of(rel)
        database[rel.name] = micro_table(table, alias=rel.name, seed=seed)
    return database


def _table_of(rel: RelationInfo) -> str:
    if rel.name in TABLES:
        return rel.name
    # aliased relations: identify the table by its column names
    suffix = sorted(a.split(".", 1)[1] for a in rel.attributes)
    for table, spec in TABLES.items():
        if sorted(spec.columns) == suffix:
            return table
    raise KeyError(f"cannot identify TPC-H table for {rel.name!r}")
