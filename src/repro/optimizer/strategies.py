"""The BuildPlans strategies — the only component the paper's four
algorithms differ in (Figs. 5, 9, 10, 12, 13, 14).

Each strategy answers two questions:

* ``explore_eager`` — should OpTrees generate the grouping placements
  (b)/(c)/(d) of Fig. 8 at all?  (False only for the DPhyp baseline.)
* ``insert(bucket, plan)`` — which plans survive in the DP table entry.
"""

from __future__ import annotations

from typing import List

from repro.optimizer.planinfo import PlanInfo
from repro.optimizer.registry import STRATEGIES


class Strategy:
    """Base class: a DP-table insertion policy."""

    name = "abstract"
    explore_eager = True

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        raise NotImplementedError

    def insert_top(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        """``InsertTopLevelPlan`` (Fig. 9): keep the single cheapest plan."""
        if not bucket:
            bucket.append(plan)
        elif plan.cost < bucket[0].cost:
            bucket[0] = plan


class DphypStrategy(Strategy):
    """Baseline DPhyp: lazy aggregation only, one optimal plan per class."""

    name = "dphyp"
    explore_eager = False

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        if not bucket:
            bucket.append(plan)
        elif plan.cost < bucket[0].cost:
            bucket[0] = plan


class EaAllStrategy(Strategy):
    """BuildPlansAll (Fig. 9): keep *every* plan — exhaustive, optimal,
    runtime O(2^{2n-1} · #ccp)."""

    name = "ea-all"

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        bucket.append(plan)


class EaPruneStrategy(Strategy):
    """BuildPlansPrune (Figs. 13/14): dominance pruning, still optimal.

    A plan T1 dominates T2 iff cost, cardinality and functional
    dependencies are all no worse (Def. 4).  As sanctioned by the paper,
    FD-closure comparison is implemented via candidate-key sets; the
    duplicate-freeness flag participates because ``NeedsGrouping`` and
    Eqv. 42 depend on it.

    The ``criteria`` knob exists for the ablation benchmark: dropping the
    cardinality or FD dimension makes pruning more aggressive but destroys
    the optimality guarantee — exactly the point of Def. 4's three clauses.
    """

    name = "ea-prune"

    def __init__(self, criteria: str = "full"):
        if criteria not in ("full", "cost-card", "cost-only"):
            raise ValueError(f"unknown pruning criteria {criteria!r}")
        self.criteria = criteria
        if criteria != "full":
            self.name = f"ea-prune[{criteria}]"

    def _dominates(self, a: PlanInfo, b: PlanInfo) -> bool:
        if a.cost > b.cost:
            return False
        if self.criteria == "cost-only":
            return True
        if a.cardinality > b.cardinality:
            return False
        if self.criteria == "cost-card":
            return True
        return _fd_superset(a, b)

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        for existing in bucket:
            if self._dominates(existing, plan):
                return  # dominated: discard the new plan
        bucket[:] = [
            existing for existing in bucket if not self._dominates(plan, existing)
        ]
        bucket.append(plan)


class H1Strategy(Strategy):
    """BuildPlansH1 (Fig. 10): local greedy choice, single plan per class."""

    name = "h1"

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        if not bucket:
            bucket.append(plan)
        elif plan.cost < bucket[0].cost:
            bucket[0] = plan


class H2Strategy(Strategy):
    """BuildPlansH2 (Fig. 12): cost comparison biased towards *more eager*
    plans by the tolerance factor F (``CompareAdjustedCosts``)."""

    name = "h2"

    def __init__(self, factor: float = 1.03):
        if factor < 1.0:
            raise ValueError("tolerance factor must be >= 1")
        self.factor = factor

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        if not bucket:
            bucket.append(plan)
        elif self._compare_adjusted(plan, bucket[0]):
            bucket[0] = plan

    def _compare_adjusted(self, new: PlanInfo, old: PlanInfo) -> bool:
        if new.eagerness == old.eagerness:
            return new.cost < old.cost
        if new.eagerness < old.eagerness:
            return self.factor * new.cost < old.cost
        return new.cost < self.factor * old.cost


def _fd_superset(a: PlanInfo, b: PlanInfo) -> bool:
    """FD⁺(a) ⊇ FD⁺(b), approximated through candidate keys and attribute
    equivalences:

    * *a* must be duplicate-free whenever *b* is (NeedsGrouping depends on
      the flag),
    * every key of *b* must be implied by *a* (some key of *a* inside the
      equivalence closure of *b*'s key),
    * every attribute-equivalence class of *b* must be known to *a* too —
      equivalences are FDs (x = y ⇒ x → y ∧ y → x) and feed key closure.
    """
    if b.duplicate_free and not a.duplicate_free:
        return False
    if not all(a.has_key_within(kb) for kb in b.keys):
        return False
    return all(
        any(cls_b <= cls_a for cls_a in a.equiv) for cls_b in b.equiv
    )


# -- registration -----------------------------------------------------------
# The built-ins register like any third-party strategy would; the driver
# and everything above it (config, session, CLI --compare) discover them
# through the registry, never through a hard-coded list.


@STRATEGIES.register("dphyp")
def _dphyp(**_options) -> Strategy:
    return DphypStrategy()


@STRATEGIES.register("ea-all", "all", "ea_all")
def _ea_all(**_options) -> Strategy:
    return EaAllStrategy()


@STRATEGIES.register("ea-prune", "prune", "ea_prune")
def _ea_prune(criteria: str = "full", **_options) -> Strategy:
    return EaPruneStrategy(criteria)


@STRATEGIES.register("h1")
def _h1(**_options) -> Strategy:
    return H1Strategy()


@STRATEGIES.register("h2")
def _h2(factor: float = 1.03, **_options) -> Strategy:
    return H2Strategy(factor)


def make_strategy(name: str, factor: float = 1.03) -> Strategy:
    """Instantiate a registered strategy by name (see :data:`STRATEGIES`)."""
    return STRATEGIES.create(name, factor=factor)
