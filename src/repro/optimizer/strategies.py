"""The BuildPlans strategies — the only component the paper's four
algorithms differ in (Figs. 5, 9, 10, 12, 13, 14).

Each strategy answers two questions:

* ``explore_eager`` — should OpTrees generate the grouping placements
  (b)/(c)/(d) of Fig. 8 at all?  (False only for the DPhyp baseline.)
* ``insert(bucket, plan)`` — which plans survive in the DP table entry.

Hot-path design (see docs/architecture.md): EA-Prune's dominance test
(Def. 4) is where the DP spends almost all of its time, so two structures
accelerate it without changing which plans survive:

* **Ordered buckets** — :class:`PruneBucket` keeps each DP-table entry
  sorted by cost (with a parallel cost array for bisection).  A stored
  plan can dominate a candidate only if its cost is no higher, and can be
  dominated only if its cost is no lower, so both scans cover just a
  cost-bounded slice of the bucket instead of all of it.  Dominance is a
  transitive preorder, which makes the surviving *set* independent of scan
  and insertion order — only the list order changes.
* **FD signatures** — the functional-dependency part of Def. 4 depends
  only on ``(duplicate_free, keys, equiv)``.  Those triples repeat across
  thousands of plans, so they are interned into small integer signature
  ids (module-level, pure), and each pairwise FD verdict is computed once
  and memoised under the id pair.  ``reset_prune_caches()`` clears both
  tables (benchmark hygiene; correctness never needs it).

The seed's unordered linear-scan insert survives on ``ordered=False``
instances — the executable reference that equivalence tests and the
``engine="reference"`` benchmark path run against.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, FrozenSet, List, Tuple

from repro.optimizer.planinfo import PlanInfo
from repro.optimizer.registry import STRATEGIES


class Strategy:
    """Base class: a DP-table insertion policy."""

    name = "abstract"
    explore_eager = True

    def new_bucket(self) -> List[PlanInfo]:
        """A fresh DP-table entry; strategies may return an indexed list."""
        return []

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        raise NotImplementedError

    def insert_top(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        """``InsertTopLevelPlan`` (Fig. 9): keep the single cheapest plan."""
        if not bucket:
            bucket.append(plan)
        elif plan.cost < bucket[0].cost:
            bucket[0] = plan


class DphypStrategy(Strategy):
    """Baseline DPhyp: lazy aggregation only, one optimal plan per class."""

    name = "dphyp"
    explore_eager = False

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        if not bucket:
            bucket.append(plan)
        elif plan.cost < bucket[0].cost:
            bucket[0] = plan


class EaAllStrategy(Strategy):
    """BuildPlansAll (Fig. 9): keep *every* plan — exhaustive, optimal,
    runtime O(2^{2n-1} · #ccp)."""

    name = "ea-all"

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        bucket.append(plan)


# -- EA-Prune FD-signature interning ----------------------------------------


class _FdSignature:
    """The FD-relevant slice of a plan: ``(duplicate_free, keys, equiv)``.

    Quacks like :class:`PlanInfo` for :func:`_fd_superset`, with its own
    closure memo, so one representative per distinct triple answers every
    pairwise FD question for all plans sharing the triple.
    """

    __slots__ = ("sig_id", "duplicate_free", "keys", "equiv", "attr_class", "_closures")

    def __init__(
        self,
        sig_id: int,
        duplicate_free: bool,
        keys: Tuple[FrozenSet[str], ...],
        equiv: Tuple[FrozenSet[str], ...],
    ):
        self.sig_id = sig_id
        self.duplicate_free = duplicate_free
        self.keys = keys
        self.equiv = equiv
        # Equivalence classes are disjoint (``_merge_equiv`` unions any
        # that touch), so attribute → its class is a function; the map
        # makes closures and class-containment tests per-attribute lookups
        # instead of scans over all classes.
        self.attr_class: Dict[str, FrozenSet[str]] = {
            attr: cls for cls in equiv for attr in cls
        }
        self._closures: Dict[FrozenSet[str], FrozenSet[str]] = {}

    def closure(self, attrs: FrozenSet[str]) -> FrozenSet[str]:
        cached = self._closures.get(attrs)
        if cached is None:
            out = set(attrs)
            lookup = self.attr_class
            for attr in attrs:
                cls = lookup.get(attr)
                if cls is not None:
                    out |= cls
            cached = frozenset(out)
            self._closures[attrs] = cached
        return cached

    def has_key_within(self, attrs: FrozenSet[str]) -> bool:
        closed = self.closure(frozenset(attrs))
        return any(key <= closed for key in self.keys)


#: (duplicate_free, frozenset(keys), frozenset(equiv)) → _FdSignature
_FD_SIGS: Dict[Tuple[bool, FrozenSet[FrozenSet[str]], FrozenSet[FrozenSet[str]]], _FdSignature] = {}
_FD_SIG_LIST: List[_FdSignature] = []
#: (sig_id_a, sig_id_b) → does a's FD closure dominate b's (Def. 4 clause 3)
_FD_VERDICTS: Dict[Tuple[int, int], bool] = {}
#: Bumped by reset so signatures cached on long-lived plans are re-interned
#: instead of carrying ids from a cleared table.
_FD_GENERATION = [0]


#: Intern-table bound for long-lived (serving) processes; one DP run stays
#: far below it, so the between-runs sweep never fires mid-optimization.
_FD_SIG_LIMIT = 50_000


def reset_prune_caches() -> None:
    """Drop the interned FD signatures and pairwise verdicts (pure caches)."""
    _FD_SIGS.clear()
    _FD_SIG_LIST.clear()
    _FD_VERDICTS.clear()
    _FD_GENERATION[0] += 1


def sweep_prune_caches() -> None:
    """Reset the FD intern tables if they outgrew :data:`_FD_SIG_LIMIT`.

    Called by the driver *between* runs (resetting mid-run would let
    signature ids from different generations alias in the verdict memo).
    This bounds the tables' growth in a long-lived serving process that
    streams distinct query shapes; plans that outlive the sweep re-intern
    lazily via the generation tag.
    """
    if len(_FD_SIGS) > _FD_SIG_LIMIT or len(_FD_VERDICTS) > _FD_SIG_LIMIT * 8:
        reset_prune_caches()


def _fd_sig_of(plan: PlanInfo) -> _FdSignature:
    generation = _FD_GENERATION[0]
    cached = plan.__dict__.get("_fd_sig")
    if cached is not None and cached[0] == generation:
        return cached[1]
    key = (plan.duplicate_free, frozenset(plan.keys), frozenset(plan.equiv))
    sig = _FD_SIGS.get(key)
    if sig is None:
        sig = _FdSignature(len(_FD_SIG_LIST), plan.duplicate_free, plan.keys, plan.equiv)
        _FD_SIGS[key] = sig
        _FD_SIG_LIST.append(sig)
    object.__setattr__(plan, "_fd_sig", (generation, sig))
    return sig


def _fd_sig_dominates(a: _FdSignature, b: _FdSignature) -> bool:
    if a is b:
        # Identical keys/equiv/duplicate_free always FD-dominate themselves.
        return True
    key = (a.sig_id, b.sig_id)
    verdict = _FD_VERDICTS.get(key)
    if verdict is None:
        verdict = _sig_fd_superset(a, b)
        _FD_VERDICTS[key] = verdict
    return verdict


def _sig_fd_superset(a: _FdSignature, b: _FdSignature) -> bool:
    """:func:`_fd_superset` specialised to interned signatures: the
    equivalence-containment clause uses the attr→class maps (one lookup
    per class of *b*) instead of scanning all classes of *a*."""
    if b.duplicate_free and not a.duplicate_free:
        return False
    if not all(a.has_key_within(kb) for kb in b.keys):
        return False
    a_classes = a.attr_class
    for cls_b in b.equiv:
        cls_a = a_classes.get(next(iter(cls_b)))
        if cls_a is None or not cls_b <= cls_a:
            return False
    return True


class PruneBucket:
    """A DP-table entry organised as per-FD-signature Pareto frontiers.

    Plans sharing an FD signature can only dominate each other through
    cost and cardinality, so the survivors of one signature always form a
    Pareto frontier: strictly increasing cost, strictly decreasing
    cardinality.  Each frontier is three parallel arrays (costs, cards,
    plans) sorted by cost, which turns the two dominance questions into

    * *is the candidate dominated?* — for every signature that
      FD-dominates the candidate's, one bisection: the minimum
      cardinality among frontier plans with cost ≤ c sits exactly at the
      rightmost such position,
    * *whom does the candidate evict?* — for every signature the
      candidate FD-dominates, the evicted plans are one contiguous slice
      (the cost-≥-c suffix starts at a bisection; within it cardinalities
      decrease, so the card-≥-d victims are its prefix).

    The surviving *set* is identical to the seed's pairwise scan —
    dominance is a transitive preorder, so maximal elements don't depend
    on scan order — only iteration order differs (by signature, then
    cost).  Iteration yields every surviving plan; ``len`` is the
    survivor count the DP table reports.
    """

    __slots__ = ("frontiers", "dominating", "dominated", "count")

    def __init__(self):
        #: signature (``_FdSignature`` or None for the reduced criteria) →
        #: (costs, cards, plans) parallel arrays sorted by cost.
        self.frontiers: Dict[object, Tuple[List[float], List[float], List[PlanInfo]]] = {}
        #: per-signature adjacency, built once when a signature first
        #: appears in this bucket: the frontier entries whose signature
        #: FD-dominates it / that it FD-dominates (both include its own).
        #: Inserts then touch only dominance-related frontiers instead of
        #: probing the FD verdict for every frontier every time.
        self.dominating: Dict[object, List[Tuple[List[float], List[float], List[PlanInfo]]]] = {}
        self.dominated: Dict[object, List[Tuple[List[float], List[float], List[PlanInfo]]]] = {}
        self.count = 0

    def __len__(self) -> int:
        return self.count

    def __iter__(self):
        for _costs, _cards, plans in self.frontiers.values():
            yield from plans

    def frontier_for(self, sig) -> Tuple[List[float], List[float], List[PlanInfo]]:
        """The signature's frontier entry, registering adjacency on first use."""
        entry = self.frontiers.get(sig)
        if entry is None:
            entry = ([], [], [])
            doms = [entry]
            subs = [entry]
            if sig is None:
                # Reduced criteria: one shared frontier, trivial adjacency.
                self.frontiers[sig] = entry
                self.dominating[sig] = doms
                self.dominated[sig] = subs
                return entry
            verdicts = _FD_VERDICTS
            for other_sig, other_entry in self.frontiers.items():
                key = (other_sig.sig_id, sig.sig_id)
                verdict = verdicts.get(key)
                if verdict is None:
                    verdict = _sig_fd_superset(other_sig, sig)
                    verdicts[key] = verdict
                if verdict:
                    doms.append(other_entry)
                    self.dominated[other_sig].append(entry)
                key = (sig.sig_id, other_sig.sig_id)
                verdict = verdicts.get(key)
                if verdict is None:
                    verdict = _sig_fd_superset(sig, other_sig)
                    verdicts[key] = verdict
                if verdict:
                    subs.append(other_entry)
                    self.dominating[other_sig].append(entry)
            self.frontiers[sig] = entry
            self.dominating[sig] = doms
            self.dominated[sig] = subs
        return entry


class EaPruneStrategy(Strategy):
    """BuildPlansPrune (Figs. 13/14): dominance pruning, still optimal.

    A plan T1 dominates T2 iff cost, cardinality and functional
    dependencies are all no worse (Def. 4).  As sanctioned by the paper,
    FD-closure comparison is implemented via candidate-key sets; the
    duplicate-freeness flag participates because ``NeedsGrouping`` and
    Eqv. 42 depend on it.

    The ``criteria`` knob exists for the ablation benchmark: dropping the
    cardinality or FD dimension makes pruning more aggressive but destroys
    the optimality guarantee — exactly the point of Def. 4's three clauses.

    ``ordered=False`` restores the seed's unordered bucket with the
    uncached pairwise scan — the reference both for equivalence tests and
    for :mod:`benchmarks.bench_hotpath` speedup measurements.
    """

    name = "ea-prune"

    def __init__(self, criteria: str = "full", ordered: bool = True):
        if criteria not in ("full", "cost-card", "cost-only"):
            raise ValueError(f"unknown pruning criteria {criteria!r}")
        self.criteria = criteria
        self.ordered = ordered
        if criteria != "full":
            self.name = f"ea-prune[{criteria}]"
        self.counters: Dict[str, int] = {
            "prune_inserts": 0,
            "dominance_checks": 0,
            "plans_discarded": 0,
            "plans_evicted": 0,
        }

    def new_bucket(self) -> List[PlanInfo]:
        return PruneBucket() if self.ordered else []

    # -- reference (seed) path ---------------------------------------------
    def _dominates(self, a: PlanInfo, b: PlanInfo) -> bool:
        if a.cost > b.cost:
            return False
        if self.criteria == "cost-only":
            return True
        if a.cardinality > b.cardinality:
            return False
        if self.criteria == "cost-card":
            return True
        return _fd_superset(a, b)

    def _insert_scan(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        for existing in bucket:
            if self._dominates(existing, plan):
                return  # dominated: discard the new plan
        bucket[:] = [
            existing for existing in bucket if not self._dominates(plan, existing)
        ]
        bucket.append(plan)

    # -- ordered hot path ---------------------------------------------------
    def _insert_ordered(self, bucket: PruneBucket, plan: PlanInfo) -> None:
        counters = self.counters
        full = self.criteria == "full"
        sig = _fd_sig_of(plan) if full else None
        cost = plan.cost
        # Under cost-only pruning every cardinality is treated as equal, so
        # the frontier degenerates to the single cheapest plan.
        card = plan.cardinality if self.criteria != "cost-only" else 0.0

        # Registering the signature also materialises its adjacency lists,
        # so both passes below touch only dominance-related frontiers.
        own = bucket.frontier_for(sig)
        dominating = bucket.dominating[sig]
        counters["dominance_checks"] += len(dominating)
        # 1) Discard the candidate if any frontier whose signature
        #    FD-dominates ours holds a plan with cost <= c and card <= d:
        #    the minimum cardinality among cost-≤-c plans sits at the
        #    rightmost cost-≤-c position of the Pareto frontier.
        for costs, cards, _plans in dominating:
            at = bisect_right(costs, cost) - 1
            if at >= 0 and cards[at] <= card:
                counters["plans_discarded"] += 1
                return
        # 2) Evict plans the candidate dominates: in every frontier whose
        #    signature ours FD-dominates, they form one contiguous slice.
        for costs, cards, plans in bucket.dominated[sig]:
            lo = bisect_left(costs, cost)
            hi = lo
            size = len(costs)
            while hi < size and cards[hi] >= card:
                hi += 1
            if hi > lo:
                del costs[lo:hi]
                del cards[lo:hi]
                del plans[lo:hi]
                bucket.count -= hi - lo
                counters["plans_evicted"] += hi - lo
        # 3) Insert into the candidate's own frontier.
        costs, cards, plans = own
        at = bisect_left(costs, cost)
        costs.insert(at, cost)
        cards.insert(at, card)
        plans.insert(at, plan)
        bucket.count += 1

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        self.counters["prune_inserts"] += 1
        if type(bucket) is PruneBucket:
            self._insert_ordered(bucket, plan)
        else:
            self._insert_scan(bucket, plan)


class H1Strategy(Strategy):
    """BuildPlansH1 (Fig. 10): local greedy choice, single plan per class."""

    name = "h1"

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        if not bucket:
            bucket.append(plan)
        elif plan.cost < bucket[0].cost:
            bucket[0] = plan


class H2Strategy(Strategy):
    """BuildPlansH2 (Fig. 12): cost comparison biased towards *more eager*
    plans by the tolerance factor F (``CompareAdjustedCosts``)."""

    name = "h2"

    def __init__(self, factor: float = 1.03):
        if factor < 1.0:
            raise ValueError("tolerance factor must be >= 1")
        self.factor = factor

    def insert(self, bucket: List[PlanInfo], plan: PlanInfo) -> None:
        if not bucket:
            bucket.append(plan)
        elif self._compare_adjusted(plan, bucket[0]):
            bucket[0] = plan

    def _compare_adjusted(self, new: PlanInfo, old: PlanInfo) -> bool:
        if new.eagerness == old.eagerness:
            return new.cost < old.cost
        if new.eagerness < old.eagerness:
            return self.factor * new.cost < old.cost
        return new.cost < self.factor * old.cost


def _fd_superset(a, b) -> bool:
    """FD⁺(a) ⊇ FD⁺(b), approximated through candidate keys and attribute
    equivalences:

    * *a* must be duplicate-free whenever *b* is (NeedsGrouping depends on
      the flag),
    * every key of *b* must be implied by *a* (some key of *a* inside the
      equivalence closure of *b*'s key),
    * every attribute-equivalence class of *b* must be known to *a* too —
      equivalences are FDs (x = y ⇒ x → y ∧ y → x) and feed key closure.

    Accepts :class:`PlanInfo` or :class:`_FdSignature` (both expose
    ``duplicate_free`` / ``keys`` / ``equiv`` / ``has_key_within``).
    """
    if b.duplicate_free and not a.duplicate_free:
        return False
    if not all(a.has_key_within(kb) for kb in b.keys):
        return False
    return all(
        any(cls_b <= cls_a for cls_a in a.equiv) for cls_b in b.equiv
    )


# -- registration -----------------------------------------------------------
# The built-ins register like any third-party strategy would; the driver
# and everything above it (config, session, CLI --compare) discover them
# through the registry, never through a hard-coded list.


@STRATEGIES.register("dphyp")
def _dphyp(**_options) -> Strategy:
    return DphypStrategy()


@STRATEGIES.register("ea-all", "all", "ea_all")
def _ea_all(**_options) -> Strategy:
    return EaAllStrategy()


@STRATEGIES.register("ea-prune", "prune", "ea_prune")
def _ea_prune(criteria: str = "full", **_options) -> Strategy:
    return EaPruneStrategy(criteria)


@STRATEGIES.register("h1")
def _h1(**_options) -> Strategy:
    return H1Strategy()


@STRATEGIES.register("h2")
def _h2(factor: float = 1.03, **_options) -> Strategy:
    return H2Strategy(factor)


def make_strategy(name: str, factor: float = 1.03) -> Strategy:
    """Instantiate a registered strategy by name (see :data:`STRATEGIES`)."""
    return STRATEGIES.create(name, factor=factor)
