"""Re-cost an existing plan under a new statistics snapshot — no enumeration.

The maintenance half of the plan lifecycle: when catalog statistics
drift, a cached plan's *shape* is usually still competitive — only its
Cout total is out of date.  Re-running the DP to find that out costs
seconds (Fig. 16); replaying the plan's operator tree bottom-up through
a fresh :class:`~repro.optimizer.planinfo.PlanBuilder` costs
microseconds and reproduces exactly the arithmetic the DP would have
used for that shape:

* leaves through :meth:`PlanBuilder.leaf` (base cardinality × local
  selectivity),
* joins through the prepared query's
  :class:`~repro.optimizer.edgeindex.EdgeResolver` (same operator,
  predicate and selectivity resolution as the DP loop) and
  :meth:`PlanBuilder.join`,
* eager groupings through :meth:`PlanBuilder.group`,
* the top through :meth:`PlanBuilder.finish_top` (Eqv.-42 elimination
  replays to the same branch — ``NeedsGrouping`` is structural, not
  statistical).

Replaying under an *unchanged* snapshot therefore reproduces the cached
cost bit-for-bit (the differential tests assert this across all three
engines' plans); replaying under a drifted snapshot yields the cached
shape's true cost under the new statistics.

The serve/replan decision compares that re-cost against a cheap
reference: an H1 greedy replan (the same
:data:`~repro.optimizer.driver.DEGRADED_STRATEGY` the deadline fallback
uses — one plan per DP class, milliseconds).  H1's plan is feasible, so
its cost upper-bounds nothing and lower-bounds nothing *exactly*, but
under the monotone Cout structure it tracks the optimum closely enough
to be the regression trigger ROADMAP item 4 asks for: a stale plan is
still served while ``recost(plan) ≤ recost_bound × cost(H1 replan)``,
i.e. while it stays competitive with what a cheap re-optimization would
ship; past the bound the entry is queued for full re-enumeration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

from repro.optimizer.config import OptimizerConfig
from repro.optimizer.driver import (
    DEGRADED_STRATEGY,
    OptimizationResult,
    PreparedQuery,
    optimize,
    prepare,
)
from repro.optimizer.planinfo import PlanBuilder, PlanInfo
from repro.plans.nodes import (
    GroupByNode,
    JoinNode,
    MapNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.query.spec import Query, RelationInfo


class RecostError(Exception):
    """The cached plan cannot be replayed against this query.

    Raised when the plan tree's shape does not correspond to operators
    the query's edge resolver can re-derive (e.g. the catalog schema
    changed, the entry was stored for a structurally different query, or
    the plan uses a root shape this replayer does not recognise).  The
    caller falls back to full re-optimization — a replay failure is a
    cache-efficiency event, never a correctness one.
    """


#: selectivity floor shared with the SQL binder's derivation.
MIN_SELECTIVITY = 1e-12


def _distinct_maps(old_relations, new_relations):
    """Per-attribute distinct counts before and after the refresh."""
    old: dict = {}
    new: dict = {}
    for rel_old, rel_new in zip(old_relations, new_relations):
        for attr in rel_old.attributes:
            old[attr] = rel_old.distinct_count(attr)
            new[attr] = rel_new.distinct_count(attr)
    return old, new


def _rescaled_selectivity(
    selectivity: float, predicate, old_distinct, new_distinct
) -> float:
    """*selectivity* with its equi-conjunct factors re-derived.

    The binder prices ``a = b`` at ``1/max(d(a), d(b))`` and ``a = c``
    at ``1/d(a)``; under drifted statistics each such factor scales by
    ``old/new`` of the relevant distinct count.  Conjuncts this shape
    analysis does not recognise keep their old contribution, and
    unchanged distinct counts contribute a ratio of exactly 1.0 — so a
    refresh under identical statistics reproduces the old selectivity
    bit-for-bit.
    """
    from repro.algebra.expressions import Attr, BinOp

    from repro.exec.physical import flatten_conjuncts

    result = selectivity
    for conjunct in flatten_conjuncts(predicate):
        if not (isinstance(conjunct, BinOp) and conjunct.op == "="):
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, Attr) and isinstance(right, Attr):
            names = [left.name, right.name]
            if any(n not in old_distinct for n in names):
                continue
            old = max(old_distinct[n] for n in names)
            new = max(new_distinct[n] for n in names)
        elif isinstance(left, Attr) or isinstance(right, Attr):
            name = left.name if isinstance(left, Attr) else right.name
            if name not in old_distinct:
                continue
            old, new = old_distinct[name], new_distinct[name]
        else:
            continue
        if new > 0 and old != new:
            result *= old / new
    return min(1.0, max(MIN_SELECTIVITY, result))


def refresh_query_stats(query: Query, catalog) -> Query:
    """*query* rebuilt with relation statistics refreshed from *catalog*.

    Mirrors the SQL binder's statistics projection: each relation's
    cardinality and per-attribute distinct counts are re-read from its
    :attr:`~repro.query.spec.RelationInfo.source_table` (qualified
    ``alias.column`` attributes map onto the catalog's bare column
    names), and derived **selectivities are re-scaled** to the new
    distinct counts (each recognised equality factor by its
    ``old/new`` distinct ratio — see :func:`_rescaled_selectivity`), so
    hand-built sessions see drift-corrected join estimates after a
    :meth:`~repro.sql.catalog.Catalog.update_stats` just like re-bound
    SQL does.  A refresh under unchanged statistics reproduces the old
    query bit-for-bit.  Relations whose table is gone (or whose columns
    no longer line up) keep their old statistics — schema changes are
    the wholesale invalidation channel's job, not drift's.
    """
    refreshed = []
    for rel in query.relations:
        stats = catalog.lookup(rel.source_table)
        if stats is None:
            refreshed.append(rel)
            continue
        columns = set(stats.columns)
        bare = {attr: attr.rsplit(".", 1)[-1] for attr in rel.attributes}
        if not set(bare.values()) <= columns:
            refreshed.append(rel)
            continue
        distinct = {
            attr: stats.distinct[column]
            for attr, column in bare.items()
            if column in stats.distinct
        }
        refreshed.append(
            replace(rel, cardinality=stats.cardinality, distinct=distinct)
        )
    old_distinct, new_distinct = _distinct_maps(query.relations, refreshed)
    edges = [
        replace(
            edge,
            selectivity=_rescaled_selectivity(
                edge.selectivity, edge.predicate, old_distinct, new_distinct
            ),
        )
        for edge in query.edges
    ]
    local_predicates = {
        vertex: (
            predicate,
            _rescaled_selectivity(selectivity, predicate, old_distinct, new_distinct),
        )
        for vertex, (predicate, selectivity) in query.local_predicates.items()
    }
    return Query(
        relations=refreshed,
        edges=edges,
        tree=query.tree,
        group_by=query.group_by,
        aggregates=query.aggregates,
        local_predicates=local_predicates,
    )


def _is_finishing_group(node: GroupByNode, query: Query) -> bool:
    """Whether *node* is the top grouping ``finish_top`` emits (as opposed
    to an eager pushed-down Γ, whose vector names carry ``#g`` suffixes)."""
    return tuple(node.group_attrs) == tuple(query.group_by) and tuple(
        node.vector.names()
    ) == tuple(item.name for item in query.normalized.vector)


def recost(
    query: Query,
    node: PlanNode,
    *,
    prepared: Optional[PreparedQuery] = None,
    cost_model=None,
) -> PlanInfo:
    """Replay the plan tree *node* against *query*'s current statistics.

    Returns the rebuilt :class:`PlanInfo` — same shape, freshly derived
    cost/cardinality/keys.  With unchanged statistics the returned cost
    equals the cached plan's bit-for-bit (same arithmetic, same order).
    Raises :class:`RecostError` when the shape cannot be replayed; the
    caller should fall back to a full :func:`~repro.optimizer.optimize`.
    """
    if prepared is None:
        prepared = prepare(query)
    elif prepared.query is not query:
        raise ValueError("prepared pre-pass belongs to a different query")
    builder = PlanBuilder(query, cost_model=cost_model)
    resolver = prepared.resolver()
    vertex_of = {rel.name: vertex for vertex, rel in enumerate(query.relations)}

    def replay(current: PlanNode) -> PlanInfo:
        if isinstance(current, (ScanNode, SelectNode)):
            scan = current.child if isinstance(current, SelectNode) else current
            if not isinstance(scan, ScanNode):
                raise RecostError(f"unexpected select child {scan.label()}")
            vertex = vertex_of.get(scan.relation)
            if vertex is None:
                raise RecostError(f"unknown relation {scan.relation!r}")
            info = builder.leaf(vertex)
            if type(info.node) is not type(current):
                raise RecostError(
                    f"local-predicate mismatch on {scan.relation!r}"
                )
            return info
        if isinstance(current, GroupByNode):
            child = replay(current.child)
            grouped = builder.group(child, frozenset(current.group_attrs))
            if grouped is None:
                raise RecostError("eager grouping no longer valid")
            return grouped
        if isinstance(current, JoinNode):
            left = replay(current.left)
            right = replay(current.right)
            spec = resolver.resolve(left.rel_set, right.rel_set)
            if spec is None or spec.swap or spec.op is not current.op:
                raise RecostError("join operator no longer resolvable")
            joined = builder.join(
                left, right, spec.op, spec.predicate, spec.selectivity,
                spec.groupjoin_vector,
            )
            if joined is None:
                raise RecostError("join aggregation state no longer maintainable")
            return joined
        raise RecostError(f"unexpected plan node {current.label()}")

    # Strip finish_top's wrapper, replay the core, re-finish.  Both root
    # shapes finish_top can emit are recognised; anything else (a plan
    # from a foreign builder) is a replay failure.
    core = node
    if isinstance(core, ProjectNode):
        core = core.child
        while isinstance(core, MapNode):
            core = core.child
    elif isinstance(core, GroupByNode) and _is_finishing_group(core, query):
        core = core.child
    else:
        raise RecostError(f"unexpected plan root {node.label()}")
    finished = builder.finish_top(replay(core))
    if type(finished.node) is not type(node):
        raise RecostError("top-grouping decision diverged during replay")
    return finished


@dataclass(frozen=True)
class RecostDecision:
    """Outcome of :func:`evaluate_stale` for one stale cache entry.

    ``serve=True``: keep serving the (re-costed) cached plan — *plan*
    holds the replayed :class:`PlanInfo` and the entry can be refreshed
    in place.  ``serve=False``: the entry regressed past the bound (or
    could not be replayed, ``reason="replay_failed"``) and needs full
    re-optimization.
    """

    serve: bool
    reason: str  # "within_bound" | "over_bound" | "replay_failed"
    recost_cost: Optional[float]
    bound_cost: float
    bound_factor: float
    plan: Optional[PlanInfo]
    elapsed_seconds: float


def evaluate_stale(
    query: Query,
    cached: OptimizationResult,
    *,
    config: OptimizerConfig,
    prepared: Optional[PreparedQuery] = None,
) -> RecostDecision:
    """Re-cost *cached* under *query*'s statistics and apply the bound.

    The stale-while-revalidate decision procedure: replay the cached
    plan (microseconds), run the cheap H1 reference replan
    (milliseconds), and serve the replayed plan while
    ``recost ≤ config.recost_bound × H1``.  *query* must carry the
    *fresh* statistics (re-parsed SQL or
    :func:`refresh_query_stats`) and the cached plan's naming.
    """
    start = time.perf_counter()
    if prepared is None:
        prepared = prepare(query)
    bound_config = config.with_overrides(
        strategy=DEGRADED_STRATEGY,
        deadline_seconds=None,
        cache_capacity=None,
    )
    try:
        plan = recost(
            query,
            cached.plan.node,
            prepared=prepared,
            cost_model=config.resolve_cost_model(),
        )
    except RecostError:
        reference = optimize(query, prepared=prepared, config=bound_config)
        return RecostDecision(
            serve=False,
            reason="replay_failed",
            recost_cost=None,
            bound_cost=reference.cost,
            bound_factor=config.recost_bound,
            plan=None,
            elapsed_seconds=time.perf_counter() - start,
        )
    reference = optimize(query, prepared=prepared, config=bound_config)
    within = plan.cost <= config.recost_bound * reference.cost
    return RecostDecision(
        serve=within,
        reason="within_bound" if within else "over_bound",
        recost_cost=plan.cost,
        bound_cost=reference.cost,
        bound_factor=config.recost_bound,
        plan=plan,
        elapsed_seconds=time.perf_counter() - start,
    )


def recosted_result(
    cached: OptimizationResult, plan: PlanInfo, elapsed_seconds: float
) -> OptimizationResult:
    """*cached* with its plan swapped for the re-costed replay.

    The refreshed entry a revalidator installs after a within-bound
    decision: same enumeration provenance (``ccp_count`` etc. still
    describe the run that found the shape), new cost, and a
    ``recosted`` stats marker so monitoring can tell replayed plans
    from re-enumerated ones.
    """
    stats = dict(cached.stats)
    stats["recosted"] = stats.get("recosted", 0) + 1
    return replace(
        cached,
        plan=plan,
        cache_hit=False,
        degraded=False,
        elapsed_seconds=elapsed_seconds,
        stats=stats,
    )
