"""Plan records and the plan builder — the DP algorithms' working material.

A :class:`PlanInfo` wraps an executable plan node with every derived
property the algorithms need:

* ``cost`` — the paper's ``Cout`` (sum of intermediate result sizes,
  Sec. 4.4; scans and projections are free),
* ``cardinality`` and per-attribute ``distinct`` counts,
* ``keys`` (Sec. 2.3) and ``duplicate_free`` — inputs to ``NeedsGrouping``
  (Fig. 7) and to the dominance pruning (Def. 4, via candidate keys),
* the **aggregation state**: per original aggregate a *term* (an aggregate
  call over the plan's current columns — raw, ⊗-scaled, or the outer stage
  of a pushed-down decomposition) plus the plan's *scale columns* (count(*)
  columns introduced by pushed groupings that still multiply other sides'
  duplicate-sensitive aggregates),
* ``defaults`` — default values for the plan's aggregate/count columns,
  applied when a generalised outerjoin pads this side (Eqvs. 11/12/14/...).

The aggregation state is how the Fig. 3 equivalences compose across
arbitrarily many pushdowns inside one DP run: joining two plans ⊗-scales
each side's terms by the other side's scale columns, and grouping a plan
decomposes every term into inner/outer stages while folding the plan's old
scale columns into the new count column (``count(*) ⊗ c`` = ``sum(c)``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.costmodel import CostModel

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.transform import (
    NotDecomposableError,
    decompose_call,
    scale_call,
    single_row_expr,
)
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Expr, attrs_of
from repro.algebra.values import SqlValue
from repro.cardinality.estimate import (
    antijoin_cardinality,
    distinct_after,
    domain_product,
    grouping_cardinality,
    join_cardinality,
    outerjoin_cardinality,
    semijoin_cardinality,
)
from repro.plans.nodes import (
    GroupByNode,
    JoinNode,
    MapNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.query.spec import Query
from repro.rewrites.pushdown import OpKind

_KEY_LIMIT = 12  # cap on tracked candidate keys per plan


def clear_memo_caches() -> None:
    """Drop the module-level pure-function memos (benchmark hygiene —
    correctness never requires it; the caches are keyed by value)."""
    _minimal_keys_cached.cache_clear()
    _merge_equiv_cached.cache_clear()
    _pairwise_keys.cache_clear()
    _scale_call_cached.cache_clear()


@dataclass(frozen=True)
class PlanInfo:
    """One plan for a relation set, with all derived DP properties."""

    node: PlanNode
    rel_set: int
    cost: float
    cardinality: float
    keys: Tuple[FrozenSet[str], ...]
    duplicate_free: bool
    raw_attrs: FrozenSet[str]
    distinct: Dict[str, float]
    terms: Dict[str, AggCall]
    scale_cols: Tuple[str, ...]
    defaults: Dict[str, SqlValue]
    eagerness: int = 0
    #: attribute equivalence classes induced by applied inner-join equality
    #: predicates (x = y ∧ x key ⇒ y determines the row too).  This is the
    #: slice of the FD closure that Def. 4 / NeedsGrouping actually needs.
    equiv: Tuple[FrozenSet[str], ...] = ()

    def closure(self, attrs: FrozenSet[str]) -> FrozenSet[str]:
        """Attributes plus everything equal to them (equivalence closure).

        Memoised per plan: the dominance pruning and ``NeedsGrouping`` ask
        for the same closures over and over in the DP hot loop.  The cache
        lives in the instance ``__dict__`` (invisible to dataclass
        eq/replace) because the declared fields are frozen.
        """
        cache = self.__dict__.get("_closure_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_closure_cache", cache)
        cached = cache.get(attrs)
        if cached is None:
            out = set(attrs)
            for cls in self.equiv:
                if cls & out:
                    out |= cls
            cached = frozenset(out)
            cache[attrs] = cached
        return cached

    def __getstate__(self):
        """Strip the per-instance memo caches before pickling: they hold
        process-local interned objects (FD signatures) that must not leak
        to batch-driver worker/parent processes."""
        state = dict(self.__dict__)
        state.pop("_closure_cache", None)
        state.pop("_key_within_cache", None)
        state.pop("_fd_sig", None)
        # Vectorized-engine tags are engine-instance-local (shape ids and
        # recipe variants) and reference whole plan graphs — never leak.
        state.pop("_vec_sid", None)
        state.pop("_vec_variant", None)
        return state

    def has_key_within(self, attrs: FrozenSet[str]) -> bool:
        """Whether some candidate key is implied by *attrs* (via closure)."""
        cache = self.__dict__.get("_key_within_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_key_within_cache", cache)
        attrs = frozenset(attrs)
        cached = cache.get(attrs)
        if cached is None:
            closed = self.closure(attrs)
            cached = any(key <= closed for key in self.keys)
            cache[attrs] = cached
        return cached


@lru_cache(maxsize=65536)
def _scale_call_cached(call: AggCall, count_attrs: Tuple[str, ...]) -> AggCall:
    """Memoised ``f ⊗ c`` — the same (call, scale-columns) pairs are
    rebuilt for every plan pair joining the same relation sets."""
    return scale_call(call, count_attrs)


def needs_grouping(group_attrs: FrozenSet[str], plan: PlanInfo) -> bool:
    """``NeedsGrouping`` (Fig. 7): grouping is a no-op iff the grouping
    attributes contain a key of a duplicate-free input."""
    return not (plan.duplicate_free and plan.has_key_within(group_attrs))


def _equality_pairs(predicate: Expr) -> List[Tuple[str, str]]:
    """Attribute pairs equated by the predicate's top-level conjuncts."""
    from repro.algebra.expressions import Attr, BinOp, Logical

    pairs: List[Tuple[str, str]] = []

    def walk(expr: Expr) -> None:
        if isinstance(expr, Logical) and expr.op == "and":
            for operand in expr.operands:
                walk(operand)
        elif (
            isinstance(expr, BinOp)
            and expr.op == "="
            and isinstance(expr.left, Attr)
            and isinstance(expr.right, Attr)
        ):
            pairs.append((expr.left.name, expr.right.name))

    walk(predicate)
    return pairs


@lru_cache(maxsize=65536)
def _merge_equiv_cached(
    classes: Tuple[FrozenSet[str], ...], pairs: Tuple[Tuple[str, str], ...]
) -> Tuple[FrozenSet[str], ...]:
    """Memoised :func:`_merge_equiv`: the same (classes, predicate-pairs)
    combinations recur for every plan pair of a csg-cmp-pair."""
    return _merge_equiv(classes, pairs)


def _merge_equiv(
    classes: Sequence[FrozenSet[str]], pairs: Sequence[Tuple[str, str]]
) -> Tuple[FrozenSet[str], ...]:
    """Union equivalence classes with newly equated attribute pairs."""
    groups: List[set] = [set(cls) for cls in classes]
    for a, b in pairs:
        touching = [g for g in groups if a in g or b in g]
        merged = {a, b}
        for g in touching:
            merged |= g
            groups.remove(g)
        groups.append(merged)
    return tuple(frozenset(g) for g in groups if len(g) >= 2)


def _restrict_equiv(
    classes: Sequence[FrozenSet[str]], attrs: FrozenSet[str]
) -> Tuple[FrozenSet[str], ...]:
    """Drop class members that no longer exist in the plan output."""
    restricted = [cls & attrs for cls in classes]
    return tuple(cls for cls in restricted if len(cls) >= 2)


def _minimal_keys(keys: Sequence[FrozenSet[str]]) -> Tuple[FrozenSet[str], ...]:
    """Drop keys that are supersets of other keys; cap the key count."""
    return _minimal_keys_cached(tuple(keys))


@lru_cache(maxsize=65536)
def _minimal_keys_cached(keys: Tuple[FrozenSet[str], ...]) -> Tuple[FrozenSet[str], ...]:
    """Memoised body of :func:`_minimal_keys` — a pure set computation that
    the DP loop re-derives for the same key tuples constantly."""
    unique = sorted(set(keys), key=lambda k: (len(k), sorted(k)))
    minimal: List[FrozenSet[str]] = []
    for key in unique:
        if not any(other < key or other == key for other in minimal):
            minimal.append(key)
    return tuple(minimal[:_KEY_LIMIT])


class PlanBuilder:
    """Constructs :class:`PlanInfo` objects for one query.

    *cost_model* prices each operator (default: the paper's Cout); plan
    cost composes bottom-up as children's cost + the operator's
    contribution (see :mod:`repro.optimizer.costmodel`).
    """

    def __init__(
        self,
        query: Query,
        cost_model: Optional["CostModel"] = None,
        memo: bool = True,
    ):
        if cost_model is None:
            from repro.optimizer.costmodel import CoutModel

            cost_model = CoutModel()
        self.cost_model = cost_model
        self.query = query
        #: Per-predicate metadata memos (attribute sets, equality pairs).
        #: ``memo=False`` restores the seed's recompute-per-join behaviour —
        #: used by the ``engine="reference"`` benchmark path.
        self.memo = memo
        self._pred_attrs: Dict[int, Tuple[Expr, FrozenSet[str]]] = {}
        self._pred_eq_pairs: Dict[int, Tuple[Expr, Tuple[Tuple[str, str], ...]]] = {}
        self._group_counter = 0
        # Source relation mask per normalized aggregate; count(*)-style
        # aggregates (no referenced attributes — special case S1 of Def. 1)
        # are assigned to vertex 0.
        self.term_sources: Dict[str, int] = {}
        self.original_calls: Dict[str, AggCall] = {}
        self.term_defaults: Dict[str, SqlValue] = {}
        for item in query.normalized.vector:
            referenced = item.call.attributes()
            mask = query.vertices_of(referenced) if referenced else 1
            self.term_sources[item.name] = mask
            self.original_calls[item.name] = item.call
            self.term_defaults[item.name] = item.call.evaluate_on_null_tuple()
        self._needed_above_cache: Dict[int, FrozenSet[str]] = {}
        self._gj_scaling = query.groupjoin_scaling_requirements()

    # ------------------------------------------------------------------
    def needed_above(self, mask: int) -> FrozenSet[str]:
        cached = self._needed_above_cache.get(mask)
        if cached is None:
            cached = self.query.needed_above(mask)
            self._needed_above_cache[mask] = cached
        return cached

    def _fresh_suffix(self) -> str:
        self._group_counter += 1
        return f"#g{self._group_counter}"

    # -- predicate metadata memos --------------------------------------------
    # Join predicates are a handful of stable objects (one per edge, plus
    # the conjunctions the edge resolver interns for cyclic queries), while
    # ``join`` runs once per plan pair — so ``attrs_of`` / equality-pair
    # extraction are cached per predicate *identity*.  The ``hit[0] is
    # predicate`` check guards against id() reuse after a predicate is
    # garbage collected.

    def _attrs_of(self, predicate: Expr) -> FrozenSet[str]:
        if not self.memo:
            return attrs_of(predicate)
        key = id(predicate)
        hit = self._pred_attrs.get(key)
        if hit is not None and hit[0] is predicate:
            return hit[1]
        attrs = attrs_of(predicate)
        self._pred_attrs[key] = (predicate, attrs)
        return attrs

    def _equality_pairs_of(self, predicate: Expr) -> Tuple[Tuple[str, str], ...]:
        if not self.memo:
            return tuple(_equality_pairs(predicate))
        key = id(predicate)
        hit = self._pred_eq_pairs.get(key)
        if hit is not None and hit[0] is predicate:
            return hit[1]
        pairs = tuple(_equality_pairs(predicate))
        self._pred_eq_pairs[key] = (predicate, pairs)
        return pairs

    # ------------------------------------------------------------------
    def leaf(self, vertex: int) -> PlanInfo:
        """Initial access path for one base relation (Fig. 5, lines 1–2)."""
        rel = self.query.relations[vertex]
        node: PlanNode = ScanNode(rel.name, rel.attributes)
        cardinality = float(rel.cardinality)
        local = self.query.local_predicates.get(vertex)
        if local is not None:
            predicate, selectivity = local
            node = SelectNode(predicate, node)
            cardinality *= selectivity
        mask = 1 << vertex
        terms = {
            name: self.original_calls[name]
            for name, source in self.term_sources.items()
            if source == mask
        }
        distinct = {a: rel.distinct_count(a) for a in rel.attributes}
        return PlanInfo(
            node=node,
            rel_set=mask,
            cost=self.cost_model.scan(cardinality),  # 0 under Cout (Sec. 4.4)
            cardinality=cardinality,
            keys=_minimal_keys(rel.all_keys()),
            duplicate_free=rel.duplicate_free,
            raw_attrs=frozenset(rel.attributes),
            distinct=distinct,
            terms=terms,
            scale_cols=(),
            defaults={},
            eagerness=0,
        )

    # ------------------------------------------------------------------
    def join(
        self,
        left: PlanInfo,
        right: PlanInfo,
        op: OpKind,
        predicate: Expr,
        selectivity: float,
        groupjoin_vector: Optional[AggVector] = None,
    ) -> Optional[PlanInfo]:
        """Join two plans; returns ``None`` if the aggregation state cannot
        be maintained (e.g. a non-scalable term)."""
        mask = left.rel_set | right.rel_set

        # --- aggregation state -----------------------------------------
        terms: Dict[str, AggCall] = {}
        try:
            if op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI):
                # Right side contributes no rows: left multiplicities are
                # unchanged, no ⊗ scaling required (Eqvs. 37/38).
                terms.update(left.terms)
                result_scale = left.scale_cols
            elif op is OpKind.GROUPJOIN:
                # Every left tuple appears exactly once; the groupjoin's own
                # vector absorbs the right side's scale columns instead.
                terms.update(left.terms)
                result_scale = left.scale_cols
            else:
                for name, call in left.terms.items():
                    terms[name] = _scale_call_cached(call, right.scale_cols)
                for name, call in right.terms.items():
                    terms[name] = _scale_call_cached(call, left.scale_cols)
                result_scale = left.scale_cols + right.scale_cols
        except Exception:
            return None

        gj_vector = groupjoin_vector
        if op is OpKind.GROUPJOIN and gj_vector is not None and right.scale_cols:
            from repro.aggregates.transform import NotScalableError, scale_vector

            try:
                gj_vector = scale_vector(gj_vector, right.scale_cols)
            except NotScalableError:
                return None

        raw_attrs: FrozenSet[str]
        if op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI):
            raw_attrs = left.raw_attrs
        elif op is OpKind.GROUPJOIN:
            assert gj_vector is not None
            raw_attrs = left.raw_attrs | frozenset(gj_vector.names())
        else:
            raw_attrs = left.raw_attrs | right.raw_attrs

        # Materialise terms whose sources are first fully covered here
        # (cross-side aggregates and groupjoin-output aggregates).
        for name, source in self.term_sources.items():
            if name in terms:
                continue
            if source & mask != source:
                continue
            call = self.original_calls[name]
            if not call.attributes() <= raw_attrs:
                return None  # raw inputs no longer available
            terms[name] = _scale_call_cached(call, result_scale)

        # --- plan node ---------------------------------------------------
        left_defaults: Tuple[Tuple[str, SqlValue], ...] = ()
        right_defaults: Tuple[Tuple[str, SqlValue], ...] = ()
        if op is OpKind.FULL_OUTER:
            left_defaults = tuple(sorted(left.defaults.items()))
            right_defaults = tuple(sorted(right.defaults.items()))
        elif op is OpKind.LEFT_OUTER:
            right_defaults = tuple(sorted(right.defaults.items()))
        node = JoinNode(
            op=op,
            predicate=predicate,
            left=left.node,
            right=right.node,
            left_defaults=left_defaults,
            right_defaults=right_defaults,
            groupjoin_vector=gj_vector,
        )

        # --- statistics ---------------------------------------------------
        join_attrs = self._attrs_of(predicate)
        cardinality = self._join_cardinality(op, left, right, join_attrs, selectivity)
        cost = left.cost + right.cost + self.cost_model.join(op, cardinality, left, right)
        keys = self._join_keys(op, left, right, join_attrs)
        duplicate_free = left.duplicate_free and (
            op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI, OpKind.GROUPJOIN)
            or right.duplicate_free
        )
        distinct = dict(left.distinct)
        if op not in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI, OpKind.GROUPJOIN):
            distinct.update(right.distinct)

        defaults = dict(left.defaults)
        if op not in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI):
            defaults.update(right.defaults)

        if op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI, OpKind.GROUPJOIN):
            equiv = left.equiv
        else:
            equiv = left.equiv + right.equiv
            if op is OpKind.INNER:
                # Only inner joins guarantee the equality for *every* output
                # row; outerjoin padding breaks it.
                equiv = _merge_equiv_cached(equiv, self._equality_pairs_of(predicate))

        from repro.plans.nodes import direct_grouping_children

        return PlanInfo(
            node=node,
            rel_set=mask,
            cost=cost,
            cardinality=cardinality,
            keys=keys,
            duplicate_free=duplicate_free,
            raw_attrs=raw_attrs,
            distinct=distinct,
            terms=terms,
            scale_cols=result_scale,
            defaults=defaults,
            eagerness=direct_grouping_children(node),
            equiv=equiv,
        )

    def _join_cardinality(
        self,
        op: OpKind,
        left: PlanInfo,
        right: PlanInfo,
        join_attrs: FrozenSet[str],
        selectivity: float,
    ) -> float:
        """Result-size estimate; existence-test terms use *distinct* join
        value counts, which are invariants of the relation set (see
        :mod:`repro.cardinality.estimate`)."""
        l_card, r_card = left.cardinality, right.cardinality
        if op is OpKind.INNER:
            return join_cardinality(l_card, r_card, selectivity)
        d_right = domain_product(
            [a for a in join_attrs if a in right.raw_attrs], right.distinct
        )
        d_left = domain_product(
            [a for a in join_attrs if a in left.raw_attrs], left.distinct
        )
        if op is OpKind.LEFT_OUTER:
            return outerjoin_cardinality(
                l_card, r_card, selectivity, full=False, right_join_values=d_right
            )
        if op is OpKind.FULL_OUTER:
            return outerjoin_cardinality(
                l_card, r_card, selectivity, full=True,
                right_join_values=d_right, left_join_values=d_left,
            )
        if op is OpKind.LEFT_SEMI:
            return semijoin_cardinality(l_card, r_card, selectivity, right_join_values=d_right)
        if op is OpKind.LEFT_ANTI:
            return antijoin_cardinality(l_card, r_card, selectivity, right_join_values=d_right)
        if op is OpKind.GROUPJOIN:
            return l_card
        raise AssertionError(op)

    def _join_keys(
        self, op: OpKind, left: PlanInfo, right: PlanInfo, join_attrs: FrozenSet[str]
    ) -> Tuple[FrozenSet[str], ...]:
        """κ for join results (Sec. 2.3)."""
        if op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI, OpKind.GROUPJOIN):
            return left.keys

        a1 = frozenset(a for a in join_attrs if a in left.raw_attrs)
        a2 = frozenset(a for a in join_attrs if a in right.raw_attrs)
        left_keyed = left.has_key_within(a1)
        right_keyed = right.has_key_within(a2)

        if op is OpKind.INNER:
            if left_keyed and right_keyed:
                return _minimal_keys(left.keys + right.keys)
            if left_keyed:
                return right.keys
            if right_keyed:
                return left.keys
            return _pairwise_keys(left.keys, right.keys)
        if op is OpKind.LEFT_OUTER:
            if right_keyed:
                return left.keys
            return _pairwise_keys(left.keys, right.keys)
        # full outerjoin: always combine (Sec. 2.3.3)
        return _pairwise_keys(left.keys, right.keys)

    # ------------------------------------------------------------------
    def group(self, plan: PlanInfo, group_attrs: FrozenSet[str]) -> Optional[PlanInfo]:
        """Push an eager grouping ``Γ_{G⁺}`` onto *plan* (the ``Valid`` +
        construction step of OpTrees, Fig. 6).

        Returns ``None`` when invalid: a term is neither decomposable nor
        preserved raw by the grouping attributes.
        """
        g_plus = _ordered(group_attrs)
        suffix = self._fresh_suffix()

        inner_items: List[AggItem] = []
        new_terms: Dict[str, AggCall] = {}
        new_defaults: Dict[str, SqlValue] = {}
        for name, call in plan.terms.items():
            if call.decomposable and not (call.kind is AggKind.AVG):
                inner_name = f"{name}{suffix}"
                try:
                    inner, outer = decompose_call(call, inner_name)
                except NotDecomposableError:
                    return None
                inner_items.append(AggItem(inner_name, inner))
                new_terms[name] = outer
                new_defaults[inner_name] = self.term_defaults[name]
            elif call.attributes() <= group_attrs:
                # Duplicate-agnostic, non-decomposable aggregates survive
                # verbatim when their inputs are grouping attributes.
                if not call.duplicate_agnostic:
                    return None
                new_terms[name] = call
            else:
                return None

        need_count = self._need_count(plan.rel_set)
        count_name: Optional[str] = None
        if need_count:
            count_call = _scale_call_cached(AggCall(AggKind.COUNT_STAR), plan.scale_cols)
            # Sec. 3.1.1: "since there already exists one count(*) ... we
            # keep only one of them" — reuse an identical inner column.
            for item in inner_items:
                if item.call == count_call:
                    count_name = item.name
                    break
            if count_name is None:
                count_name = f"#cnt{suffix}"
                inner_items.append(AggItem(count_name, count_call))
                new_defaults[count_name] = 1

        vector = AggVector(inner_items)
        node = GroupByNode(group_attrs=g_plus, vector=vector, child=plan.node)

        domain = distinct_after(g_plus, plan.distinct, plan.cardinality)
        cardinality = grouping_cardinality(plan.cardinality, domain)
        keys = _minimal_keys(
            (frozenset(g_plus),) + tuple(k for k in plan.keys if k <= group_attrs)
        )
        # Distinct counts stay *uncapped* in storage: they are relation-set
        # invariants, which keeps existence-test estimates identical across
        # all plans of a set (a precondition for sound dominance pruning).
        distinct = {a: plan.distinct.get(a, plan.cardinality) for a in g_plus}

        return PlanInfo(
            node=node,
            rel_set=plan.rel_set,
            cost=plan.cost + self.cost_model.group(cardinality, plan),  # Cout adds |Γ(e)|
            cardinality=cardinality,
            keys=keys,
            duplicate_free=True,
            raw_attrs=frozenset(g_plus),
            distinct=distinct,
            terms=new_terms,
            scale_cols=(count_name,) if count_name else (),
            defaults=new_defaults,
            eagerness=0,
            equiv=_restrict_equiv(plan.equiv, frozenset(g_plus)),
        )

    def _need_count(self, mask: int) -> bool:
        """Whether a pushed grouping on *mask* must carry a count column:
        some aggregate outside (or straddling) *mask* is duplicate
        sensitive and will need ⊗ scaling, or the grouping sits inside a
        groupjoin's right subtree whose vector F̂ is duplicate sensitive."""
        for name, source in self.term_sources.items():
            if source & ~mask and self.original_calls[name].duplicate_sensitive:
                return True
        for right_mask, sensitive in self._gj_scaling:
            if sensitive and mask & right_mask and not mask & ~right_mask:
                return True
        return False

    # ------------------------------------------------------------------
    def finish_top(self, plan: PlanInfo) -> PlanInfo:
        """Finalise a plan for the full relation set: add the top grouping,
        or eliminate it via Eqv. 42 when ``NeedsGrouping`` is false."""
        group_attrs = frozenset(self.query.group_by)
        names = [item.name for item in self.query.normalized.vector]
        post = self.query.normalized.post
        out_attrs = tuple(self.query.group_by) + tuple(name for name, _ in post)

        if not needs_grouping(group_attrs, plan):
            # Π_C(χ_F̂(e)) — the top grouping would see singleton groups.
            extensions = tuple((name, single_row_expr(plan.terms[name])) for name in names)
            node: PlanNode = MapNode(extensions, plan.node)
            avg_exprs = tuple((name, expr) for name, expr in post if name not in set(names))
            if avg_exprs:
                node = MapNode(avg_exprs, node)
            node = ProjectNode(out_attrs, node)
            return replace(
                plan,
                node=node,
                raw_attrs=frozenset(out_attrs),
                keys=_minimal_keys(tuple(k for k in plan.keys if k <= frozenset(out_attrs))),
            )

        vector = AggVector(AggItem(name, plan.terms[name]) for name in names)
        node = GroupByNode(
            group_attrs=tuple(self.query.group_by),
            vector=vector,
            child=plan.node,
            post=tuple(post) if _has_avg_post(post, names) else (),
        )
        domain = distinct_after(self.query.group_by, plan.distinct, plan.cardinality)
        cardinality = grouping_cardinality(plan.cardinality, domain)
        return PlanInfo(
            node=node,
            rel_set=plan.rel_set,
            cost=plan.cost + self.cost_model.group(cardinality, plan),
            cardinality=cardinality,
            keys=(group_attrs,) if group_attrs else (frozenset(),),
            duplicate_free=True,
            raw_attrs=frozenset(node.attributes),
            distinct={a: min(plan.distinct.get(a, cardinality), cardinality) for a in group_attrs},
            terms={},
            scale_cols=(),
            defaults={},
            eagerness=plan.eagerness,
        )


def _has_avg_post(post, names) -> bool:
    """True when the post projections do more than pass names through."""
    from repro.algebra.expressions import Attr

    for name, expr in post:
        if not (isinstance(expr, Attr) and expr.name == name):
            return True
    return False


def _ordered(attrs: FrozenSet[str]) -> Tuple[str, ...]:
    """Stable (sorted) ordering of grouping attributes."""
    return tuple(sorted(attrs))


@lru_cache(maxsize=65536)
def _pairwise_keys(
    keys1: Tuple[FrozenSet[str], ...], keys2: Tuple[FrozenSet[str], ...]
) -> Tuple[FrozenSet[str], ...]:
    combined = [k1 | k2 for k1 in keys1 for k2 in keys2]
    return _minimal_keys(combined)
