"""The DP-based plan generators (paper Sec. 4).

Entry point: :func:`optimize`, parameterised by the *strategy* — exactly the
component the paper varies while keeping enumeration, applicability test and
plan building shared (Fig. 5):

=============  =====================================================
``"dphyp"``    baseline DPhyp: lazy aggregation only (grouping on top)
``"ea-all"``   BuildPlansAll — complete search space (Sec. 4.3)
``"ea-prune"`` BuildPlansPrune — optimality-preserving pruning (Sec. 4.6)
``"h1"``       BuildPlansH1 — single-plan heuristic (Sec. 4.4)
``"h2"``       BuildPlansH2 — eagerness-adjusted costs (Sec. 4.5)
=============  =====================================================
"""

from repro.optimizer.config import OptimizerConfig
from repro.optimizer.costmodel import CostModel, CoutModel
from repro.optimizer.deadline import Deadline, PlanningDeadlineExceeded
from repro.optimizer.driver import (
    OptimizationResult,
    OptimizerHooks,
    PreparedQuery,
    optimize,
    prepare,
)
from repro.optimizer.planinfo import PlanBuilder, PlanInfo
from repro.optimizer.registry import (
    COST_MODELS,
    ENGINES,
    STRATEGIES,
    CostModelRegistry,
    StrategyRegistry,
)
from repro.optimizer.strategies import (
    DphypStrategy,
    EaAllStrategy,
    EaPruneStrategy,
    H1Strategy,
    H2Strategy,
    Strategy,
    make_strategy,
)

__all__ = [
    "optimize",
    "prepare",
    "OptimizationResult",
    "OptimizerConfig",
    "OptimizerHooks",
    "PreparedQuery",
    "Deadline",
    "PlanningDeadlineExceeded",
    "PlanBuilder",
    "PlanInfo",
    "make_strategy",
    "Strategy",
    "DphypStrategy",
    "EaAllStrategy",
    "EaPruneStrategy",
    "H1Strategy",
    "H2Strategy",
    "CostModel",
    "CoutModel",
    "StrategyRegistry",
    "CostModelRegistry",
    "STRATEGIES",
    "COST_MODELS",
    "ENGINES",
]
