"""Pluggable cost models for the DP driver.

The paper evaluates every strategy under ``Cout`` — the sum of
intermediate result sizes (Sec. 4.4; scans and final projections are
free).  The seed hard-coded that arithmetic into the plan builder; this
module turns it into a seam: a :class:`CostModel` contributes the cost of
each *operator*, and :class:`~repro.optimizer.planinfo.PlanBuilder`
composes total plan cost bottom-up (children's cost + the operator's
contribution).

Models register by name in
:data:`repro.optimizer.registry.COST_MODELS`, so a third-party model can
be selected through :class:`~repro.optimizer.config.OptimizerConfig`
without touching the driver::

    from repro.optimizer import COST_MODELS, CostModel

    @COST_MODELS.register("c-rows")
    class RowCountModel(CostModel):
        name = "c-rows"
        def scan(self, cardinality):
            return cardinality        # scans are not free here
        def join(self, op, output_cardinality, left, right):
            return output_cardinality
        def group(self, output_cardinality, child):
            return child.cardinality  # a grouping reads its input

A caveat the paper's Sec. 4.6 makes precise for Cout: EA-Prune's
dominance pruning (Def. 4) preserves optimality only for cost functions
that are monotone in the pruning criteria.  A custom model that is not
(e.g. one rewarding larger intermediates) keeps EA-All exact but can make
EA-Prune a heuristic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.optimizer.registry import COST_MODELS
from repro.rewrites.pushdown import OpKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.planinfo import PlanInfo


class CostModel:
    """Per-operator cost contributions; plan cost composes bottom-up.

    Each method returns the *operator's own* contribution — the plan
    builder adds the children's accumulated cost.  All inputs are
    estimates from :mod:`repro.cardinality.estimate`.
    """

    #: registry name; also part of the plan-cache key, so two models with
    #: the same name must price plans identically.
    name = "abstract"

    def scan(self, cardinality: float) -> float:
        """Cost of an access path producing *cardinality* rows."""
        raise NotImplementedError

    def join(
        self, op: OpKind, output_cardinality: float, left: "PlanInfo", right: "PlanInfo"
    ) -> float:
        """Cost of a join operator *op* producing *output_cardinality* rows."""
        raise NotImplementedError

    def group(self, output_cardinality: float, child: "PlanInfo") -> float:
        """Cost of a grouping producing *output_cardinality* groups."""
        raise NotImplementedError


class CoutModel(CostModel):
    """The paper's ``Cout``: every intermediate result is paid once.

    Scans are free, each join and each grouping costs its output
    cardinality — exactly the Sec. 4.4 definition the evaluation uses.
    """

    name = "cout"

    def scan(self, cardinality: float) -> float:
        return 0.0

    def join(
        self, op: OpKind, output_cardinality: float, left: "PlanInfo", right: "PlanInfo"
    ) -> float:
        return output_cardinality

    def group(self, output_cardinality: float, child: "PlanInfo") -> float:
        return output_cardinality


COST_MODELS.register("cout")(CoutModel)
