"""``engine="vectorized"``: the array-based DP core.

The indexed engine spends almost all of its time in
:meth:`PlanBuilder.join` / :meth:`PlanBuilder.group` — building a full
:class:`PlanInfo` (plan node, statistics dicts, key sets, aggregation
state) for *every* candidate a csg-cmp-pair generates, even though the
strategy immediately discards most of them.  This engine inverts that:

1. **Shapes.**  Plans of one DP-table entry collapse into *shape
   classes*: everything a candidate's cost/cardinality/validity depends
   on except ``(node, cost, cardinality)`` — relation set, raw
   attributes, distinct counts, keys, equivalences, aggregation state.
   Two plans of one shape produce, for any join/grouping applied on
   top, results that again differ only in ``(node, cost, cardinality)``
   (this is why the DP works at all), so one *representative* plan per
   shape answers every structural question for the whole class.
2. **Recipes.**  Per (left shape block, right shape block) of a
   csg-cmp-pair the engine runs the literal OpTrees code on the block's
   *first* pair — whose plans are real candidates the indexed engine
   would have built anyway, at the same suffix slot — and derives from
   those builds the closed-form cost/cardinality lane of each variant
   (operator, selectivity, miss probabilities, grouping-domain factors)
   plus the shape-pure facts (validity, FD signature, eagerness, result
   shape).  Probing therefore costs no extra builder work.
3. **Lanes.**  A csg-cmp-pair's candidates are then evaluated as numpy
   float64 arrays over the flattened bucket cost/cardinality vectors —
   one broadcasted expression per recipe variant instead of one builder
   call per candidate.  Every array expression replicates the scalar
   code's association order and ``max``/``min`` semantics (``np.where``
   mirrors Python's ``max(0.0, x)`` including NaN behaviour), and the
   transcendental grouping estimate calls the *real*
   :func:`~repro.cardinality.estimate.grouping_cardinality` /
   :func:`~repro.cardinality.estimate.distinct_after` per element, so
   lane values are bit-identical to the object path.
4. **Deferred materialisation.**  For EA-Prune, a vectorized
   pre-discard pass (one ``np.searchsorted`` per dominating frontier)
   marks candidates dominated by the pre-batch Pareto frontiers —
   sound because dominance is transitive across eviction chains — and
   an exact sequential pass then replays
   :meth:`EaPruneStrategy._insert_ordered` in arrival order,
   materialising a real plan only when it actually enters the bucket.
   Single-plan strategies (dphyp/h1/h2) and the top-level
   ``insert_top`` fold the lanes first and materialise only accepted
   plans.  Materialisation replays the builder at the exact suffix
   counter the indexed engine would have used (``#g<n>`` names are
   allocated per pair position), so emitted plans are byte-identical.

Exactness guardrails:

* every materialised plan's cost is asserted against its lane value —
  a recipe bug fails loudly instead of silently emitting a wrong plan,
* plans whose statistics dictionaries pick up *cardinality-dependent*
  entries (an eager grouping over a groupjoin output column) fall off
  the analytic path: such pairs run the literal OpTrees object code at
  their exact arrival slot ("opaque pairs"),
* unsupported configurations (numpy missing, ``ea-all``, custom
  strategies or cost models, unordered EA-Prune, ``on_plan`` hooks)
  make :func:`supports` return False and the driver falls back to the
  indexed engine — with a warning when numpy is the missing piece, so
  ``repro.server`` stays stdlib-only.

See docs/architecture.md ("hot path") for how the three engines relate.
"""

from __future__ import annotations

import re
from bisect import bisect_left, bisect_right
from typing import Dict, FrozenSet, List, Optional, Tuple

try:  # pragma: no cover - exercised via the numpy-less fallback suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.cardinality.estimate import (
    _miss_probability,
    distinct_after,
    domain_product,
    grouping_cardinality,
)
from repro.optimizer.costmodel import CoutModel
from repro.optimizer.edgeindex import JoinSpec
from repro.optimizer.planinfo import PlanBuilder, PlanInfo, needs_grouping
from repro.optimizer.strategies import (
    DphypStrategy,
    EaPruneStrategy,
    H1Strategy,
    H2Strategy,
    PruneBucket,
    Strategy,
    _fd_sig_dominates,
    _fd_sig_of,
)
from repro.plans.nodes import GroupByNode
from repro.query.spec import Query
from repro.rewrites.pushdown import OpKind, pushdown_valid_for


#: Builder-generated aggregate-column suffixes (``PlanBuilder._fresh_suffix``).
_SUFFIX_RE = re.compile(r"#g(\d+)")


def numpy_available() -> bool:
    """Whether the numpy lanes can run at all."""
    return _np is not None


def supports(strategy: Strategy, cost_model, on_plan) -> bool:
    """Whether this (strategy, cost model, hooks) combination can run on
    the analytic lanes.  Anything else falls back to the indexed engine.

    * ``on_plan`` hooks observe every candidate — deferred
      materialisation would change what they see,
    * only the exact ``CoutModel`` arithmetic is encoded in the lanes
      (a subclass may price operators differently),
    * ``ea-all`` keeps every plan, so there is nothing to defer, and
      custom strategy subclasses may implement any insert semantics,
    * unordered EA-Prune is the seed reference path by definition.
    """
    if _np is None or on_plan is not None:
        return False
    if type(cost_model) is not CoutModel:
        return False
    if type(strategy) is EaPruneStrategy:
        return strategy.ordered
    return type(strategy) in (DphypStrategy, H1Strategy, H2Strategy)


class _Shape:
    """One shape class: a representative plan standing in for every
    bucket plan that differs from it only in ``(node, cost, cardinality)``
    (up to the consistent renaming of builder-generated ``#g`` suffixes —
    plans tagged with a class's ``result_sid`` came from the same recipe
    variant at a different pair position — which no structural or float
    decision ever depends on)."""

    __slots__ = ("sid", "rep")

    def __init__(self, sid: int, rep: PlanInfo):
        self.sid = sid
        self.rep = rep


class _GroupLane:
    """Closed-form lane for an eager grouping pushed onto one side.

    ``carddep`` lists the grouping attributes the child has no distinct
    entry for: :meth:`PlanBuilder.group` falls back to the child's
    *cardinality* there (the groupjoin-output case), which makes the
    grouped plan's statistics vary across its shape class.  With no such
    attribute the grouping domain is a per-class scalar product and the
    whole lane is two ``np.where`` — exactly the early-exit semantics of
    :func:`distinct_after`, since all factors are >= 1.  Otherwise the
    real function runs per element with the representative's dict.
    """

    __slots__ = ("g_ordered", "child_distinct", "scalar_product", "carddep")

    def __init__(self, grouped_rep: PlanInfo, child_rep: PlanInfo):
        self.g_ordered: Tuple[str, ...] = grouped_rep.node.group_attrs
        self.child_distinct = child_rep.distinct
        self.carddep = frozenset(
            a for a in self.g_ordered if a not in child_rep.distinct
        )
        if self.carddep:
            self.scalar_product = None
        else:
            product = 1.0
            for a in self.g_ordered:
                product *= max(1.0, child_rep.distinct[a])
            self.scalar_product = product

    def eval(self, costs, cards):
        """(child cost, child card) arrays → (grouped cost, grouped card)."""
        if self.scalar_product is not None:
            product = self.scalar_product
            dom = _np.where(cards < product, cards, product)
            dom = _np.where(dom > 1.0, dom, 1.0)
        else:
            dom = _np.array(
                [
                    distinct_after(self.g_ordered, self.child_distinct, float(c))
                    for c in cards
                ],
                dtype=_np.float64,
            )
        gcard = _np.array(
            [grouping_cardinality(float(c), float(d)) for c, d in zip(cards, dom)],
            dtype=_np.float64,
        )
        return costs + gcard, gcard


class _Variant:
    """One OpTrees placement of a recipe: which sides are grouped, the
    miss-probability scalars its cardinality lane needs, and the
    shape-pure facts of its result."""

    __slots__ = (
        "rank",
        "use_gl",
        "use_gr",
        "m_right",
        "m_left",
        "sig",
        "eagerness",
        "result_sid",
        "tainted",
        "needs_top",
        "rep",
    )


class _Recipe:
    """All lane variants for one (left shape, right shape) block pair."""

    __slots__ = (
        "variants",
        "gl_lane",
        "gr_lane",
        "g_plus_l",
        "g_plus_r",
        "opaque",
        "top_opaque",
    )


class _Chunk:
    """One (block, variant) slice of a csg-cmp-pair's candidate lanes."""

    __slots__ = ("variant", "recipe", "sig", "ctx")

    def __init__(self, variant: _Variant, recipe: _Recipe, ctx: "_CcpContext"):
        self.variant = variant
        self.recipe = recipe
        self.sig = variant.sig
        self.ctx = ctx


class _CcpContext:
    """Per-ccp replay state shared by all chunks of the pair."""

    __slots__ = (
        "spec",
        "left_plans",
        "right_plans",
        "nr",
        "start",
        "spg",
        "s_l",
        "gl_cache",
        "gr_cache",
    )


class VectorEngine:
    """The vectorized DP core behind ``optimize(engine="vectorized")``."""

    def __init__(self, builder: PlanBuilder, strategy: Strategy, query: Query):
        self.builder = builder
        self.strategy = strategy
        self.query = query
        self.explore = strategy.explore_eager
        self.prune = strategy if isinstance(strategy, EaPruneStrategy) else None
        self.h2 = strategy if isinstance(strategy, H2Strategy) else None
        self.criteria = self.prune.criteria if self.prune is not None else None
        self._top_attrs = frozenset(query.group_by)
        self.shapes: List[_Shape] = []
        self._shape_keys: Dict[tuple, _Shape] = {}
        self.counters: Dict[str, int] = {
            "batched_pairs": 0,
            "opaque_pairs": 0,
            "singleton_pairs": 0,
            "lane_candidates": 0,
            "plans_materialized": 0,
            "prefilter_discards": 0,
            "shape_probes": 0,
        }

    # -- shape bookkeeping --------------------------------------------------
    def _sid_of(self, plan: PlanInfo) -> int:
        """The plan's shape id; ``-1`` marks statistics-tainted plans
        whose pairs must run the literal object code."""
        sid = plan.__dict__.get("_vec_sid")
        if sid is not None:
            return sid
        variant = plan.__dict__.get("_vec_variant")
        if variant is not None:
            # Result classes intern lazily: only plans that survive their
            # bucket long enough to be joined again ever pay for the
            # α-canonical key; the class is shared through the variant.
            sid = variant.result_sid
            if sid is None:
                sid = variant.result_sid = self._intern_result(variant.rep).sid
            object.__setattr__(plan, "_vec_sid", sid)
            return sid
        # Untagged plans — leaves and singleton-pair results — intern by
        # value.  Value interning is always sound: the α-canonical key
        # covers every statistics value, so plans sharing a class answer
        # every structural and float question identically.
        shape = self._intern_result(plan)
        object.__setattr__(plan, "_vec_sid", shape.sid)
        return shape.sid

    def _intern_result(self, plan: PlanInfo) -> _Shape:
        """Intern a join/group result under the α-canonical key.

        Probe reps are the *first pair* of their block, so their
        builder-generated ``#g<n>`` column names carry that pair's counter
        base; α-equivalent results from other splits or pair slots differ
        only in that numbering.  Renumbering suffixes by creation order
        (the α-bijection between equivalent plans is monotone in it — both
        were built by the same op sequence at different counter bases)
        makes the key invariant; every structural decision the builder
        makes is invariant under the consistent renaming, and real query
        attributes never contain ``#g``.
        """
        texts = list(plan.raw_attrs)
        texts.extend(plan.distinct)
        term_reprs = []
        for name, call in plan.terms.items():
            term_reprs.append((name, repr(call)))
            texts.append(name)
            texts.append(term_reprs[-1][1])
        texts.extend(plan.scale_cols)
        texts.extend(plan.defaults)
        for key_set in plan.keys:
            texts.extend(key_set)
        for cls in plan.equiv:
            texts.extend(cls)
        split_cache: Dict[str, list] = {}
        suffixes = set()
        for text in texts:
            if "#g" in text and text not in split_cache:
                parts = _SUFFIX_RE.split(text)
                for i in range(1, len(parts), 2):
                    parts[i] = int(parts[i])
                    suffixes.add(parts[i])
                split_cache[text] = parts
        if not suffixes:
            # Suffix-free plans are exact: frozensets hash and compare
            # order-independently, so no renaming or sorting is needed.
            key = (
                plan.rel_set,
                plan.raw_attrs,
                frozenset(plan.distinct.items()),
                plan.keys,
                plan.duplicate_free,
                plan.equiv,
                tuple(term_reprs),
                plan.scale_cols,
                frozenset((a, repr(v)) for a, v in plan.defaults.items()),
                plan.eagerness,
                isinstance(plan.node, GroupByNode),
            )
        else:
            ranks = {num: i for i, num in enumerate(sorted(suffixes))}

            def rn(text: str):
                # Renamed texts become (str, rank, str, ...) tuples — never
                # equal to a plain string, so the key stays injective.
                parts = split_cache.get(text)
                if parts is None:
                    return text
                return tuple(
                    ranks[p] if i & 1 else p for i, p in enumerate(parts)
                )

            key = (
                plan.rel_set,
                frozenset(rn(a) for a in plan.raw_attrs),
                frozenset((rn(a), v) for a, v in plan.distinct.items()),
                tuple(frozenset(rn(a) for a in ks) for ks in plan.keys),
                plan.duplicate_free,
                tuple(frozenset(rn(a) for a in cls) for cls in plan.equiv),
                tuple((rn(name), rn(text)) for name, text in term_reprs),
                tuple(rn(c) for c in plan.scale_cols),
                frozenset((rn(a), repr(v)) for a, v in plan.defaults.items()),
                plan.eagerness,
                isinstance(plan.node, GroupByNode),
            )
        shape = self._shape_keys.get(key)
        if shape is None:
            shape = _Shape(len(self.shapes), plan)
            self.shapes.append(shape)
            self._shape_keys[key] = shape
        return shape

    # -- recipe probing -----------------------------------------------------
    def _probe_pair(
        self, left: PlanInfo, right: PlanInfo, spec: JoinSpec
    ) -> Tuple[_Recipe, List[Tuple[int, PlanInfo]]]:
        """Run the literal OpTrees code on a block's *first* pair — the
        caller positions the suffix counter at that pair's slot first —
        returning both its ranked candidate plans and the lane recipe
        derived from them.  The indexed engine would have spent exactly
        these builder calls on the pair, so the probe itself is free."""
        self.counters["shape_probes"] += 1
        builder = self.builder
        op, sel, gjv = spec.op, spec.selectivity, spec.groupjoin_vector
        join_attrs = builder._attrs_of(spec.predicate)

        recipe = _Recipe()
        recipe.variants = []
        recipe.gl_lane = recipe.gr_lane = None
        recipe.g_plus_l = recipe.g_plus_r = None
        recipe.opaque = False
        recipe.top_opaque = False
        ranked: List[Tuple[int, PlanInfo]] = []
        grouped_left = grouped_right = None

        def add_variant(rank: int, use_gl: bool, use_gr: bool, rep: PlanInfo) -> None:
            l_eff = grouped_left if use_gl else left
            r_eff = grouped_right if use_gr else right
            carddep: FrozenSet[str] = frozenset()
            if use_gl:
                carddep |= recipe.gl_lane.carddep
            if use_gr:
                carddep |= recipe.gr_lane.carddep
            variant = _Variant()
            variant.rank = rank
            variant.use_gl = use_gl
            variant.use_gr = use_gr
            variant.m_right = variant.m_left = None
            if op not in (OpKind.INNER, OpKind.GROUPJOIN):
                # The estimator consults the sides' distinct counts; a
                # cardinality-dependent entry there would make the miss
                # probability vary across the class — not a lane.
                consult_r = [a for a in join_attrs if a in r_eff.raw_attrs]
                if use_gr and recipe.gr_lane.carddep.intersection(consult_r):
                    recipe.opaque = True
                    return
                variant.m_right = _miss_probability(
                    sel, domain_product(consult_r, r_eff.distinct)
                )
                if op is OpKind.FULL_OUTER:
                    consult_l = [a for a in join_attrs if a in l_eff.raw_attrs]
                    if use_gl and recipe.gl_lane.carddep.intersection(consult_l):
                        recipe.opaque = True
                        return
                    variant.m_left = _miss_probability(
                        sel, domain_product(consult_l, l_eff.distinct)
                    )
            variant.tainted = bool(carddep)
            variant.sig = _fd_sig_of(rep) if self.criteria == "full" else None
            variant.eagerness = rep.eagerness
            # None = not interned yet; _sid_of fills it in on first use.
            variant.result_sid = -1 if variant.tainted else None
            variant.needs_top = needs_grouping(self._top_attrs, rep)
            variant.rep = rep
            if variant.tainted and variant.needs_top:
                # The top-grouping estimate would read the varying
                # statistics: at the top this pair must go opaque.
                recipe.top_opaque = True
            recipe.variants.append(variant)

        # Builder-call order mirrors the driver's _op_trees exactly, so
        # the pair consumes its ``#g`` suffixes at the same positions.
        plain = builder.join(left, right, op, spec.predicate, sel, gjv)
        if plain is not None:
            ranked.append((0, plain))
            add_variant(0, False, False, plain)
        if self.explore and pushdown_valid_for(op, 1):
            recipe.g_plus_l = builder.needed_above(left.rel_set) & left.raw_attrs
            grouped_left = builder.group(left, recipe.g_plus_l)
            if grouped_left is not None:
                recipe.gl_lane = _GroupLane(grouped_left, left)
                rep = builder.join(grouped_left, right, op, spec.predicate, sel, gjv)
                if rep is not None:
                    ranked.append((1, rep))
                    add_variant(1, True, False, rep)
        if self.explore and pushdown_valid_for(op, 2):
            recipe.g_plus_r = builder.needed_above(right.rel_set) & right.raw_attrs
            grouped_right = builder.group(right, recipe.g_plus_r)
            if grouped_right is not None:
                recipe.gr_lane = _GroupLane(grouped_right, right)
                rep = builder.join(left, grouped_right, op, spec.predicate, sel, gjv)
                if rep is not None:
                    ranked.append((2, rep))
                    add_variant(2, False, True, rep)
        if grouped_left is not None and grouped_right is not None:
            rep = builder.join(grouped_left, grouped_right, op, spec.predicate, sel, gjv)
            if rep is not None:
                ranked.append((3, rep))
                add_variant(3, True, True, rep)
        recipe.top_opaque = recipe.top_opaque or recipe.opaque
        return recipe, ranked

    # -- lane evaluation ----------------------------------------------------
    def _join_lane(self, variant: _Variant, op: OpKind, sel: float, lc, lcd, rc, rcd):
        """Broadcastable (cost, cardinality) grids replicating the scalar
        estimators bit-for-bit — same association order, and ``np.where``
        for ``max(0.0, x)`` so NaN resolves the way Python ``max`` does."""
        if op is OpKind.INNER:
            prod = (lcd * rcd) * sel
            card = _np.where(prod > 0.0, prod, 0.0)
        elif op is OpKind.GROUPJOIN:
            card = lcd
        elif op is OpKind.LEFT_SEMI:
            card = lcd * (1.0 - variant.m_right)
        elif op is OpKind.LEFT_ANTI:
            card = lcd * variant.m_right
        elif op is OpKind.LEFT_OUTER:
            prod = (lcd * rcd) * sel
            inner = _np.where(prod > 0.0, prod, 0.0)
            card = inner + lcd * variant.m_right
        elif op is OpKind.FULL_OUTER:
            prod = (lcd * rcd) * sel
            inner = _np.where(prod > 0.0, prod, 0.0)
            card = (inner + lcd * variant.m_right) + rcd * variant.m_left
        else:  # pragma: no cover - the OpKind family is closed
            raise AssertionError(op)
        cost = (lc + rc) + card
        return cost, card

    # -- materialisation ----------------------------------------------------
    def _materialize(self, chunk: _Chunk, li: int, ri: int, expected_cost: float) -> PlanInfo:
        """Build the real plan for one accepted candidate, replaying the
        suffix counter the indexed engine would have used for its pair."""
        ctx = chunk.ctx
        variant = chunk.variant
        recipe = chunk.recipe
        builder = self.builder
        spec = ctx.spec
        pair = li * ctx.nr + ri
        base = ctx.start + pair * ctx.spg
        left_plan = ctx.left_plans[li]
        right_plan = ctx.right_plans[ri]
        if variant.use_gl:
            grouped = ctx.gl_cache.get(pair)
            if grouped is None:
                builder._group_counter = base
                grouped = builder.group(left_plan, recipe.g_plus_l)
                ctx.gl_cache[pair] = grouped
            left_plan = grouped
        if variant.use_gr:
            grouped = ctx.gr_cache.get(pair)
            if grouped is None:
                builder._group_counter = base + ctx.s_l
                grouped = builder.group(right_plan, recipe.g_plus_r)
                ctx.gr_cache[pair] = grouped
            right_plan = grouped
        plan = builder.join(
            left_plan, right_plan, spec.op, spec.predicate, spec.selectivity,
            spec.groupjoin_vector,
        )
        if plan is None or plan.cost != expected_cost:
            raise RuntimeError(
                "vectorized lane mismatch: materialised plan disagrees with "
                f"its lane cost ({None if plan is None else plan.cost} != {expected_cost})"
            )
        object.__setattr__(plan, "_vec_variant", variant)
        self.counters["plans_materialized"] += 1
        return plan

    # -- the per-ccp driver entry -------------------------------------------
    def process_ccp(
        self,
        table: Dict[int, object],
        spec: JoinSpec,
        left_set: int,
        right_set: int,
        all_mask: int,
    ) -> int:
        """Handle one csg-cmp-pair; returns the number of candidate plans
        generated (the driver's ``plans_built`` contribution)."""
        builder = self.builder
        left_plans = list(table[left_set])
        right_plans = list(table[right_set])
        nl, nr = len(left_plans), len(right_plans)
        op = spec.op
        s_l = 1 if self.explore and pushdown_valid_for(op, 1) else 0
        s_r = 1 if self.explore and pushdown_valid_for(op, 2) else 0
        spg = s_l + s_r
        start = builder._group_counter
        combined = left_set | right_set
        is_top = combined == all_mask

        ctx = _CcpContext()
        ctx.spec = spec
        ctx.left_plans = left_plans
        ctx.right_plans = right_plans
        ctx.nr = nr
        ctx.start = start
        ctx.spg = spg
        ctx.s_l = s_l
        ctx.gl_cache = {}
        ctx.gr_cache = {}

        l_sids = [self._sid_of(p) for p in left_plans]
        r_sids = [self._sid_of(p) for p in right_plans]
        l_cost = _np.array([p.cost for p in left_plans], dtype=_np.float64)
        l_card = _np.array([p.cardinality for p in left_plans], dtype=_np.float64)
        r_cost = _np.array([p.cost for p in right_plans], dtype=_np.float64)
        r_card = _np.array([p.cardinality for p in right_plans], dtype=_np.float64)

        l_blocks: Dict[int, List[int]] = {}
        for i, sid in enumerate(l_sids):
            l_blocks.setdefault(sid, []).append(i)
        r_blocks: Dict[int, List[int]] = {}
        for i, sid in enumerate(r_sids):
            r_blocks.setdefault(sid, []).append(i)

        chunks: List[_Chunk] = []
        chunk_cost: List[object] = []
        chunk_card: List[object] = []
        chunk_arrival: List[object] = []
        chunk_li: List[object] = []
        chunk_ri: List[object] = []
        opaque_pairs: List[int] = []
        opaque: List[Tuple[int, PlanInfo]] = []
        built = 0
        lane_built = 0
        # Grouping a side is a function of that side alone, so one lane
        # eval per (side block, ccp) serves every block it pairs with.
        gl_evals: Dict[int, Tuple[object, object]] = {}
        gr_evals: Dict[int, Tuple[object, object]] = {}

        for ls, l_pos_list in l_blocks.items():
            for rs, r_pos_list in r_blocks.items():
                if ls < 0 or rs < 0:
                    opaque_pairs.extend(li * nr + ri for li in l_pos_list for ri in r_pos_list)
                    continue
                size = len(l_pos_list) * len(r_pos_list)
                first_li, first_ri = l_pos_list[0], r_pos_list[0]
                first_pair = first_li * nr + first_ri
                builder._group_counter = start + first_pair * spg
                if size == 1:
                    # A lane recipe only pays off when it covers more than
                    # one pair; a singleton block runs the literal OpTrees
                    # code and its plans intern lazily by value.
                    for rank, plan in self._op_trees_ranked(
                        left_plans[first_li], right_plans[first_ri], spec
                    ):
                        built += 1
                        opaque.append((first_pair * 4 + rank, plan))
                    self.counters["singleton_pairs"] += 1
                    continue
                # The block's first pair runs the literal OpTrees code at
                # its exact suffix slot: its plans are real candidates AND
                # the probe the block's lane recipe derives from.
                recipe, ranked = self._probe_pair(
                    left_plans[first_li], right_plans[first_ri], spec
                )
                if not is_top:
                    if recipe.opaque:
                        for _rank, plan in ranked:
                            object.__setattr__(plan, "_vec_sid", -1)
                    else:
                        by_rank = {v.rank: v for v in recipe.variants}
                        for rank, plan in ranked:
                            object.__setattr__(plan, "_vec_variant", by_rank[rank])
                for rank, plan in ranked:
                    built += 1
                    opaque.append((first_pair * 4 + rank, plan))
                if recipe.opaque or (is_top and recipe.top_opaque):
                    opaque_pairs.extend(
                        li * nr + ri
                        for li in l_pos_list
                        for ri in r_pos_list
                        if li * nr + ri != first_pair
                    )
                    continue
                if not recipe.variants:
                    continue
                self.counters["batched_pairs"] += size - 1
                l_pos = _np.array(l_pos_list, dtype=_np.int64)
                r_pos = _np.array(r_pos_list, dtype=_np.int64)
                grid = (len(l_pos_list), len(r_pos_list))
                lc = l_cost[l_pos][:, None]
                lcd = l_card[l_pos][:, None]
                rc = r_cost[r_pos][None, :]
                rcd = r_card[r_pos][None, :]
                # The first pair is grid cell (0, 0) — flat index 0, the
                # position lists being ascending — and already ran above:
                # drop it from every lane.
                pair_grid = (l_pos[:, None] * nr + r_pos[None, :]).ravel()[1:]
                li_grid = _np.repeat(l_pos, len(r_pos_list))[1:]
                ri_grid = _np.tile(r_pos, len(l_pos_list))[1:]
                glc = glcd = grc = grcd = None
                if recipe.gl_lane is not None and any(v.use_gl for v in recipe.variants):
                    ev = gl_evals.get(ls)
                    if ev is None:
                        ev = gl_evals[ls] = recipe.gl_lane.eval(l_cost[l_pos], l_card[l_pos])
                    glc, glcd = ev[0][:, None], ev[1][:, None]
                if recipe.gr_lane is not None and any(v.use_gr for v in recipe.variants):
                    ev = gr_evals.get(rs)
                    if ev is None:
                        ev = gr_evals[rs] = recipe.gr_lane.eval(r_cost[r_pos], r_card[r_pos])
                    grc, grcd = ev[0][None, :], ev[1][None, :]
                for variant in recipe.variants:
                    cost, card = self._join_lane(
                        variant,
                        op,
                        spec.selectivity,
                        glc if variant.use_gl else lc,
                        glcd if variant.use_gl else lcd,
                        grc if variant.use_gr else rc,
                        grcd if variant.use_gr else rcd,
                    )
                    chunks.append(_Chunk(variant, recipe, ctx))
                    chunk_cost.append(_np.broadcast_to(cost, grid).ravel()[1:])
                    chunk_card.append(_np.broadcast_to(card, grid).ravel()[1:])
                    chunk_arrival.append(pair_grid * 4 + variant.rank)
                    chunk_li.append(li_grid)
                    chunk_ri.append(ri_grid)
                    lane_built += size - 1

        built += lane_built
        self.counters["lane_candidates"] += lane_built

        # Remaining opaque pairs run the literal OpTrees code at their slot.
        if opaque_pairs:
            self.counters["opaque_pairs"] += len(opaque_pairs)
            for pair in sorted(opaque_pairs):
                li, ri = divmod(pair, nr)
                builder._group_counter = start + pair * spg
                for rank, plan in self._op_trees_ranked(left_plans[li], right_plans[ri], spec):
                    built += 1
                    if not is_top:
                        object.__setattr__(plan, "_vec_sid", -1)
                    opaque.append((pair * 4 + rank, plan))

        try:
            if is_top:
                self._fold_top(table, combined, chunks, chunk_cost, chunk_card,
                               chunk_arrival, chunk_li, chunk_ri, opaque)
            elif self.prune is not None:
                self._fold_prune(table, combined, chunks, chunk_cost, chunk_card,
                                 chunk_arrival, chunk_li, chunk_ri, opaque)
            else:
                self._fold_single(table, combined, chunks, chunk_cost,
                                  chunk_arrival, chunk_li, chunk_ri, opaque)
        finally:
            # The indexed engine consumes exactly one suffix per group()
            # call, valid side and pair — restore the absolute position.
            builder._group_counter = start + nl * nr * spg
        return built

    def _op_trees_ranked(self, left: PlanInfo, right: PlanInfo, spec: JoinSpec):
        """The driver's ``_op_trees`` with explicit variant ranks."""
        builder = self.builder
        plain = builder.join(
            left, right, spec.op, spec.predicate, spec.selectivity, spec.groupjoin_vector
        )
        if plain is not None:
            yield 0, plain
        if not self.explore:
            return
        grouped_left = grouped_right = None
        if pushdown_valid_for(spec.op, 1):
            g_plus = builder.needed_above(left.rel_set) & left.raw_attrs
            grouped_left = builder.group(left, g_plus)
            if grouped_left is not None:
                plan = builder.join(
                    grouped_left, right, spec.op, spec.predicate, spec.selectivity,
                    spec.groupjoin_vector,
                )
                if plan is not None:
                    yield 1, plan
        if pushdown_valid_for(spec.op, 2):
            g_plus = builder.needed_above(right.rel_set) & right.raw_attrs
            grouped_right = builder.group(right, g_plus)
            if grouped_right is not None:
                plan = builder.join(
                    left, grouped_right, spec.op, spec.predicate, spec.selectivity,
                    spec.groupjoin_vector,
                )
                if plan is not None:
                    yield 2, plan
        if grouped_left is not None and grouped_right is not None:
            plan = builder.join(
                grouped_left, grouped_right, spec.op, spec.predicate, spec.selectivity,
                spec.groupjoin_vector,
            )
            if plan is not None:
                yield 3, plan

    # -- folds ---------------------------------------------------------------
    def _fold_top(self, table, combined, chunks, chunk_cost, chunk_card,
                  chunk_arrival, chunk_li, chunk_ri, opaque) -> None:
        """``insert_top``: keep the first strictly-cheapest finalised
        plan.  Only the winner is ever materialised."""
        builder = self.builder
        fcosts: List[object] = []
        for chunk, cost, card in zip(chunks, chunk_cost, chunk_card):
            variant = chunk.variant
            if not variant.needs_top:
                # Eqv. 42 elimination: Π(χ(e)) keeps cost and cardinality.
                fcosts.append(cost)
                continue
            rep_distinct = variant.rep.distinct
            group_by = self.query.group_by
            fcosts.append(
                cost
                + _np.array(
                    [
                        grouping_cardinality(
                            float(c), distinct_after(group_by, rep_distinct, float(c))
                        )
                        for c in card
                    ],
                    dtype=_np.float64,
                )
            )
        finished_opaque: Dict[int, PlanInfo] = {}
        o_arrival = o_fcost = None
        if opaque:
            o_arrival = _np.array([a for a, _ in opaque], dtype=_np.int64)
            o_fcost = _np.empty(len(opaque), dtype=_np.float64)
            for i, (arrival, plan) in enumerate(opaque):
                finished = builder.finish_top(plan)
                finished_opaque[arrival] = finished
                o_fcost[i] = finished.cost
        parts = fcosts + ([o_fcost] if opaque else [])
        if not parts:
            return
        fcost_all = _np.concatenate(parts)
        arrival_all = _np.concatenate(chunk_arrival + ([o_arrival] if opaque else []))
        order = _np.argsort(arrival_all)
        sorted_fcost = fcost_all[order]
        # argmin returns the first minimum of the arrival-sorted array:
        # exactly the plan a sequential strict-< fold would keep.
        win = int(_np.argmin(sorted_fcost))
        win_cost = float(sorted_fcost[win])
        bucket = table.get(combined)
        if bucket is None:
            bucket = table[combined] = []
        if bucket and not (win_cost < bucket[0].cost):
            return
        flat = int(order[win])
        n_lane = len(fcost_all) - len(opaque)
        if flat >= n_lane:
            finished = finished_opaque[int(arrival_all[flat])]
        else:
            idx = flat
            finished = None
            for ci, cost in enumerate(chunk_cost):
                if idx < len(cost):
                    joined = self._materialize(
                        chunks[ci], int(chunk_li[ci][idx]), int(chunk_ri[ci][idx]),
                        float(cost[idx]),
                    )
                    finished = builder.finish_top(joined)
                    break
                idx -= len(cost)
            if finished is None:  # pragma: no cover - index arithmetic is exhaustive
                raise AssertionError("top candidate index out of range")
            if finished.cost != win_cost:
                raise RuntimeError(
                    "vectorized lane mismatch at top level "
                    f"({finished.cost} != {win_cost})"
                )
        if bucket:
            bucket[0] = finished
        else:
            bucket.append(finished)

    def _fold_single(self, table, combined, chunks, chunk_cost,
                     chunk_arrival, chunk_li, chunk_ri, opaque) -> None:
        """dphyp/h1/h2 buckets: a single surviving plan, replaced by the
        strategy's comparison; losers are never materialised."""
        candidates = []
        for chunk, cost, arrival, li, ri in zip(
            chunks, chunk_cost, chunk_arrival, chunk_li, chunk_ri
        ):
            cost_l = cost.tolist()
            arrival_l = arrival.tolist()
            li_l = li.tolist()
            ri_l = ri.tolist()
            for k in range(len(cost_l)):
                candidates.append(
                    (arrival_l[k], cost_l[k], chunk, li_l[k], ri_l[k], None)
                )
        for arrival, plan in opaque:
            candidates.append((arrival, plan.cost, None, 0, 0, plan))
        if not candidates:
            return
        candidates.sort(key=lambda c: c[0])
        bucket = table.get(combined)
        if bucket is None:
            bucket = table[combined] = []
        current = bucket[0] if bucket else None
        h2 = self.h2
        for arrival, cost, chunk, li, ri, plan in candidates:
            if current is None:
                accept = True
            elif h2 is not None:
                eagerness = plan.eagerness if chunk is None else chunk.variant.eagerness
                accept = _compare_adjusted(
                    h2.factor, cost, eagerness, current.cost, current.eagerness
                )
            else:
                accept = cost < current.cost
            if not accept:
                continue
            if plan is None:
                plan = self._materialize(chunk, li, ri, cost)
            if bucket:
                bucket[0] = plan
            else:
                bucket.append(plan)
            current = plan

    def _fold_prune(self, table, combined, chunks, chunk_cost, chunk_card,
                    chunk_arrival, chunk_li, chunk_ri, opaque) -> None:
        """EA-Prune: vectorized pre-discard against the pre-batch Pareto
        frontiers, then an exact arrival-order replay of
        ``_insert_ordered`` that materialises only entering plans."""
        bucket = table.get(combined)
        if bucket is None:
            bucket = table[combined] = PruneBucket()
        full = self.criteria == "full"
        cost_only = self.criteria == "cost-only"
        counters = self.strategy.counters
        n_chunks = len(chunks)

        # Vectorized pre-discard: a candidate dominated by a *pre-batch*
        # frontier is also dominated at its own arrival time — frontiers
        # only lose plans to dominating candidates, and dominance is
        # transitive, so some live dominator always remains.
        pre_parts: List[object] = []
        if n_chunks:
            snapshots: Dict[int, Tuple[object, object]] = {}
            fallback: Dict[object, List[object]] = {}
            for chunk, cost, card in zip(chunks, chunk_cost, chunk_card):
                dcard = _np.zeros_like(card) if cost_only else card
                mask = _np.zeros(len(cost), dtype=bool)
                if full:
                    registered = bucket.dominating.get(chunk.sig)
                    if registered is not None:
                        # The adjacency list is maintained incrementally by
                        # ``frontier_for`` and is exactly the dominating set.
                        dominating = [entry for entry in registered if entry[0]]
                    else:
                        # Unregistered signature: scan the frontiers once
                        # per distinct sig (chunks often share one).
                        dominating = fallback.get(chunk.sig)
                        if dominating is None:
                            dominating = fallback[chunk.sig] = [
                                entry
                                for f_sig, entry in bucket.frontiers.items()
                                if entry[0] and _fd_sig_dominates(f_sig, chunk.sig)
                            ]
                else:
                    entry = bucket.frontiers.get(None)
                    dominating = [entry] if entry is not None and entry[0] else []
                for entry in dominating:
                    arrays = snapshots.get(id(entry))
                    if arrays is None:
                        arrays = (
                            _np.array(entry[0], dtype=_np.float64),
                            _np.array(entry[1], dtype=_np.float64),
                        )
                        snapshots[id(entry)] = arrays
                    costs_arr, cards_arr = arrays
                    at = _np.searchsorted(costs_arr, cost, side="right") - 1
                    valid = at >= 0
                    mask |= valid & (cards_arr[_np.where(valid, at, 0)] <= dcard)
                pre_parts.append(mask)
            self.counters["prefilter_discards"] += int(
                sum(int(m.sum()) for m in pre_parts)
            )

        sizes = [len(c) for c in chunk_cost]
        n_opaque = len(opaque)
        total = sum(sizes) + n_opaque
        if not total:
            return
        cost_all = _np.concatenate(
            chunk_cost
            + ([_np.array([p.cost for _, p in opaque], dtype=_np.float64)] if opaque else [])
        )
        if cost_only:
            card_all = _np.zeros(total, dtype=_np.float64)
        else:
            card_all = _np.concatenate(
                chunk_card
                + ([_np.array([p.cardinality for _, p in opaque], dtype=_np.float64)]
                   if opaque else [])
            )
        arrival_all = _np.concatenate(
            chunk_arrival
            + ([_np.array([a for a, _ in opaque], dtype=_np.int64)] if opaque else [])
        )
        chunk_ids = _np.concatenate(
            [_np.full(size, ci, dtype=_np.int64) for ci, size in enumerate(sizes)]
            + ([_np.full(n_opaque, -1, dtype=_np.int64)] if opaque else [])
        )
        li_all = _np.concatenate(
            chunk_li + ([_np.zeros(n_opaque, dtype=_np.int64)] if opaque else [])
        )
        ri_all = _np.concatenate(
            chunk_ri + ([_np.zeros(n_opaque, dtype=_np.int64)] if opaque else [])
        )
        pre_all = _np.concatenate(
            (pre_parts if pre_parts else [_np.empty(0, dtype=bool)])
            + ([_np.zeros(n_opaque, dtype=bool)] if opaque else [])
        )
        opaque_plans = dict(opaque)

        order = _np.argsort(arrival_all)
        chunk_arr = chunk_ids[order]
        cost_s = cost_all[order].tolist()
        card_s = card_all[order].tolist()
        arrival_s = arrival_all[order].tolist()
        chunk_s = chunk_arr.tolist()
        li_s = li_all[order].tolist()
        ri_s = ri_all[order].tolist()
        pre_s = pre_all[order].tolist()

        # Sequential replay of _insert_ordered in arrival order.  Runs of
        # pre-discarded candidates whose signatures are already registered
        # cannot change any frontier or adjacency list — only counters
        # move, and those are replicated in bulk.
        seen = [False] * n_chunks
        i = 0
        n = total
        while i < n:
            cid = chunk_s[i]
            if pre_s[i] and cid >= 0 and seen[cid]:
                j = i + 1
                while j < n:
                    cj = chunk_s[j]
                    if not (pre_s[j] and cj >= 0 and seen[cj]):
                        break
                    j += 1
                run = j - i
                counters["prune_inserts"] += run
                counters["plans_discarded"] += run
                counts = _np.bincount(chunk_arr[i:j], minlength=n_chunks)
                for cid2 in _np.nonzero(counts)[0]:
                    counters["dominance_checks"] += int(counts[cid2]) * len(
                        bucket.dominating[chunks[int(cid2)].sig]
                    )
                i = j
                continue
            counters["prune_inserts"] += 1
            if cid >= 0:
                chunk = chunks[cid]
                sig = chunk.sig
                seen[cid] = True
                plan = None
            else:
                plan = opaque_plans[arrival_s[i]]
                sig = _fd_sig_of(plan) if full else None
            own = bucket.frontier_for(sig)
            dominating = bucket.dominating[sig]
            counters["dominance_checks"] += len(dominating)
            cost = cost_s[i]
            card = card_s[i]
            if pre_s[i]:
                counters["plans_discarded"] += 1
                i += 1
                continue
            discarded = False
            for costs, cards, _plans in dominating:
                at = bisect_right(costs, cost) - 1
                if at >= 0 and cards[at] <= card:
                    counters["plans_discarded"] += 1
                    discarded = True
                    break
            if discarded:
                i += 1
                continue
            for costs, cards, plans in bucket.dominated[sig]:
                lo = bisect_left(costs, cost)
                hi = lo
                size = len(costs)
                while hi < size and cards[hi] >= card:
                    hi += 1
                if hi > lo:
                    del costs[lo:hi]
                    del cards[lo:hi]
                    del plans[lo:hi]
                    bucket.count -= hi - lo
                    counters["plans_evicted"] += hi - lo
            if plan is None:
                plan = self._materialize(chunk, li_s[i], ri_s[i], cost)
            costs, cards, plans = own
            at = bisect_left(costs, cost)
            costs.insert(at, cost)
            cards.insert(at, card)
            plans.insert(at, plan)
            bucket.count += 1
            i += 1


def _compare_adjusted(factor: float, new_cost: float, new_eagerness: int,
                      old_cost: float, old_eagerness: int) -> bool:
    """``CompareAdjustedCosts`` (Fig. 12) on lane scalars."""
    if new_eagerness == old_eagerness:
        return new_cost < old_cost
    if new_eagerness < old_eagerness:
        return factor * new_cost < old_cost
    return new_cost < factor * old_cost
