"""Per-edge join-spec precomputation and TES-mask indexing.

The seed driver re-derived, for *every* enumerated csg-cmp-pair, which
annotated edges cross the pair — a linear scan over all edges with four
subset tests each — and then re-fetched the edge's predicate, selectivity
and groupjoin vector from the query.  This module hoists all of that to
preparation time:

* one immutable :class:`JoinSpec` per edge and orientation, built once,
* a per-vertex index over edge orientations: orientation ``(a, b)`` is
  filed under ``min(a)``, so the crossing edges of ``(S1, S2)`` are found
  by scanning only the orientations whose ``min`` vertex lies in S1 —
  every crossing edge has the min vertex of its S1-side inside S1,
* an interning cache for the conjoined predicates of multi-edge ccps
  (cyclic inner-join queries), keyed by the crossing edge-id tuple, so
  each distinct predicate/selectivity combination is built once per run
  and plan builders can memoise per predicate identity.

``counters`` feeds the ``stats`` block of
:class:`~repro.optimizer.driver.OptimizationResult`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import conjunction
from repro.conflict.detector import AnnotatedEdge
from repro.hypergraph.bitset import bits_of, lowest_bit
from repro.query.spec import Query
from repro.rewrites.pushdown import OpKind


class JoinSpec:
    """Resolved operator for one csg-cmp-pair: op, predicate, selectivity."""

    __slots__ = ("op", "predicate", "selectivity", "groupjoin_vector", "swap")

    def __init__(self, op, predicate, selectivity, groupjoin_vector, swap):
        self.op = op
        self.predicate = predicate
        self.selectivity = selectivity
        self.groupjoin_vector = groupjoin_vector
        self.swap = swap


class EdgeResolver:
    """Answers ``Applicable``/operator-resolution queries for one prepared
    query, from precomputed per-edge specs and a min-vertex orientation
    index."""

    __slots__ = (
        "_query",
        "_sides_by_min",
        "_specs",
        "_conjunctions",
        "counters",
    )

    def __init__(self, annotated: Sequence[AnnotatedEdge], query: Query):
        self._query = query
        n = len(query.relations)
        # seq is the edge's position in `annotated` — crossing lists are
        # sorted by it so multi-edge conjunction and selectivity products
        # fold in exactly the seed's (annotated-order) sequence, keeping
        # float results bit-identical.
        self._sides_by_min: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
        self._specs: List[Tuple[AnnotatedEdge, JoinSpec, JoinSpec]] = []
        for seq, edge in enumerate(annotated):
            join_edge = query.edge(edge.edge_id)
            plain = JoinSpec(
                edge.op, join_edge.predicate, join_edge.selectivity,
                join_edge.groupjoin_vector, swap=False,
            )
            swapped = JoinSpec(
                edge.op, join_edge.predicate, join_edge.selectivity,
                join_edge.groupjoin_vector, swap=True,
            )
            self._specs.append((edge, plain, swapped))
            self._sides_by_min[lowest_bit(edge.l_tes)].append((edge.l_tes, edge.r_tes, seq))
            self._sides_by_min[lowest_bit(edge.r_tes)].append((edge.r_tes, edge.l_tes, seq))
        self._conjunctions: Dict[Tuple[int, ...], Tuple[object, float]] = {}
        self.counters: Dict[str, int] = {"resolve_calls": 0, "edge_sides_scanned": 0}

    def resolve(self, s1: int, s2: int) -> Optional[JoinSpec]:
        """Determine the operator applied when joining *s1* and *s2*.

        Exactly one edge crossing: use its operator (checking applicability
        in both orientations; non-commutative operators fix the
        orientation).  Multiple crossing edges: only legal when all of them
        are inner joins — their predicates are conjoined and selectivities
        multiplied.
        """
        counters = self.counters
        counters["resolve_calls"] += 1
        sides_by_min = self._sides_by_min
        crossing: List[int] = []
        scanned = 0
        for v in bits_of(s1):
            for a, b, seq in sides_by_min[v]:
                scanned += 1
                if not (a & ~s1) and not (b & ~s2):
                    crossing.append(seq)
        counters["edge_sides_scanned"] += scanned
        if not crossing:
            return None

        if len(crossing) == 1:
            edge, plain, swapped = self._specs[crossing[0]]
            if edge.applicable(s1, s2):
                return plain
            if edge.applicable(s2, s1):
                return swapped
            return None

        # Several predicates meet at this ccp (cyclic inner-join queries).
        crossing.sort()
        specs = self._specs
        for seq in crossing:
            edge = specs[seq][0]
            if edge.op is not OpKind.INNER:
                return None
            if not (edge.applicable(s1, s2) or edge.applicable(s2, s1)):
                return None
        key = tuple(crossing)
        interned = self._conjunctions.get(key)
        if interned is None:
            predicates = []
            selectivity = 1.0
            for seq in crossing:
                join_edge = self._query.edge(specs[seq][0].edge_id)
                predicates.append(join_edge.predicate)
                selectivity *= join_edge.selectivity
            interned = (conjunction(predicates), selectivity)
            self._conjunctions[key] = interned
        predicate, selectivity = interned
        return JoinSpec(OpKind.INNER, predicate, selectivity, None, swap=False)
