"""Named registries for the optimizer's pluggable components.

The driver is parameterised by exactly two interchangeable pieces — the
*BuildPlans strategy* (Figs. 9–14) and the *cost model* (Sec. 4.4).  Both
plug in by name: factories register under one primary name (plus optional
aliases) and :class:`~repro.optimizer.config.OptimizerConfig` selects
them without the driver ever enumerating what exists.

Registration is decorator-based::

    from repro.optimizer import STRATEGIES, Strategy

    @STRATEGIES.register("greedy-top")
    def _greedy(factor=1.03, **_options):
        return GreedyTopStrategy()

Factories are called with keyword options; today the driver passes
``factor`` (H2's tolerance), so factories should accept ``**_options``
for forward compatibility.  Classes can be registered directly when their
constructor already fits (``COST_MODELS.register("cout")(CoutModel)``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, TypeVar

F = TypeVar("F", bound=Callable)


class Registry:
    """A case-insensitive name → factory mapping with aliases."""

    #: what the registry holds, for error messages ("strategy", ...).
    kind = "component"

    def __init__(self) -> None:
        self._factories: Dict[str, Callable] = {}
        self._primary: List[str] = []
        #: primary name → every key (primary + aliases) of its registration,
        #: so a replacement retires the old aliases instead of leaving them
        #: pointing at the replaced factory.
        self._group: Dict[str, Tuple[str, ...]] = {}

    def register(self, name: str, *aliases: str, replace: bool = False) -> Callable[[F], F]:
        """Decorator: register the factory under *name* (and *aliases*).

        Registering an already-taken name raises unless ``replace=True``.
        Replacement addresses the *primary* name (replacing through an
        alias raises) and retires the previous registration's aliases —
        two spellings must never resolve to different components.
        """

        def decorator(factory: F) -> F:
            keys = [n.lower() for n in (name, *aliases)]
            primary = keys[0]
            if replace and primary in self._factories and primary not in self._group:
                raise ValueError(
                    f"{self.kind} {primary!r} is an alias; replace via its primary name"
                )
            retired = self._group.get(primary, ()) if replace else ()
            clashes = [k for k in keys if k in self._factories and k not in retired]
            if clashes:
                raise ValueError(f"{self.kind} {clashes[0]!r} is already registered")
            for key in retired:
                del self._factories[key]
            if primary not in self._primary:
                self._primary.append(primary)
            self._group[primary] = tuple(keys)
            for key in keys:
                self._factories[key] = factory
            return factory

        return decorator

    def create(self, name: str, **options):
        """Instantiate the component registered under *name*."""
        factory = self._factories.get(name.lower()) if isinstance(name, str) else None
        if factory is None:
            known = ", ".join(self.names())
            raise ValueError(f"unknown {self.kind} {name!r} (registered: {known})")
        return factory(**options)

    def names(self) -> Tuple[str, ...]:
        """Primary names, in registration order (aliases excluded)."""
        return tuple(self._primary)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._factories

    def __iter__(self):
        return iter(self._primary)


class StrategyRegistry(Registry):
    """Registry of BuildPlans strategies (:class:`~repro.optimizer.strategies.Strategy`)."""

    kind = "strategy"


class CostModelRegistry(Registry):
    """Registry of cost models (:class:`~repro.optimizer.costmodel.CostModel`)."""

    kind = "cost model"


#: The driver's execution engines, in documentation order.  Engines are
#: *code paths* through :func:`repro.optimizer.optimize` — all three
#: produce bit-identical output, so unlike strategies and cost models
#: they are a closed set (a fixed tuple, not a plug-in registry) and are
#: excluded from plan-cache keys:
#:
#: * ``"indexed"`` — the default hot path (iterative enumerator, edge
#:   index, memoised builder, ordered Pareto buckets),
#: * ``"reference"`` — the seed's code path, kept as the executable spec,
#: * ``"vectorized"`` — numpy array lanes with deferred plan
#:   materialisation (falls back to ``"indexed"`` when numpy or lane
#:   support is missing).
ENGINES: Tuple[str, ...] = ("indexed", "reference", "vectorized")

#: the process-wide strategy registry; built-ins register on import of
#: :mod:`repro.optimizer.strategies`.
STRATEGIES = StrategyRegistry()

#: the process-wide cost-model registry; ``"cout"`` registers on import of
#: :mod:`repro.optimizer.costmodel` via :mod:`repro.optimizer.config`.
COST_MODELS = CostModelRegistry()
