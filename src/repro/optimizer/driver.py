"""The DP driver: DPhyp enumeration + OpTrees + strategy insertion.

This is the paper's Fig. 5 skeleton with the eager-aggregation extensions:

1. initialise the DP table with access paths,
2. enumerate csg-cmp-pairs of the conflict hypergraph,
3. test operator applicability (conflict rules),
4. build plans — ``OpTrees`` generates up to four grouping placements per
   join (Fig. 8), and the chosen strategy decides what survives,
5. finalise plans for the full relation set (top grouping or Eqv.-42
   elimination) through ``InsertTopLevelPlan``.

Three engines drive the same skeleton (see docs/architecture.md):

* ``engine="indexed"`` (default) — the hot path: iterative enumerator over
  the indexed/memoised hypergraph, per-edge join specs resolved through
  :class:`~repro.optimizer.edgeindex.EdgeResolver`, predicate-metadata
  memos in the :class:`~repro.optimizer.planinfo.PlanBuilder`, and
  cost-ordered EA-Prune buckets,
* ``engine="reference"`` — the seed's code path (recursive enumerator,
  linear edge scans, uncached builder, unordered buckets), kept as the
  executable spec.  Golden tests assert the engines produce identical
  costs, ccp counts and table sizes; :mod:`benchmarks.bench_hotpath`
  times the other engines against it,
* ``engine="vectorized"`` — the array core
  (:mod:`repro.optimizer.vectorized` over a batched
  :class:`~repro.hypergraph.vectorized.VectorizedGraph`): numpy lanes
  evaluate whole csg-cmp-pairs at once and plans materialise only when a
  strategy actually keeps them.  Requires numpy (warns and falls back to
  ``indexed`` without it, so :mod:`repro.server` stays stdlib-only) and
  the built-in strategies/cost model (silent fallback otherwise, flagged
  in ``stats``); the cross-engine differential suite asserts its output
  is bit-identical.

The engine choice never changes optimizer *output* — it is part of
:class:`~repro.optimizer.config.OptimizerConfig` for plumbing (CLI,
server) but deliberately *not* part of the plan cache key.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import chaos
from repro.algebra.expressions import conjunction
from repro.conflict.detector import AnnotatedEdge, detect
from repro.hypergraph import vectorized as vector_graph
from repro.hypergraph.graph import Hypergraph
from repro.hypergraph.enumerate import enumerate_ccps, enumerate_ccps_reference
from repro.optimizer import vectorized as vector_core
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.deadline import Deadline, PlanningDeadlineExceeded
from repro.optimizer.edgeindex import EdgeResolver, JoinSpec
from repro.optimizer.planinfo import PlanBuilder, PlanInfo
from repro.optimizer.registry import ENGINES
from repro.optimizer.strategies import EaPruneStrategy, Strategy, sweep_prune_caches
from repro.query.spec import Query
from repro.rewrites.pushdown import OpKind, pushdown_valid_for

#: Back-compat alias — the resolved-operator record now lives in
#: :mod:`repro.optimizer.edgeindex`.
_JoinSpec = JoinSpec


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run."""

    plan: PlanInfo
    strategy: str
    elapsed_seconds: float
    ccp_count: int
    plans_built: int
    table_sizes: Dict[int, int]
    cache_hit: bool = False
    #: True when this plan is a deadline-degraded heuristic fallback (see
    #: :mod:`repro.optimizer.deadline`) rather than the configured
    #: strategy's answer.  Degraded results are never stored in plan
    #: caches — they are a serve-something answer, not the plan of record.
    degraded: bool = False
    #: Hot-path instrumentation (edge-index scans, memo hits, dominance
    #: checks) for the run that produced the plan.  Keys are additive
    #: counters; absent on cache hits only in the sense that they still
    #: describe the original run.  Populated by :func:`optimize`; empty
    #: for results constructed elsewhere.
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def cost(self) -> float:
        return self.plan.cost

    def as_cache_hit(self) -> "OptimizationResult":
        """A copy marked as served from a plan cache.

        ``elapsed_seconds`` is zeroed — serving the copy cost a dictionary
        lookup, not the original run's time.  ``ccp_count``, ``plans_built``
        and ``table_sizes`` still describe the run that produced the plan.
        """
        return replace(self, cache_hit=True, elapsed_seconds=0.0)


@dataclass(frozen=True)
class PreparedQuery:
    """The strategy-independent pre-pass: conflict rules + hypergraph.

    Conflict detection (TES/rule computation) and hypergraph construction
    depend only on the query, not on the strategy or statistics snapshot,
    so a caller comparing strategies — or a batch driver re-optimizing the
    same shape after a statistics change — runs them once and hands the
    result to every :func:`optimize` call.
    """

    query: Query
    annotated: Tuple[AnnotatedEdge, ...]
    graph: Hypergraph

    def resolver(self) -> EdgeResolver:
        """A per-edge join-spec resolver for this pre-pass (built lazily
        and cached — resolvers are pure indexes over ``annotated``)."""
        cached = self.__dict__.get("_resolver")
        if cached is None:
            cached = EdgeResolver(self.annotated, self.query)
            object.__setattr__(self, "_resolver", cached)
        return cached


def prepare(query: Query) -> PreparedQuery:
    """Run conflict detection and build the hypergraph for *query*."""
    annotated, graph = detect(query)
    return PreparedQuery(query=query, annotated=tuple(annotated), graph=graph)


@dataclass(frozen=True)
class OptimizerHooks:
    """Optional tracing/metrics callbacks fired by :func:`optimize`.

    * ``on_prepare(prepared)`` — after the driver runs its own pre-pass
      (not fired when a caller supplies *prepared*; the session fires it
      when preparing a statement),
    * ``on_ccp(s1, s2)`` — once per enumerated csg-cmp-pair,
    * ``on_plan(plan)`` — once per candidate :class:`PlanInfo` offered to
      the DP table (access paths, OpTrees variants for inner table
      entries, finalised plans for the full relation set),
    * ``on_result(result)`` — once per returned result, cache hits
      included.  ``result.stats`` carries the hot-path counters, so
      metrics pipelines hang off this hook without touching the DP loops.

    Absent callbacks cost a single attribute read; the DP hot loops stay
    untouched when no hooks are installed.
    """

    on_prepare: Optional[Callable[[PreparedQuery], None]] = None
    on_ccp: Optional[Callable[[int, int], None]] = None
    on_plan: Optional[Callable[[PlanInfo], None]] = None
    on_result: Optional[Callable[["OptimizationResult"], None]] = None


def optimize(
    query: Query,
    strategy: str | Strategy = "ea-prune",
    factor: float = 1.03,
    prepared: Optional[PreparedQuery] = None,
    cache=None,
    *,
    config: Optional[OptimizerConfig] = None,
    hooks: Optional[OptimizerHooks] = None,
    engine: Optional[str] = None,
    deadline: Optional[Deadline] = None,
) -> OptimizationResult:
    """Optimize *query* and return the final plan.

    All optimizer knobs live in *config* (an
    :class:`~repro.optimizer.config.OptimizerConfig`); the *strategy* /
    *factor* positional parameters remain as a shim for the seed's call
    style and are ignored when *config* is given.  *prepared* reuses a
    :func:`prepare` pre-pass (conflict detection + hypergraph) across
    strategies or repeated runs.  *cache* is an optional
    :class:`repro.service.cache.PlanCache`: hits return immediately
    (marked ``cache_hit=True``), misses are stored after optimization.
    *hooks* receive tracing callbacks (see :class:`OptimizerHooks`).
    *engine* selects the hot path (``"indexed"``, the default), the seed
    code path (``"reference"``) or the array core (``"vectorized"``);
    ``None`` defers to ``config.engine``.  The result is identical
    whichever engine runs.

    *deadline* arms a cooperative planning budget checked inside the DP
    loop (all three engines share it); ``None`` defers to
    ``config.deadline_seconds``, measured from the start of this run.
    Cache hits are served before the budget is consulted.  On a blown
    budget, ``config.degradation`` picks between a heuristic fallback
    plan marked ``degraded=True`` and raising
    :class:`~repro.optimizer.deadline.PlanningDeadlineExceeded`.
    """
    if config is None:
        config = OptimizerConfig(strategy=strategy, factor=factor, cache_capacity=None)
    if engine is None:
        engine = config.engine
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (use one of: {', '.join(ENGINES)})"
        )
    chosen = config.resolve_strategy()
    cost_model = config.resolve_cost_model()

    # The pre-pass identity check runs before any cache probe: a mismatched
    # pre-pass is a caller bug and must raise even when a hit could have
    # been served.
    if prepared is not None and prepared.query is not query:
        raise ValueError("prepared pre-pass belongs to a different query")

    on_result = hooks.on_result if hooks is not None else None

    key = None
    exact_snapshot = None
    if cache is not None:
        from repro.service.fingerprint import cache_key, cardinality_snapshot

        key = cache_key(
            query, chosen, config.factor, cost_model=cost_model.name,
            band_width=config.snapshot_band_width,
        )
        # With banded keys the exact snapshot travels separately: it is
        # what serve_entry compares to detect within-band drift (stale
        # serving) and what the entry remembers for re-costing.  Without
        # banding the key's snapshot IS the exact one — no second digest.
        exact_snapshot = (
            cardinality_snapshot(query)
            if config.snapshot_band_width is not None
            else key.snapshot
        )
        found = cache.serve_entry(key, query, exact_snapshot=exact_snapshot)
        if found is not None:
            served, _state = found
            if on_result is not None:
                on_result(served)
            return served

    start = time.perf_counter()

    if deadline is None and config.deadline_seconds is not None:
        deadline = Deadline(config.deadline_seconds)
    # Injected planning slowness (tests/CI only) is scoped to deadline
    # check points, so the heuristic fallback run — no deadline — is fast.
    chaos_pause = None
    if deadline is not None and chaos.enabled():
        chaos_pause = chaos.planning_delay(rel.name for rel in query.relations)

    if prepared is not None:
        annotated, graph = prepared.annotated, prepared.graph
    else:
        prepared_here = prepare(query)
        annotated, graph = prepared_here.annotated, prepared_here.graph
        if hooks is not None and hooks.on_prepare is not None:
            hooks.on_prepare(prepared_here)
        prepared = prepared_here

    reference = engine == "reference"
    if reference and isinstance(chosen, EaPruneStrategy) and chosen.ordered:
        chosen = EaPruneStrategy(criteria=chosen.criteria, ordered=False)

    # Bound the global FD intern tables between runs (no bucket from this
    # run exists yet, so a reset here can never alias signature ids).
    sweep_prune_caches()

    builder = PlanBuilder(query, cost_model=cost_model, memo=not reference)
    all_mask = query.all_relations_mask

    on_ccp = hooks.on_ccp if hooks is not None else None
    on_plan = hooks.on_plan if hooks is not None else None

    # The vectorized engine needs numpy and the exact built-in strategy /
    # cost-model arithmetic its lanes encode; anything else falls back to
    # the indexed engine (the output is identical either way, so only the
    # numpy case warrants a warning).
    vec_engine = None
    vec_fallback = None
    if engine == "vectorized":
        if not vector_core.numpy_available():
            warnings.warn(
                "engine='vectorized' requires numpy, which is not installed; "
                "falling back to the indexed engine",
                RuntimeWarning,
                stacklevel=2,
            )
            vec_fallback = "no_numpy"
        elif not vector_core.supports(chosen, cost_model, on_plan):
            vec_fallback = "unsupported"
        else:
            vec_engine = vector_core.VectorEngine(builder, chosen, query)

    if reference:
        resolver = None
        resolve = partial(_resolve_edge, annotated, query)
        ccps = enumerate_ccps_reference(graph)
    else:
        resolver = prepared.resolver()
        resolve = resolver.resolve
        if vec_engine is not None and vector_graph.supports(graph):
            # Batched neighborhood/connectivity lanes; shares the base
            # graph's counters so the stats diffs below stay coherent.
            graph = vector_graph.VectorizedGraph(graph)
        ccps = enumerate_ccps(graph)

    # Counter snapshots: graph/resolver/strategy objects may be shared
    # across runs (PreparedQuery reuse, strategy instances in configs), so
    # the per-run stats are end-minus-start diffs.
    graph_before = dict(graph.counters)
    resolver_before = dict(resolver.counters) if resolver is not None else {}
    strategy_counters = getattr(chosen, "counters", None)
    strategy_before = dict(strategy_counters) if strategy_counters is not None else {}

    table: Dict[int, List[PlanInfo]] = {}
    for vertex in range(len(query.relations)):
        leaf = builder.leaf(vertex)
        table[1 << vertex] = [leaf]
        if on_plan is not None:
            on_plan(leaf)

    plans_built = len(table)
    ccp_count = 0

    if len(query.relations) == 1:
        top: List[PlanInfo] = []
        finished = builder.finish_top(table[1][0])
        chosen.insert_top(top, finished)
        table[all_mask] = top
        if on_plan is not None:
            on_plan(finished)

    try:
        for s1, s2 in ccps:
            ccp_count += 1
            if deadline is not None and deadline.tick() and chaos_pause is not None:
                time.sleep(chaos_pause)
                deadline.check()
            if on_ccp is not None:
                on_ccp(s1, s2)
            spec = resolve(s1, s2)
            if spec is None:
                continue
            left_set, right_set = (s2, s1) if spec.swap else (s1, s2)
            left_bucket = table.get(left_set, ())
            right_bucket = table.get(right_set, ())
            if not left_bucket or not right_bucket:
                continue
            if vec_engine is not None:
                plans_built += vec_engine.process_ccp(
                    table, spec, left_set, right_set, all_mask
                )
                continue
            combined = left_set | right_set
            is_top = combined == all_mask
            bucket = table.get(combined)
            if bucket is None:
                # Top-level entries go through insert_top (single plan, list
                # semantics); inner entries use the strategy's bucket type.
                bucket = table[combined] = [] if is_top else chosen.new_bucket()
            for left_plan in left_bucket:
                for right_plan in right_bucket:
                    for plan in _op_trees(builder, chosen, left_plan, right_plan, spec):
                        plans_built += 1
                        if is_top:
                            # Report the finalised plan — the candidate the DP
                            # table actually considers for the full relation set.
                            plan = builder.finish_top(plan)
                            if on_plan is not None:
                                on_plan(plan)
                            chosen.insert_top(bucket, plan)
                        else:
                            if on_plan is not None:
                                on_plan(plan)
                            chosen.insert(bucket, plan)
    except PlanningDeadlineExceeded:
        if config.degradation != "heuristic":
            raise
        result = _degraded_fallback(
            query, prepared, config, engine, start, ccp_count, plans_built
        )
        if on_result is not None:
            on_result(result)
        return result

    final = table.get(all_mask, [])
    if not final:
        raise RuntimeError("no plan found — query hypergraph not fully connectable")
    best = min(final, key=lambda p: p.cost)
    elapsed = time.perf_counter() - start

    stats: Dict[str, int] = {
        "engine_reference": 1 if reference else 0,
        "engine_vectorized": 1 if vec_engine is not None else 0,
    }
    if vec_fallback is not None:
        stats["vectorized.fallback"] = 1
        stats[f"vectorized.{vec_fallback}"] = 1
    if vec_engine is not None:
        for name, value in vec_engine.counters.items():
            if value:
                stats[f"vectorized.{name}"] = value
    for name, value in graph.counters.items():
        delta = value - graph_before.get(name, 0)
        if delta:
            stats[f"graph.{name}"] = delta
    if resolver is not None:
        for name, value in resolver.counters.items():
            delta = value - resolver_before.get(name, 0)
            if delta:
                stats[f"resolver.{name}"] = delta
    if strategy_counters is not None:
        for name, value in strategy_counters.items():
            delta = value - strategy_before.get(name, 0)
            if delta:
                stats[f"strategy.{name}"] = delta

    result = OptimizationResult(
        plan=best,
        strategy=chosen.name,
        elapsed_seconds=elapsed,
        ccp_count=ccp_count,
        plans_built=plans_built,
        table_sizes={mask: len(plans) for mask, plans in table.items()},
        stats=stats,
    )
    if cache is not None and key is not None and not result.degraded:
        cache.store(key, query, result, exact_snapshot=exact_snapshot)
    if on_result is not None:
        on_result(result)
    return result


#: Strategy used for deadline-degraded fallback plans: H1 (Fig. 10), the
#: paper's cheapest greedy — one plan per DP class, no eager variants.
DEGRADED_STRATEGY = "h1"


def _degraded_fallback(
    query: Query,
    prepared: Optional[PreparedQuery],
    config: OptimizerConfig,
    engine: str,
    start: float,
    primary_ccps: int,
    primary_plans: int,
) -> OptimizationResult:
    """Build the serve-something plan after a blown planning deadline.

    Re-runs the same prepared query under :data:`DEGRADED_STRATEGY` with
    no deadline (H1 touches each ccp once with a single plan per class,
    so its runtime is a small fraction of the budget that just expired).
    The returned result carries ``degraded=True``, total elapsed time
    including the abandoned primary run, and stats counters recording
    how far the primary got before the budget fired.
    """
    fallback_config = config.with_overrides(
        strategy=DEGRADED_STRATEGY, deadline_seconds=None
    )
    result = optimize(
        query, prepared=prepared, config=fallback_config, engine=engine
    )
    stats = dict(result.stats)
    stats["degraded"] = 1
    stats["degraded.primary_ccps"] = primary_ccps
    stats["degraded.primary_plans"] = primary_plans
    return replace(
        result,
        degraded=True,
        elapsed_seconds=time.perf_counter() - start,
        stats=stats,
    )


def _resolve_edge(
    annotated: Sequence[AnnotatedEdge], query: Query, s1: int, s2: int
) -> Optional[JoinSpec]:
    """Reference operator resolution: the seed's linear scan over all
    annotated edges (see :meth:`EdgeResolver.resolve` for the hot path).

    Exactly one edge crossing: use its operator (checking applicability in
    both orientations; non-commutative operators fix the orientation).
    Multiple crossing edges: only legal when all of them are inner joins —
    their predicates are conjoined and selectivities multiplied.
    """
    crossing = [
        e
        for e in annotated
        if (_subset(e.l_tes, s1) and _subset(e.r_tes, s2))
        or (_subset(e.l_tes, s2) and _subset(e.r_tes, s1))
    ]
    if not crossing:
        return None

    if len(crossing) == 1:
        edge = crossing[0]
        join_edge = query.edge(edge.edge_id)
        if edge.applicable(s1, s2):
            return JoinSpec(
                edge.op, join_edge.predicate, join_edge.selectivity,
                join_edge.groupjoin_vector, swap=False,
            )
        if edge.applicable(s2, s1):
            return JoinSpec(
                edge.op, join_edge.predicate, join_edge.selectivity,
                join_edge.groupjoin_vector, swap=True,
            )
        return None

    # Several predicates meet at this ccp (cyclic inner-join queries).
    if any(e.op is not OpKind.INNER for e in crossing):
        return None
    predicates = []
    selectivity = 1.0
    for edge in crossing:
        if not (edge.applicable(s1, s2) or edge.applicable(s2, s1)):
            return None
        join_edge = query.edge(edge.edge_id)
        predicates.append(join_edge.predicate)
        selectivity *= join_edge.selectivity
    return JoinSpec(OpKind.INNER, conjunction(predicates), selectivity, None, swap=False)


def _subset(small: int, big: int) -> bool:
    return small & ~big == 0


def _op_trees(
    builder: PlanBuilder,
    strategy: Strategy,
    left: PlanInfo,
    right: PlanInfo,
    spec: JoinSpec,
):
    """``OpTrees`` (Fig. 6): the up-to-four grouping placements of Fig. 8."""
    plain = builder.join(
        left, right, spec.op, spec.predicate, spec.selectivity, spec.groupjoin_vector
    )
    if plain is not None:
        yield plain
    if not strategy.explore_eager:
        return

    grouped_left: Optional[PlanInfo] = None
    grouped_right: Optional[PlanInfo] = None

    # NOTE on NeedsGrouping (Fig. 6, lines 10/15): the paper skips grouped
    # variants whose grouping attributes contain a key.  That test is
    # *plan-dependent* while the grouping-output estimate is not, which
    # makes the skip inconsistent across dominance-equivalent plans and can
    # break EA-Prune's optimality under a statistics-based estimator.  We
    # therefore skip only the genuinely degenerate case (grouping a
    # duplicate-free input whose grouping attributes are a key *and* whose
    # estimated reduction is nil is still generated — pruning or cost will
    # discard it), keeping the DP-class continuation sets consistent.
    if pushdown_valid_for(spec.op, 1):
        g_plus = builder.needed_above(left.rel_set) & left.raw_attrs
        grouped_left = builder.group(left, g_plus)
        if grouped_left is not None:
            plan = builder.join(
                grouped_left, right, spec.op, spec.predicate, spec.selectivity,
                spec.groupjoin_vector,
            )
            if plan is not None:
                yield plan

    if pushdown_valid_for(spec.op, 2):
        g_plus = builder.needed_above(right.rel_set) & right.raw_attrs
        grouped_right = builder.group(right, g_plus)
        if grouped_right is not None:
            plan = builder.join(
                left, grouped_right, spec.op, spec.predicate, spec.selectivity,
                spec.groupjoin_vector,
            )
            if plan is not None:
                yield plan

    if grouped_left is not None and grouped_right is not None:
        plan = builder.join(
            grouped_left, grouped_right, spec.op, spec.predicate, spec.selectivity,
            spec.groupjoin_vector,
        )
        if plan is not None:
            yield plan
