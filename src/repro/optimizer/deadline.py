"""Cooperative planning deadlines for the DP enumeration loops.

A :class:`Deadline` is a cheap, cooperative budget check threaded through
:func:`repro.optimizer.optimize`: the driver calls :meth:`Deadline.tick`
once per enumerated csg-cmp-pair, and the tick reads the clock only every
``check_every`` ccps (plus once on the very first ccp, so tiny budgets
fire deterministically even on small queries).  All three engines
(reference / indexed / vectorized) consume the same ccp loop, so one
check site covers them all.

When the budget is exhausted the tick raises
:class:`PlanningDeadlineExceeded` from inside the DP.  What happens next
is the caller's policy — ``OptimizerConfig.degradation``:

* ``"heuristic"`` (default) — the driver re-runs the same prepared query
  under the paper's cheap greedy strategy (H1, Fig. 10) with no deadline
  and returns that plan marked ``degraded=True``.  Degraded plans are
  never cached.
* ``"error"`` — the exception propagates to the caller (servers map it
  to HTTP 504).

Budgets come from two places: ``OptimizerConfig.deadline_seconds``
(relative, armed when the run starts) or an explicit ``Deadline`` passed
to :func:`~repro.optimizer.optimize` (absolute, used by the serving
tiers to charge queue time against the request budget).
"""

from __future__ import annotations

import time
from typing import Callable

#: Clock reads per DP loop: one on the first ccp, then every N ccps.
#: Small enough that even short enumerations (chain n=4 is ~10 ccps) get
#: a handful of checks; a no-op tick is a decrement + compare.
DEFAULT_CHECK_EVERY = 16


class PlanningDeadlineExceeded(Exception):
    """Raised from inside the DP when a planning budget is exhausted."""

    def __init__(self, message: str, *, budget_seconds: float = 0.0, elapsed_seconds: float = 0.0):
        super().__init__(message)
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds


class Deadline:
    """A monotonic-clock budget checked cooperatively every N ticks."""

    __slots__ = ("budget_seconds", "check_every", "expires_at", "_clock", "_countdown")

    def __init__(
        self,
        seconds: float,
        *,
        check_every: int = DEFAULT_CHECK_EVERY,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget_seconds = max(0.0, float(seconds))
        self.check_every = max(1, int(check_every))
        self._clock = clock
        self.expires_at = clock() + self.budget_seconds
        # First tick checks immediately: a 2-relation query has one ccp,
        # and a zero budget must still fire.
        self._countdown = 1

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self) -> None:
        """Read the clock now; raise if the budget is exhausted."""
        left = self.remaining()
        if left <= 0.0:
            raise PlanningDeadlineExceeded(
                f"planning deadline of {self.budget_seconds:.3f}s exceeded "
                f"(over by {-left:.3f}s)",
                budget_seconds=self.budget_seconds,
                elapsed_seconds=self.budget_seconds - left,
            )

    def tick(self) -> bool:
        """Count one unit of work; check the clock at every boundary.

        Returns True when this tick actually read the clock (used by the
        driver to scope chaos-injected planning delays to check points).
        """
        self._countdown -= 1
        if self._countdown > 0:
            return False
        self._countdown = self.check_every
        self.check()
        return True
