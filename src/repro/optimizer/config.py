"""`OptimizerConfig` — one validated object instead of scattered kwargs.

Every caller of the seed passed ``strategy="ea-prune", factor=1.03,
workers=..., cache=...`` around by hand, each with its own conventions.
:class:`OptimizerConfig` freezes those knobs into a single immutable,
eagerly-validated value that threads unchanged through
:func:`repro.optimizer.optimize`, :func:`repro.service.optimize_many`,
:func:`repro.service.run_batch`, the CLI and
:class:`repro.api.PlannerSession`.

Per-call tweaks derive a new config instead of mutating::

    config = OptimizerConfig(strategy="h2", factor=1.05)
    quick = config.with_overrides(strategy="h1")   # re-validated copy

Strategy and cost model are selected *by name* through the registries
(:data:`~repro.optimizer.registry.STRATEGIES`,
:data:`~repro.optimizer.registry.COST_MODELS`), so third-party components
plug in without driver changes; instances are also accepted for
pre-parameterised components (e.g. ``EaPruneStrategy("cost-only")``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional, Union

from repro.optimizer.costmodel import CostModel
from repro.optimizer.registry import COST_MODELS, ENGINES, STRATEGIES
from repro.optimizer.strategies import Strategy


@dataclass(frozen=True)
class OptimizerConfig:
    """Immutable optimizer settings, validated at construction.

    ``strategy`` / ``cost_model`` — registry name (validated against the
    registries) or a ready instance.  ``factor`` — H2's eagerness
    tolerance F (≥ 1).  ``engine`` — the driver code path
    (:data:`~repro.optimizer.registry.ENGINES`); engines never change
    optimizer output, so the field is plumbing only and stays out of
    plan-cache keys.  ``workers`` — batch-driver process count (None =
    auto).  ``cache_capacity`` — plan-cache entries for components that
    own a cache, e.g. a session (None or 0 = caching off).
    ``deadline_seconds`` — cooperative planning budget per optimize call
    (None = unbounded; 0 = already expired, useful when a request's
    queue time ate the whole budget).  ``degradation`` — what a blown
    deadline does: ``"heuristic"`` falls back to a cheap greedy plan
    marked ``degraded=True``, ``"error"`` raises
    :class:`~repro.optimizer.deadline.PlanningDeadlineExceeded`.
    ``snapshot_band_width`` — log10 band width for plan-cache snapshot
    keys (None = exact statistics in the key); with banding, nearby
    statistics share a structural cache entry and drift within a band
    re-costs the cached plan instead of missing.  ``recost_bound`` — the
    stale-while-revalidate regression bound (≥ 1): a stale plan
    re-costed under fresh statistics is still served while its cost
    stays within ``recost_bound ×`` a cheap H1 lower bound; past it,
    full re-optimization is queued.
    """

    strategy: Union[str, Strategy] = "ea-prune"
    factor: float = 1.03
    cost_model: Union[str, CostModel] = "cout"
    engine: str = "indexed"
    workers: Optional[int] = None
    cache_capacity: Optional[int] = 512
    deadline_seconds: Optional[float] = None
    degradation: str = "heuristic"
    snapshot_band_width: Optional[float] = None
    recost_bound: float = 2.0

    def __post_init__(self) -> None:
        if isinstance(self.strategy, str):
            if self.strategy not in STRATEGIES:
                known = ", ".join(STRATEGIES.names())
                raise ValueError(
                    f"unknown strategy {self.strategy!r} (registered: {known})"
                )
        elif not isinstance(self.strategy, Strategy):
            raise TypeError(
                f"strategy must be a registered name or a Strategy, got {self.strategy!r}"
            )
        if isinstance(self.cost_model, str):
            if self.cost_model not in COST_MODELS:
                known = ", ".join(COST_MODELS.names())
                raise ValueError(
                    f"unknown cost model {self.cost_model!r} (registered: {known})"
                )
        elif not isinstance(self.cost_model, CostModel):
            raise TypeError(
                f"cost_model must be a registered name or a CostModel, got {self.cost_model!r}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (use one of: {', '.join(ENGINES)})"
            )
        if not self.factor >= 1.0:
            raise ValueError(f"tolerance factor must be >= 1, got {self.factor}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1 (or None for auto), got {self.workers}")
        if self.cache_capacity is not None and self.cache_capacity < 0:
            raise ValueError(
                f"cache_capacity must be >= 0 (or None for no cache), got {self.cache_capacity}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError(
                f"deadline_seconds must be >= 0 (or None for unbounded), got {self.deadline_seconds}"
            )
        if self.degradation not in ("heuristic", "error"):
            raise ValueError(
                f"degradation must be 'heuristic' or 'error', got {self.degradation!r}"
            )
        if self.snapshot_band_width is not None and not self.snapshot_band_width > 0:
            raise ValueError(
                "snapshot_band_width must be > 0 (or None for exact keys), "
                f"got {self.snapshot_band_width}"
            )
        if not self.recost_bound >= 1.0:
            raise ValueError(f"recost_bound must be >= 1, got {self.recost_bound}")

    # -- derivation ----------------------------------------------------------
    def with_overrides(self, **overrides) -> "OptimizerConfig":
        """A copy with *overrides* applied, validated like a fresh config."""
        valid = {f.name for f in fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise ValueError(
                f"unknown OptimizerConfig field(s) {sorted(unknown)!r}; "
                f"valid fields: {sorted(valid)}"
            )
        return replace(self, **overrides)

    # -- resolution ----------------------------------------------------------
    def resolve_strategy(self) -> Strategy:
        """The configured :class:`Strategy` instance."""
        if isinstance(self.strategy, Strategy):
            return self.strategy
        return STRATEGIES.create(self.strategy, factor=self.factor)

    def resolve_cost_model(self) -> CostModel:
        """The configured :class:`CostModel` instance."""
        if isinstance(self.cost_model, CostModel):
            return self.cost_model
        return COST_MODELS.create(self.cost_model)

    @property
    def strategy_name(self) -> str:
        """Canonical strategy name (resolving instances via ``.name``)."""
        return self.strategy if isinstance(self.strategy, str) else self.strategy.name

    @property
    def cost_model_name(self) -> str:
        """Canonical cost-model name (resolving instances via ``.name``)."""
        return self.cost_model if isinstance(self.cost_model, str) else self.cost_model.name

    @property
    def caching_enabled(self) -> bool:
        return bool(self.cache_capacity)
