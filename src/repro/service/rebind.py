"""Rebinding cached plans to the requesting query's names.

The cache key (:mod:`repro.service.fingerprint`) is deliberately blind to
relation and attribute *names* — two queries that differ only in naming
are the same optimization problem.  But the cached
:class:`~repro.optimizer.driver.OptimizationResult` is not name-blind:
its plan scans relations and references attributes under the names of the
query that produced it.  Serving it verbatim to a renamed query would
reference relations that do not exist there.

Because the fingerprint embeds every relation's position and arity and
the snapshot embeds its statistics, a key match guarantees the two
queries are isomorphic under the positional mapping ``(vertex, attribute
position)``.  Rebinding applies exactly that mapping: every relation name
and every base-attribute name in the plan (and in the ``PlanInfo``'s
derived properties) is rewritten from the cached query's binding to the
requesting query's.  Synthetic columns (aggregate outputs, groupjoin
outputs, internal count columns) carry no relation names and pass through
unchanged — the fingerprint already pins them to be identical.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, Tuple

from repro.aggregates.calls import AggCall
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Case, Const, Expr, IsNull, Logical, Not
from repro.optimizer.planinfo import PlanInfo
from repro.plans.nodes import (
    GroupByNode,
    JoinNode,
    MapNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.query.spec import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.driver import OptimizationResult

#: (relation name, attribute names) per vertex — a query's naming.
Binding = Tuple[Tuple[str, Tuple[str, ...]], ...]


def query_binding(query: Query) -> Binding:
    """The naming a plan produced from *query* is bound to.

    Relations are listed in the fingerprint's canonical vertex order
    (:func:`repro.service.fingerprint.canonical_vertex_order`), not
    storage order: a cache-key match guarantees isomorphism under the
    *canonical* positional mapping, so the rename maps must zip in that
    order (two FROM-order spellings of one problem — e.g. ``RIGHT JOIN``
    and its mirrored ``LEFT JOIN`` — store their vertices differently).
    """
    from repro.service.fingerprint import canonical_vertex_order

    return tuple(
        (query.relations[vertex].name, query.relations[vertex].attributes)
        for vertex in canonical_vertex_order(query)
    )


class _Rebinder:
    """Positional rename maps between two isomorphic bindings."""

    def __init__(self, source: Binding, target: Binding):
        if len(source) != len(target):
            raise ValueError("bindings have different relation counts")
        self.relations: Dict[str, str] = {}
        self.attrs: Dict[str, str] = {}
        for (old_name, old_attrs), (new_name, new_attrs) in zip(source, target):
            if len(old_attrs) != len(new_attrs):
                raise ValueError("bindings have different relation arities")
            self.relations[old_name] = new_name
            for old_attr, new_attr in zip(old_attrs, new_attrs):
                self.attrs[old_attr] = new_attr

    def attr(self, name: str) -> str:
        return self.attrs.get(name, name)

    # -- expressions ---------------------------------------------------------
    def expr(self, expr: Expr) -> Expr:
        if isinstance(expr, Attr):
            return Attr(self.attr(expr.name))
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, BinOp):
            return BinOp(expr.op, self.expr(expr.left), self.expr(expr.right))
        if isinstance(expr, Logical):
            return Logical(expr.op, tuple(self.expr(op) for op in expr.operands))
        if isinstance(expr, Not):
            return Not(self.expr(expr.operand))
        if isinstance(expr, IsNull):
            return IsNull(self.expr(expr.operand))
        if isinstance(expr, Case):
            return Case(self.expr(expr.condition), self.expr(expr.then), self.expr(expr.otherwise))
        raise TypeError(f"cannot rebind expression {expr!r}")

    def call(self, call: AggCall) -> AggCall:
        if call.arg is None:
            return call
        return AggCall(call.kind, self.expr(call.arg), call.distinct)

    def vector(self, vector: AggVector) -> AggVector:
        return AggVector(AggItem(self.attr(item.name), self.call(item.call)) for item in vector)

    # -- plan nodes ----------------------------------------------------------
    def node(self, node: PlanNode) -> PlanNode:
        if isinstance(node, ScanNode):
            return ScanNode(
                self.relations.get(node.relation, node.relation),
                tuple(self.attr(a) for a in node.attributes),
            )
        if isinstance(node, SelectNode):
            return SelectNode(self.expr(node.predicate), self.node(node.child))
        if isinstance(node, JoinNode):
            return JoinNode(
                op=node.op,
                predicate=self.expr(node.predicate),
                left=self.node(node.left),
                right=self.node(node.right),
                left_defaults=tuple((self.attr(n), v) for n, v in node.left_defaults),
                right_defaults=tuple((self.attr(n), v) for n, v in node.right_defaults),
                groupjoin_vector=(
                    self.vector(node.groupjoin_vector)
                    if node.groupjoin_vector is not None
                    else None
                ),
            )
        if isinstance(node, GroupByNode):
            return GroupByNode(
                group_attrs=tuple(self.attr(a) for a in node.group_attrs),
                vector=self.vector(node.vector),
                child=self.node(node.child),
                post=tuple((self.attr(n), self.expr(e)) for n, e in node.post),
            )
        if isinstance(node, MapNode):
            return MapNode(
                extensions=tuple((self.attr(n), self.expr(e)) for n, e in node.extensions),
                child=self.node(node.child),
            )
        if isinstance(node, ProjectNode):
            return ProjectNode(
                attributes=tuple(self.attr(a) for a in node.attributes),
                child=self.node(node.child),
            )
        raise TypeError(f"cannot rebind plan node {node!r}")

    # -- derived plan properties --------------------------------------------
    def planinfo(self, info: PlanInfo) -> PlanInfo:
        return replace(
            info,
            node=self.node(info.node),
            keys=tuple(frozenset(self.attr(a) for a in key) for key in info.keys),
            raw_attrs=frozenset(self.attr(a) for a in info.raw_attrs),
            distinct={self.attr(a): v for a, v in info.distinct.items()},
            terms={self.attr(n): self.call(c) for n, c in info.terms.items()},
            scale_cols=tuple(self.attr(c) for c in info.scale_cols),
            defaults={self.attr(n): v for n, v in info.defaults.items()},
            equiv=tuple(frozenset(self.attr(a) for a in cls) for cls in info.equiv),
        )


def rebind_result(
    result: "OptimizationResult", source: Binding, query: Query
) -> "OptimizationResult":
    """Re-express a cached *result* in *query*'s relation/attribute names.

    *source* is the binding of the query the result was computed for (as
    recorded by :func:`query_binding` at cache-store time).  Identical
    bindings return the result unchanged.
    """
    target = query_binding(query)
    if source == target:
        return result
    return replace(result, plan=_Rebinder(source, target).planinfo(result.plan))
