"""Background revalidation of stale plan-cache entries.

The serving half of stale-while-revalidate: when a
:meth:`~repro.sql.catalog.Catalog.update_stats` delta marks cache
entries stale, requests keep being served from them (the regression is
bounded — see :mod:`repro.optimizer.recost`) while a
:class:`StaleRevalidator` works through the backlog off the request
path:

1. claim a batch of stale entries (``stale → revalidating``, so two
   workers never double-plan one entry),
2. rebuild each entry's query under the *fresh* catalog — re-parsing
   its stored SQL when it came through a SQL front door, else
   refreshing the stored query object's statistics in place,
3. re-cost the cached plan and apply the ``recost_bound`` test:
   within bound → refresh the entry in place (``plans.recosted``),
   past it → full re-optimization (``plans.replanned``),
4. a replan that deadline-degrades never overwrites the entry
   (:meth:`~repro.service.cache.PlanCache.refresh` refuses degraded
   results); the entry returns to ``stale`` and is retried later.

The executor is a small thread pool (``revalidate_workers``): the DP
replan is CPU-bound but rare, re-costing is microseconds, and running
in-process keeps the cache and catalog shared without pickling.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

from repro.optimizer.config import OptimizerConfig
from repro.service.cache import PlanCache, StaleClaim
from repro.service.fingerprint import cache_key, cardinality_snapshot

logger = logging.getLogger("repro.service.revalidate")

#: stale entries claimed per drain round — bounds how long the cache
#: lock's claim transaction runs and how much work one round commits to.
CLAIM_BATCH = 32


class StaleRevalidator:
    """Re-cost or re-plan stale cache entries in the background.

    *on_event* (optional) receives ``"recosted"`` / ``"replanned"`` /
    ``"dropped"`` / ``"failed"`` once per processed entry — the hook
    server metrics hang off.  Call :meth:`subscribe` to attach to the
    catalog's delta channel (mark-stale + kick); :meth:`kick` schedules
    a drain manually; :meth:`drain` runs one synchronously (tests,
    CLI).
    """

    def __init__(
        self,
        cache: PlanCache,
        catalog,
        config: OptimizerConfig,
        workers: int = 1,
        on_event: Optional[Callable[[str], None]] = None,
    ):
        if workers < 1:
            raise ValueError(f"revalidate workers must be >= 1, got {workers}")
        self.cache = cache
        self.catalog = catalog
        self.config = config
        self.on_event = on_event
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="revalidate"
        )
        self._unsubscribe: Optional[Callable[[], None]] = None
        self._closed = threading.Event()

    # -- wiring --------------------------------------------------------------
    def subscribe(self) -> "StaleRevalidator":
        """Attach to the catalog: deltas mark entries stale, then kick."""
        if self._unsubscribe is None:
            self._unsubscribe = self.catalog.subscribe_deltas(self._on_delta)
        return self

    def _on_delta(self, delta) -> None:
        marked = self.cache.mark_stale(delta.relation)
        if marked:
            self.kick()

    def kick(self) -> None:
        """Schedule a background drain of the stale backlog (idempotent
        enough: an extra drain finding no stale entries is a no-op)."""
        if self._closed.is_set():
            return
        try:
            self._executor.submit(self._drain_safely)
        except RuntimeError:  # executor already shut down (close race)
            pass

    def _drain_safely(self) -> None:
        try:
            self.drain()
        except Exception:  # noqa: BLE001 - a background thread must not die loudly
            logger.exception("revalidation drain failed")

    # -- the work ------------------------------------------------------------
    def drain(self, limit: Optional[int] = None) -> dict:
        """Process the stale backlog (up to *limit* entries); counts dict.

        Runs in the calling thread — the background path calls it from
        an executor thread, tests and the CLI call it directly.
        """
        counts = {"recosted": 0, "replanned": 0, "dropped": 0, "failed": 0}
        processed = 0
        # Failed entries go back to STALE (retryable on a *later* drain);
        # re-claiming them in this one would livelock — a permanently
        # failing entry (e.g. every replan deadline-degrades) would be
        # claimed, failed and requeued forever.
        failed_keys = set()
        while not self._closed.is_set():
            batch = CLAIM_BATCH
            if limit is not None:
                batch = min(batch, limit - processed)
                if batch <= 0:
                    break
            claims = self.cache.claim_stale(limit=batch)
            if not claims:
                break
            progressed = False
            for claim in claims:
                if claim.key in failed_keys:
                    self.cache.requeue(claim.key)
                    continue
                outcome = self._revalidate(claim)
                if outcome == "failed":
                    failed_keys.add(claim.key)
                counts[outcome] += 1
                processed += 1
                progressed = True
                if self.on_event is not None:
                    self.on_event(outcome)
            if not progressed:
                break
        return counts

    def _revalidate(self, claim: StaleClaim) -> str:
        from repro.optimizer.driver import optimize, prepare
        from repro.optimizer.recost import (
            evaluate_stale,
            recosted_result,
            refresh_query_stats,
        )

        try:
            if claim.sql is not None and self.catalog is not None:
                from repro.sql.binder import parse_query

                query = parse_query(claim.sql, self.catalog)
            elif claim.query is not None and self.catalog is not None:
                query = refresh_query_stats(claim.query, self.catalog)
            else:
                self.cache.drop(claim.key)
                return "dropped"

            prepared = prepare(query)
            # The entry keeps *its* optimization settings: an entry stored
            # under a per-request strategy/factor/cost-model override must
            # be re-costed and re-keyed under those, not session defaults.
            overrides = {
                "strategy": claim.key.strategy,
                "cost_model": claim.key.cost_model,
            }
            if claim.key.factor is not None:
                overrides["factor"] = claim.key.factor
            entry_config = self.config.with_overrides(**overrides)
            new_key = cache_key(
                query,
                entry_config.strategy,
                entry_config.factor,
                cost_model=entry_config.cost_model_name,
                band_width=entry_config.snapshot_band_width,
            )
            exact = cardinality_snapshot(query)
            decision = evaluate_stale(
                query, claim.result, config=entry_config, prepared=prepared
            )
            if decision.serve:
                refreshed = recosted_result(
                    claim.result, decision.plan, decision.elapsed_seconds
                )
                self.cache.refresh(
                    claim.key, refreshed, exact_snapshot=exact, new_key=new_key
                )
                return "recosted"
            # Past the bound (or replay failed): full re-optimization.
            # The run respects the config's planning deadline; a degraded
            # fallback is refused by refresh() (entry returns to stale) —
            # the degraded-plan guard extends to the revalidation path.
            result = optimize(query, prepared=prepared, config=entry_config)
            refreshed = self.cache.refresh(
                claim.key, result, exact_snapshot=exact, new_key=new_key
            )
            return "replanned" if refreshed else "failed"
        except Exception:  # noqa: BLE001 - per-entry fault isolation
            logger.exception("revalidation failed for %s", claim.key)
            self.cache.requeue(claim.key)
            return "failed"

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Detach from the catalog and stop the worker pool (idempotent)."""
        self._closed.set()
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._executor.shutdown(wait=True, cancel_futures=True)
