"""The batch optimization service layer.

Everything below :mod:`repro.optimizer` treats plan generation as a pure
function of one query; this package adds the pieces a serving system
needs on top of that function:

* :mod:`repro.service.fingerprint` — structural query fingerprints and
  statistics snapshots, stable under relation renaming and predicate
  reordering, combined into plan-cache keys,
* :mod:`repro.service.cache` — a bounded LRU :class:`PlanCache` with
  hit/miss/eviction statistics and catalog-change invalidation,
* :mod:`repro.service.batch` — :func:`optimize_many`, the parallel
  workload driver that dedups, caches and fans misses out over worker
  processes while streaming results back in order.

See ``docs/architecture.md`` for how this layer composes with the
paper-reproduction pipeline.
"""

from repro.service.batch import (
    BatchItem,
    BatchReport,
    default_workers,
    optimize_many,
    run_batch,
)
from repro.service.cache import CacheStats, PlanCache, SnapshotError
from repro.service.fingerprint import (
    PlanCacheKey,
    cache_key,
    cardinality_snapshot,
    catalog_fingerprint,
    query_fingerprint,
    shard_for_fingerprint,
)
from repro.service.rebind import query_binding, rebind_result

__all__ = [
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "PlanCache",
    "PlanCacheKey",
    "SnapshotError",
    "cache_key",
    "cardinality_snapshot",
    "catalog_fingerprint",
    "default_workers",
    "optimize_many",
    "query_binding",
    "query_fingerprint",
    "rebind_result",
    "run_batch",
    "shard_for_fingerprint",
]
