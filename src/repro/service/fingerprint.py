"""Query fingerprints: cache keys that survive renaming and reordering.

A plan cache is only useful when syntactically different spellings of the
same optimization problem map to the same key.  Two :class:`~repro.query.spec.Query`
objects describe the same problem whenever they differ only in

* **relation / attribute names** — the optimizer never looks at names,
  only at vertex indices and attribute positions, and
* **predicate spelling** — operand order of commutative operators
  (``a = b`` vs ``b = a``), conjunct order inside ``AND``/``OR``, and the
  direction of comparisons (``a < b`` vs ``b > a``).

* **relation numbering** — ``a RIGHT JOIN b`` normalizes to ``b LEFT
  JOIN a`` with the vertices in the opposite storage order; the problem
  is the same one the mirrored ``LEFT JOIN`` spelling produces.

The fingerprint therefore serializes the query *structurally*: vertices
are renumbered by their first appearance in a pre-order walk of the
initial operator tree (:func:`canonical_vertex_order`), attributes
become ``?<canonical vertex>#<position>`` tokens, expressions are
canonicalised S-expressions (commutative operands sorted, comparisons
flipped to ``<``/``<=``), and join operators are embedded at their
position in the initial operator tree so edge ids never leak into the
key.  Rebinding (:mod:`repro.service.rebind`) maps cached plans between
key-equal queries by the same canonical order, so the wider equivalence
class stays servable.

Statistics are deliberately kept out of the fingerprint and hashed into a
separate **cardinality snapshot**: a catalog update (new row counts,
changed selectivities) changes the snapshot but not the fingerprint, which
lets a cache distinguish "same query, stale statistics" from "new query".

The full cache key is fingerprint + snapshot + strategy + cost model
(Sec. 4's plan generators produce different plans, and so do differently
priced searches, so neither may share entries).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algebra.expressions import Attr, BinOp, Case, Const, Expr, IsNull, Logical, Not
from repro.aggregates.calls import AggCall
from repro.aggregates.vector import AggVector
from repro.optimizer.strategies import Strategy, make_strategy
from repro.query.spec import Query
from repro.query.tree import Tree, TreeLeaf, tree_operators

#: comparison directions normalised away: ``a > b`` ≡ ``b < a``.
_FLIP = {">": "<", ">=": "<="}
#: operators whose operand order is semantically irrelevant.
_COMMUTATIVE = {"=", "<>", "+", "*"}


@dataclass(frozen=True)
class PlanCacheKey:
    """Hashable cache key: structure + statistics + plan generator + cost model."""

    fingerprint: str
    snapshot: str
    strategy: str
    factor: Optional[float] = None
    cost_model: str = "cout"

    def digest(self) -> str:
        """A single stable hex digest (handy for logging / sharding)."""
        payload = (
            f"{self.fingerprint}|{self.snapshot}|{self.strategy}|{self.factor}"
            f"|{self.cost_model}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def canonical_vertex_order(query: Query) -> Tuple[int, ...]:
    """Storage vertex indices in pre-order of the initial tree's leaves.

    This is the numbering the fingerprint, the snapshot and plan
    rebinding all share: it makes the key invariant under FROM-order
    permutations that produce the same initial tree — most importantly
    the ``RIGHT JOIN`` → swapped ``LEFT JOIN`` normalization.
    """
    order: List[int] = []

    def walk(node: Tree) -> None:
        if isinstance(node, TreeLeaf):
            order.append(node.vertex)
        else:
            walk(node.left)
            walk(node.right)

    walk(query.tree)
    return tuple(order)


class _Canonicalizer:
    """Maps one query's attribute names to canonical position tokens."""

    def __init__(self, query: Query):
        self.query = query
        self.vertex_order = canonical_vertex_order(query)
        self._canonical_index: Dict[int, int] = {
            vertex: index for index, vertex in enumerate(self.vertex_order)
        }
        self._attr_token: Dict[str, str] = {}
        for vertex, rel in enumerate(query.relations):
            for position, attr in enumerate(rel.attributes):
                self._attr_token[attr] = f"?{self._canonical_index[vertex]}#{position}"

    def vertex(self, storage_vertex: int) -> int:
        return self._canonical_index[storage_vertex]

    def attr(self, name: str) -> str:
        # Groupjoin outputs are optimizer-chosen aliases, not relation
        # attributes — they carry no relation name and stay literal.
        return self._attr_token.get(name, f"!{name}")

    # -- expressions ---------------------------------------------------------
    def expr(self, expr: Expr) -> str:
        if isinstance(expr, Attr):
            return self.attr(expr.name)
        if isinstance(expr, Const):
            return f"const({expr.value!r})"
        if isinstance(expr, BinOp):
            op, left, right = expr.op, expr.left, expr.right
            if op in _FLIP:
                op, left, right = _FLIP[op], right, left
            parts = [self.expr(left), self.expr(right)]
            if op in _COMMUTATIVE:
                parts.sort()
            return f"({op} {parts[0]} {parts[1]})"
        if isinstance(expr, Logical):
            parts = sorted(self.expr(operand) for operand in expr.operands)
            return f"({expr.op} " + " ".join(parts) + ")"
        if isinstance(expr, Not):
            return f"(not {self.expr(expr.operand)})"
        if isinstance(expr, IsNull):
            return f"(isnull {self.expr(expr.operand)})"
        if isinstance(expr, Case):
            return (
                f"(case {self.expr(expr.condition)} "
                f"{self.expr(expr.then)} {self.expr(expr.otherwise)})"
            )
        raise TypeError(f"cannot canonicalise expression {expr!r}")

    # -- aggregates ----------------------------------------------------------
    def call(self, call: AggCall) -> str:
        arg = self.expr(call.arg) if call.arg is not None else "*"
        distinct = "distinct " if call.distinct else ""
        return f"{call.kind.value}({distinct}{arg})"

    def vector(self, vector: AggVector) -> str:
        return "[" + ", ".join(f"{item.name}={self.call(item.call)}" for item in vector) + "]"

    # -- the initial operator tree -------------------------------------------
    def tree(self, tree: Tree) -> str:
        if isinstance(tree, TreeLeaf):
            return f"R{self.vertex(tree.vertex)}"
        edge = self.query.edge(tree.edge_id)
        vector = "" if edge.groupjoin_vector is None else f" {self.vector(edge.groupjoin_vector)}"
        return (
            f"({edge.op.name} {self.expr(edge.predicate)}{vector} "
            f"{self.tree(tree.left)} {self.tree(tree.right)})"
        )

    # -- floating (cycle-closing) edges --------------------------------------
    def floating_edge(self, edge_id: int) -> str:
        """The canonical ``(op predicate)`` form shared by fingerprint and
        snapshot — both must key a floating edge identically."""
        edge = self.query.edge(edge_id)
        return f"({edge.op.name} {self.expr(edge.predicate)})"


def query_fingerprint(query: Query) -> str:
    """Structural fingerprint of *query* (sha256 hex).

    Invariant under relation/attribute renaming, commutative operand
    order, conjunct order and comparison direction; sensitive to tree
    shape, operators, predicate structure, grouping and aggregation.
    """
    canon = _Canonicalizer(query)
    parts: List[str] = [f"n={len(query.relations)}"]
    parts.append("arity=" + ",".join(
        str(len(query.relations[vertex].attributes)) for vertex in canon.vertex_order
    ))
    parts.append("tree=" + canon.tree(query.tree))
    floating = sorted(canon.floating_edge(eid) for eid in query.floating_edge_ids)
    parts.append("floating=" + ";".join(floating))
    parts.append("local=" + ";".join(
        f"{canon_vertex}:{canon.expr(pred)}"
        for canon_vertex, (pred, _sel) in sorted(
            (canon.vertex(vertex), entry)
            for vertex, entry in query.local_predicates.items()
        )
    ))
    parts.append("group=" + ",".join(sorted(canon.attr(a) for a in query.group_by)))
    parts.append("agg=" + canon.vector(query.aggregates))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def _band_token(value: float, band_width: float) -> str:
    """Quantize a positive statistic onto a log10 grid of *band_width*.

    ``b<k>`` where ``k = round(log10(value) / band_width)`` — every value
    within the same band (half a band either side of the grid point)
    produces the same token, so snapshots whose statistics drifted less
    than ~half a band apart digest identically.  Non-positive values get
    their own token (cardinality 0 must never band with cardinality 1).
    """
    if value <= 0:
        return "b!"
    return f"b{math.floor(math.log10(value) / band_width + 0.5):d}"


def cardinality_snapshot(query: Query, band_width: Optional[float] = None) -> str:
    """Digest of every statistic the cost model consumes (sha256 hex).

    Covers relation cardinalities, per-attribute distinct counts (by
    position), declared keys, and edge / local-predicate selectivities.
    Unchanged by renaming; changed by any catalog statistics update.

    Each selectivity is keyed to its edge's *canonical structural
    identity* — tree edges by their position in the same pre-order
    traversal :func:`query_fingerprint` serializes, floating edges by
    their canonical ``(op predicate)`` form — never by edge-list storage
    order.  The fingerprint is storage-order invariant, so a
    storage-ordered selectivity list would let two different problems
    (same structure, selectivities attached to different predicates)
    share a full cache key and serve each other's plans.

    With *band_width* set (> 0, in log10 decades), every statistic is
    quantized onto a log-scale grid before digesting, so *nearby*
    snapshots share the digest: a stats refresh that moves a cardinality
    by less than ~half a band maps the query to the same structural
    cache entry, whose exact statistics the entry itself remembers for
    re-costing.  Banded and exact digests never collide — the band width
    is salted into the banded payload.
    """
    if band_width is not None and not band_width > 0:
        raise ValueError(f"band_width must be > 0 (or None for exact), got {band_width}")
    if band_width is None:
        stat6 = lambda value: f"{value:.6g}"  # noqa: E731 — local formatters
        stat9 = lambda value: f"{value:.9g}"  # noqa: E731
    else:
        stat6 = stat9 = lambda value: _band_token(value, band_width)  # noqa: E731
    canon = _Canonicalizer(query)
    parts: List[str] = []
    if band_width is not None:
        parts.append(f"band={band_width:.9g}")
    for canon_vertex, vertex in enumerate(canon.vertex_order):
        rel = query.relations[vertex]
        positions = {attr: i for i, attr in enumerate(rel.attributes)}
        distinct = ",".join(
            f"{i}:{stat6(rel.distinct_count(attr))}" for attr, i in positions.items()
        )
        keys = ";".join(sorted(
            ",".join(sorted(str(positions[a]) for a in key)) for key in rel.keys
        ))
        parts.append(f"{canon_vertex}|{stat6(rel.cardinality)}|{distinct}|{keys}")

    # tree_operators (STO) yields operator nodes in the same pre-order
    # _Canonicalizer.tree serializes, so slot i here pairs with the
    # fingerprint's i-th tree operator — never with edge-list order.
    parts.append("treesel=" + ",".join(
        stat9(query.edge(node.edge_id).selectivity) for node in tree_operators(query.tree)
    ))
    floating = sorted(
        f"{canon.floating_edge(eid)}:{stat9(query.edge(eid).selectivity)}"
        for eid in query.floating_edge_ids
    )
    parts.append("floatsel=" + ";".join(floating))
    parts.append("localsel=" + ",".join(
        f"{canon_vertex}:{stat9(sel)}"
        for canon_vertex, sel in sorted(
            (canon.vertex(vertex), sel)
            for vertex, (_pred, sel) in query.local_predicates.items()
        )
    ))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def shard_for_fingerprint(fingerprint: str, shards: int) -> int:
    """The shard (``0 .. shards-1``) owning *fingerprint*'s cache entries.

    The sharded serving tier routes every request by this function so one
    structural fingerprint always lands on the same worker-owned cache
    shard, whatever the SQL spelling.  It must therefore be **stable
    across processes and interpreter runs** — Python's builtin ``hash()``
    is salted per process and would scatter a query over all shards.

    The fingerprint is already a sha256 hex digest (uniformly
    distributed), so its leading 64 bits modulo *shards* is both stable
    and uniform.  Keys that differ only in statistics snapshot, strategy
    or cost model share a fingerprint and thus a shard, which is exactly
    right: they describe the same query structure and belong to the same
    shard's working set.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return int(fingerprint[:16], 16) % shards


def catalog_fingerprint(catalog) -> str:
    """A stable digest of every statistic *catalog* holds (sha256 hex).

    The handle cache persistence validates against: a plan-cache snapshot
    written under one catalog must not warm-start a server whose catalog
    (tables, columns, cardinalities, distinct counts, keys) differs —
    cached plans embed cost decisions derived from exactly these numbers,
    so serving them under different statistics would be a correctness
    bug, not a performance one.

    Covers table names, column order, cardinality, per-column distinct
    counts and declared keys; insensitive to registration order.
    """
    parts: List[str] = []
    for name in catalog.tables():
        stats = catalog.lookup(name)
        distinct = ",".join(
            f"{column}:{stats.distinct_count(column):.9g}" for column in stats.columns
        )
        keys = ";".join(sorted(
            ",".join(sorted(key)) for key in stats.keys
        ))
        parts.append(
            f"{stats.name.lower()}|{','.join(stats.columns)}|"
            f"{stats.cardinality:.9g}|{distinct}|{keys}"
        )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def strategy_label(strategy: "str | Strategy", factor: float = 1.03) -> Tuple[str, Optional[float]]:
    """Normalise a strategy spec to (name, effective factor) for keying."""
    chosen = strategy if isinstance(strategy, Strategy) else make_strategy(strategy, factor)
    return chosen.name, getattr(chosen, "factor", None)


def cache_key(
    query: Query,
    strategy: "str | Strategy" = "ea-prune",
    factor: float = 1.03,
    cost_model: str = "cout",
    band_width: Optional[float] = None,
) -> PlanCacheKey:
    """The full plan-cache key for optimizing *query* with *strategy*.

    *cost_model* is the registered cost-model name — plans priced by
    different models must not share entries.  *band_width* (log10
    decades, None = exact) selects the banded snapshot variant so nearby
    statistics share one structural entry — see
    :func:`cardinality_snapshot`.
    """
    name, effective_factor = strategy_label(strategy, factor)
    return PlanCacheKey(
        fingerprint=query_fingerprint(query),
        snapshot=cardinality_snapshot(query, band_width=band_width),
        strategy=name,
        factor=effective_factor,
        cost_model=cost_model,
    )
