"""The parallel batch driver: optimize a workload, not a query.

``optimize()`` is a one-query-at-a-time library call; a serving system
sees *workloads* — bursts of queries from many users, full of repeated
shapes.  :func:`optimize_many` closes that gap:

* **dedup before dispatch** — items are keyed by the structural
  fingerprint (:mod:`repro.service.fingerprint`); each distinct key is
  optimized at most once per batch, and an optional :class:`PlanCache`
  carries results across batches,
* **process parallelism** — distinct misses fan out over a
  ``multiprocessing`` pool (pure-Python DP enumeration is CPU-bound, so
  threads would serialise on the GIL),
* **streaming results** — items are yielded in submission order as soon
  as their plan is available, each with per-query timing and a
  ``cache_hit`` flag.

The expensive path stays the library's: workers call the very same
:func:`repro.optimizer.optimize`.  The driver only decides *what not to
recompute*.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.optimizer.config import OptimizerConfig
from repro.optimizer.driver import OptimizationResult, optimize
from repro.optimizer.strategies import Strategy
from repro.query.spec import Query
from repro.service.cache import CacheStats, PlanCache
from repro.service.fingerprint import PlanCacheKey, cache_key
from repro.service.rebind import query_binding, rebind_result

#: cap on the default worker count — DP enumeration is memory-hungry and
#: beyond this the pool's pickling overhead dominates for small queries.
_MAX_DEFAULT_WORKERS = 8


@dataclass
class BatchItem:
    """One workload entry's outcome, in submission order.

    Exactly one of *result* and *error* is set: a failed optimizer run
    yields ``result=None`` with *error* carrying the worker's exception as
    ``"ExcType: message"``.  Failures never come from the cache and are
    never stored into it, so a failed item always has ``cache_hit=False``.
    """

    index: int
    key: PlanCacheKey
    result: Optional[OptimizationResult]
    elapsed_seconds: float
    cache_hit: bool
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def cost(self) -> float:
        if self.result is None:
            raise ValueError(f"query {self.index} failed to optimize: {self.error}")
        return self.result.cost


@dataclass
class BatchReport:
    """Aggregate outcome of :func:`run_batch`."""

    items: List[BatchItem]
    wall_seconds: float
    workers: int
    cache_stats: Optional[CacheStats] = None

    @property
    def total(self) -> int:
        return len(self.items)

    @property
    def hits(self) -> int:
        return sum(1 for item in self.items if item.cache_hit)

    @property
    def failures(self) -> List[BatchItem]:
        """The items whose optimizer run raised (``result is None``)."""
        return [item for item in self.items if not item.ok]

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def hit_rate(self) -> float:
        """Fraction of items served without a fresh optimizer run."""
        return self.hits / self.total if self.items else 0.0

    @property
    def queries_per_second(self) -> float:
        return self.total / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    @property
    def optimize_seconds(self) -> float:
        """CPU seconds actually spent in the DP driver (misses only)."""
        return sum(
            item.result.elapsed_seconds
            for item in self.items
            if not item.cache_hit and item.result is not None
        )


def default_workers() -> int:
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    return max(1, min(available, _MAX_DEFAULT_WORKERS))


@dataclass
class WorkerOutcome:
    """What one optimizer run produced: a result or a captured error.

    Workers return this envelope instead of raising so a single poisoned
    query cannot abort a whole batch (exceptions propagating out of
    ``Pool.imap`` lose every completed result) and so unpicklable
    exception types cannot kill the pool protocol.
    """

    result: Optional[OptimizationResult]
    error: Optional[str]
    elapsed_seconds: float
    #: True when the error is a blown planning deadline
    #: (``degradation="error"``) — servers map it to 504 instead of 500.
    deadline: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def _optimize_payload(payload: Tuple[Query, OptimizerConfig]) -> WorkerOutcome:
    """Pool worker: one optimizer run, errors captured (module-level for
    pickling)."""
    from repro import chaos
    from repro.optimizer.deadline import PlanningDeadlineExceeded

    query, config = payload
    if chaos.enabled():
        chaos.before_request(" ".join(rel.name for rel in query.relations))
    started = time.perf_counter()
    try:
        result = optimize(query, config=config)
    except PlanningDeadlineExceeded as exc:
        return WorkerOutcome(
            None,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - started,
            deadline=True,
        )
    except Exception as exc:  # noqa: BLE001 - per-item fault isolation
        return WorkerOutcome(None, f"{type(exc).__name__}: {exc}", time.perf_counter() - started)
    return WorkerOutcome(result, None, result.elapsed_seconds)


#: the legacy-kwarg defaults `resolve_config` treats as "not explicitly set".
_DEFAULT_STRATEGY = "ea-prune"
_DEFAULT_FACTOR = 1.03


def resolve_config(
    config: Optional[OptimizerConfig],
    strategy: "str | Strategy",
    factor: float,
    workers: Optional[int],
) -> OptimizerConfig:
    """Fold the legacy kwargs and the config object into one config.

    Passing *config* together with a non-default legacy *strategy* or
    *factor* is a conflict and raises :class:`ValueError` (mirroring
    :class:`~repro.optimizer.config.OptimizerConfig`'s eager validation)
    rather than silently ignoring the legacy value; an explicit *workers*
    argument overrides the config's.
    """
    if config is None:
        return OptimizerConfig(
            strategy=strategy, factor=factor, workers=workers, cache_capacity=None
        )
    conflicts = []
    if strategy != _DEFAULT_STRATEGY:
        conflicts.append(f"strategy={strategy!r}")
    if factor != _DEFAULT_FACTOR:
        conflicts.append(f"factor={factor!r}")
    if conflicts:
        raise ValueError(
            f"conflicting optimizer settings: {', '.join(conflicts)} passed "
            "alongside config=...; set them on the OptimizerConfig instead"
        )
    if workers is not None and workers != config.workers:
        config = config.with_overrides(workers=workers)
    return config


def optimize_many(
    queries: Sequence[Query],
    strategy: "str | Strategy" = _DEFAULT_STRATEGY,
    factor: float = _DEFAULT_FACTOR,
    workers: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    config: Optional[OptimizerConfig] = None,
) -> Iterator[BatchItem]:
    """Optimize *queries*, yielding a :class:`BatchItem` per entry in order.

    Settings come from *config* (an
    :class:`~repro.optimizer.config.OptimizerConfig`); the *strategy* /
    *factor* / *workers* parameters remain as a shim for the seed's call
    style (see :func:`resolve_config` for precedence).

    Every item whose plan was not freshly computed — served from *cache*
    or sharing the run of an identical earlier item in the same batch —
    carries ``cache_hit=True``.  With ``workers <= 1`` (or a single miss)
    everything runs in-process; otherwise distinct misses are spread over
    a process pool.  The cache is consulted and populated only in the
    dispatching process, so workers stay oblivious to it.

    A query whose optimizer run raises does not abort the batch: its item
    (and every in-batch duplicate's) streams back with ``result=None`` and
    the exception text in :attr:`BatchItem.error`, while all other items
    keep their results.  Failures are never stored in the cache.
    """
    config = resolve_config(config, strategy, factor, workers)
    workers = config.workers if config.workers is not None else default_workers()

    keys = [
        cache_key(query, config.strategy, config.factor, cost_model=config.cost_model_name)
        for query in queries
    ]

    # Schedule: probe the cache once per distinct key; collect the misses
    # (first occurrence wins) in submission order.  Resolved entries keep
    # the binding of the query the plan is currently expressed in, so
    # duplicates under *different* names can be rebound when served.
    # A failed run resolves to (None, elapsed, None, error).
    resolved: Dict[
        PlanCacheKey, Tuple[Optional[OptimizationResult], float, Optional[Tuple], Optional[str]]
    ] = {}
    scheduled: set = set()
    miss_order: List[PlanCacheKey] = []
    miss_payload: List[Tuple[Query, OptimizerConfig]] = []
    for query, key in zip(queries, keys):
        if key in scheduled:
            continue
        scheduled.add(key)
        if cache is not None:
            started = time.perf_counter()
            served = cache.serve(key, query)
            if served is not None:
                resolved[key] = (
                    served, time.perf_counter() - started, query_binding(query), None
                )
                continue
        miss_order.append(key)
        miss_payload.append((query, config))

    def finish(key: PlanCacheKey, query: Query, outcome: WorkerOutcome) -> None:
        if not outcome.ok:
            resolved[key] = (None, outcome.elapsed_seconds, None, outcome.error)
            return
        result = outcome.result
        if cache is not None:
            cache.store(key, query, result)
        resolved[key] = (result, result.elapsed_seconds, query_binding(query), None)

    computed: set = set()

    def emit(index: int, key: PlanCacheKey) -> BatchItem:
        # The first item to surface a freshly computed plan reports the
        # run; every other serving of the same result is a (batch or
        # cross-batch) cache hit with negligible cost.
        result, elapsed, binding, error = resolved[key]
        if error is not None:
            # The first duplicate reports the failed run's wall time; the
            # rest shared the outcome for free.  Failures never count as
            # cache hits (nothing was cached).
            first_failure = key not in computed
            if first_failure:
                computed.add(key)
            return BatchItem(
                index=index,
                key=key,
                result=None,
                elapsed_seconds=elapsed if first_failure else 0.0,
                cache_hit=False,
                error=error,
            )
        result = rebind_result(result, binding, queries[index])
        first_run = not result.cache_hit and key not in computed
        if first_run:
            computed.add(key)
        return BatchItem(
            index=index,
            key=key,
            result=result if first_run else result.as_cache_hit(),
            # cross-batch hits report the cache probe time; within-batch
            # duplicates share an in-flight result for free.
            elapsed_seconds=elapsed if first_run or result.cache_hit else 0.0,
            cache_hit=not first_run,
        )

    if workers <= 1 or len(miss_payload) <= 1:
        # Serial path: compute lazily so results still stream in order.
        pending = dict(zip(miss_order, miss_payload))
        for index, key in enumerate(keys):
            if key not in resolved:
                query, cfg = pending[key]
                finish(key, query, _optimize_payload((query, cfg)))
            yield emit(index, key)
        return

    processes = min(workers, len(miss_payload))
    context = multiprocessing.get_context()
    with context.Pool(processes=processes) as pool:
        # imap preserves submission order, so results for miss_order[i]
        # arrive exactly when the emit loop first needs them.  Workers
        # return WorkerOutcome envelopes, so a poisoned query surfaces as
        # a per-item error here instead of raising out of next().
        arriving = pool.imap(_optimize_payload, miss_payload, chunksize=1)
        pulled = 0
        for index, key in enumerate(keys):
            while key not in resolved:
                outcome = next(arriving)
                finish(miss_order[pulled], miss_payload[pulled][0], outcome)
                pulled += 1
            yield emit(index, key)


def run_batch(
    queries: Sequence[Query],
    strategy: "str | Strategy" = _DEFAULT_STRATEGY,
    factor: float = _DEFAULT_FACTOR,
    workers: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    config: Optional[OptimizerConfig] = None,
) -> BatchReport:
    """Drive :func:`optimize_many` to completion and summarise it."""
    config = resolve_config(config, strategy, factor, workers)
    effective_workers = config.workers if config.workers is not None else default_workers()
    started = time.perf_counter()
    items = list(optimize_many(queries, cache=cache, config=config))
    wall = time.perf_counter() - started
    return BatchReport(
        items=items,
        wall_seconds=wall,
        workers=effective_workers,
        cache_stats=cache.stats_snapshot() if cache is not None else None,
    )
