"""An LRU plan cache with statistics and catalog invalidation.

DP plan generation is by far the most expensive step of serving a query
(Fig. 16: seconds per query at larger relation counts), while the inputs
repeat heavily in production traffic — dashboards and applications
re-issue the same query shapes, differing at most in relation/attribute
naming or predicate spelling.  Caching the
:class:`~repro.optimizer.driver.OptimizationResult` under the structural
fingerprint of :mod:`repro.service.fingerprint` turns those repeats into
dictionary lookups.  (Constant *values* are part of the fingerprint:
queries differing in constants are different problems — their plans embed
the constants — so they intentionally miss.)

Correctness hinges on invalidation: a cached plan embeds cost and
cardinality decisions derived from catalog statistics, so the key includes
a statistics snapshot (stale statistics miss instead of serving a stale
plan) and the cache additionally supports *eager* invalidation — dropping
every entry that touches a relation whenever the catalog announces a
change (:meth:`PlanCache.watch`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.service.fingerprint import PlanCacheKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.driver import OptimizationResult

#: on-disk snapshot identity + layout version.  Bump the version whenever
#: the pickled entry layout (PlanCacheKey, OptimizationResult, PlanInfo,
#: binding tuples) changes incompatibly: a loader must refuse rather than
#: unpickle entries it would misinterpret.
SNAPSHOT_FORMAT = "repro-plancache"
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """A plan-cache snapshot that must not be loaded.

    *reason* is a stable machine-readable tag:

    * ``"missing"`` — the file does not exist,
    * ``"corrupt"`` — unreadable header / truncated file,
    * ``"format"`` / ``"version"`` — written by a different format or an
      incompatible layout version,
    * ``"catalog"`` — the catalog fingerprint differs: the snapshot's
      plans embed statistics that no longer hold (serving them would be a
      correctness bug, so the loader refuses and the server cold-starts),
    * ``"checksum"`` — the entry payload does not match its recorded
      digest (tampered or torn write).
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason
        self.message = message


@dataclass
class CacheStats:
    """Counters exposed by :attr:`PlanCache.stats`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """A field-by-field copy — NOT atomic against concurrent updates.

        These counters mutate under :attr:`PlanCache._lock`; reading five
        of them here without that lock can tear (e.g. a ``hits`` from
        before and a ``misses`` from after another thread's lookup).  Use
        :meth:`PlanCache.stats_snapshot` for a consistent copy.
        """
        return CacheStats(self.hits, self.misses, self.puts, self.evictions, self.invalidations)

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, puts={self.puts}, "
            f"evictions={self.evictions}, invalidations={self.invalidations}, "
            f"hit_rate={self.hit_rate:.1%})"
        )


@dataclass
class _Entry:
    result: "OptimizationResult"
    relations: FrozenSet[str] = field(default_factory=frozenset)
    #: naming of the query the result was computed for (service.rebind.Binding);
    #: None means "serve verbatim" (caller guarantees name compatibility).
    binding: Optional[Tuple] = None


class PlanCache:
    """A bounded, thread-safe, least-recently-used plan cache.

    Thread safety matters because the batch driver consults the cache from
    the dispatching thread while results stream back; a plain lock
    suffices — entries are immutable once stored.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanCacheKey, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- core protocol -------------------------------------------------------
    def get(self, key: PlanCacheKey) -> Optional["OptimizationResult"]:
        """The cached result for *key*, refreshing its recency; else None."""
        found = self.lookup(key)
        return found[0] if found is not None else None

    def lookup(
        self, key: PlanCacheKey
    ) -> Optional[Tuple["OptimizationResult", Optional[Tuple]]]:
        """Like :meth:`get`, but returns ``(result, binding)``.

        The binding is the source query's naming as stored at :meth:`put`
        time; a caller serving a differently-named query must rebind the
        result (:func:`repro.service.rebind.rebind_result`) before use.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.result, entry.binding

    def serve(self, key: PlanCacheKey, query) -> Optional["OptimizationResult"]:
        """The cached result for *key*, re-expressed in *query*'s names.

        The one serving entry point shared by :func:`repro.optimizer.optimize`
        and the batch driver: probes once (statistics update exactly as
        :meth:`lookup`), rebinds the stored plan to *query*'s naming when the
        entry came from a renamed-but-isomorphic query, and marks the copy
        as a cache hit.  Returns None on miss.
        """
        from repro.service.rebind import rebind_result

        found = self.lookup(key)
        if found is None:
            return None
        result, binding = found
        if binding is not None:
            result = rebind_result(result, binding, query)
        return result.as_cache_hit()

    def store(self, key: PlanCacheKey, query, result: "OptimizationResult") -> None:
        """Store a freshly computed *result* for *query* under *key*.

        The counterpart of :meth:`serve`: records the base tables the plan
        scans (the handle eager invalidation grabs) and *query*'s naming
        (so renamed-but-isomorphic hits can be rebound).

        Deadline-degraded results are refused (silently): a degraded plan
        is a serve-something fallback, not the plan of record, and caching
        one would pin the degraded answer past the deadline that caused it.
        """
        if getattr(result, "degraded", False):
            return
        from repro.service.rebind import query_binding

        self.put(
            key,
            result,
            relations=(rel.source_table for rel in query.relations),
            binding=query_binding(query),
        )

    def put(
        self,
        key: PlanCacheKey,
        result: "OptimizationResult",
        relations: Iterable[str] = (),
        binding: Optional[Tuple] = None,
    ) -> None:
        """Store *result* under *key*.

        *relations* are the base-table names the plan scans — the handle
        eager invalidation grabs when the catalog changes.  *binding* is
        the source query's naming (see :func:`repro.service.rebind.query_binding`)
        so hits for renamed-but-isomorphic queries can be rebound.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = _Entry(result, frozenset(relations), binding)
            self.stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def stats_snapshot(self) -> CacheStats:
        """A consistent copy of :attr:`stats`, taken under the cache lock.

        Counters only ever mutate while :attr:`_lock` is held, so holding
        it here guarantees the five fields describe one instant — an
        unlocked :meth:`CacheStats.snapshot` can interleave with a
        concurrent lookup and report torn totals.
        """
        with self._lock:
            return self.stats.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanCacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> int:
        """Drop every entry, counting each as an invalidation.

        Alias for ``invalidate(None)`` — the two used to diverge (``clear``
        silently skipped the invalidation counters, so ``describe()`` lied
        about how entries had left the cache).  Returns the number of
        entries removed.
        """
        return self.invalidate(None)

    # -- invalidation --------------------------------------------------------
    def invalidate(self, relation: Optional[str] = None) -> int:
        """Drop entries touching *relation* (or everything when None).

        Returns the number of entries removed.  Matching is by the
        relation names recorded at :meth:`put` time, case-insensitive to
        mirror catalog lookup semantics.
        """
        with self._lock:
            if relation is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                needle = relation.lower()
                doomed = [
                    key
                    for key, entry in self._entries.items()
                    if any(name.lower() == needle for name in entry.relations)
                ]
                for key in doomed:
                    del self._entries[key]
                removed = len(doomed)
            self.stats.invalidations += removed
            return removed

    def watch(self, catalog) -> Callable[[], None]:
        """Subscribe to *catalog* so statistics changes evict stale plans.

        The catalog calls back with the changed table name; entries whose
        plans scan that table are dropped.  (Entries keyed under the old
        statistics would miss anyway via the snapshot — watching reclaims
        their memory immediately and keeps the hit-rate signal honest.)

        Returns the catalog's unsubscribe handle; call it to detach the
        cache (e.g. before discarding a short-lived cache so the catalog
        does not keep it alive).
        """
        return catalog.subscribe(self.invalidate)

    # -- persistence ---------------------------------------------------------
    def save_snapshot(
        self,
        path: "str | os.PathLike",
        *,
        catalog_fingerprint: str,
        meta: Optional[dict] = None,
    ) -> int:
        """Write every entry to *path*; returns the number written.

        Layout: one JSON header line (format, version, catalog
        fingerprint, entry count, payload checksum, caller *meta*)
        followed by a pickled entry list in LRU order (oldest first).
        The header is validated by :meth:`load_snapshot` **before** any
        unpickling, so a stale or foreign file is refused cheaply; the
        checksum guards against truncation and tampering (it is an
        integrity check against accidents, not a security boundary — the
        snapshot directory must be trusted, as with any pickle).

        The write is atomic (temp file + ``os.replace``), so a crash
        mid-save leaves the previous snapshot intact.
        """
        with self._lock:
            entries = [
                (key, entry.result, tuple(entry.relations), entry.binding)
                for key, entry in self._entries.items()
            ]
        blob = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "catalog_fingerprint": catalog_fingerprint,
            "entries": len(entries),
            "checksum": hashlib.sha256(blob).hexdigest(),
            "meta": meta or {},
        }
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            handle.write(b"\n")
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return len(entries)

    @staticmethod
    def read_snapshot_header(path: "str | os.PathLike") -> dict:
        """Parse and structurally validate *path*'s header line only.

        Raises :class:`SnapshotError` (``missing`` / ``corrupt`` /
        ``format``) without touching the pickled payload.
        """
        try:
            with open(path, "rb") as handle:
                line = handle.readline(1 << 20)
        except FileNotFoundError:
            raise SnapshotError("missing", f"no snapshot at {os.fspath(path)!r}") from None
        except OSError as exc:
            raise SnapshotError("corrupt", f"unreadable snapshot: {exc}") from exc
        try:
            header = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError("corrupt", f"unparsable snapshot header: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                "format",
                f"not a {SNAPSHOT_FORMAT} snapshot: {os.fspath(path)!r}",
            )
        return header

    def load_snapshot(
        self,
        path: "str | os.PathLike",
        *,
        catalog_fingerprint: str,
    ) -> int:
        """Warm-start from *path*; returns the number of entries loaded.

        Refuses (raising :class:`SnapshotError`) any file whose format,
        layout version or **catalog fingerprint** mismatches, or whose
        payload fails its checksum — a snapshot taken under different
        catalog statistics would serve stale plans, which is a
        correctness bug, so the caller must treat a refusal as "cold
        start", never as "load anyway".

        Entries are inserted preserving the saved LRU order; when the
        snapshot holds more entries than :attr:`capacity`, only the
        most-recently-used ``capacity`` entries are kept.  Loading counts
        toward :attr:`CacheStats.puts` like any other store (and the
        usual eviction accounting applies), so ``describe()`` stays an
        honest ledger of how entries entered the cache.
        """
        header = self.read_snapshot_header(path)
        if header.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                "version",
                f"snapshot layout v{header.get('version')} != "
                f"supported v{SNAPSHOT_VERSION}",
            )
        if header.get("catalog_fingerprint") != catalog_fingerprint:
            raise SnapshotError(
                "catalog",
                "snapshot was written under a different catalog "
                "(statistics changed since the snapshot — refusing to "
                "serve stale plans)",
            )
        with open(path, "rb") as handle:
            handle.readline(1 << 20)
            blob = handle.read()
        if hashlib.sha256(blob).hexdigest() != header.get("checksum"):
            raise SnapshotError(
                "checksum", "snapshot payload does not match its checksum "
                "(tampered or truncated)"
            )
        try:
            entries = pickle.loads(blob)
        except Exception as exc:  # pickle raises many types
            raise SnapshotError("corrupt", f"unpicklable snapshot payload: {exc}") from exc
        if not isinstance(entries, list):
            raise SnapshotError("corrupt", "snapshot payload is not an entry list")
        kept = entries[-self.capacity:]
        with self._lock:
            for key, result, relations, binding in kept:
                if key in self._entries:
                    self._entries.move_to_end(key)
                self._entries[key] = _Entry(result, frozenset(relations), binding)
                self.stats.puts += 1
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        return len(kept)

    # -- introspection -------------------------------------------------------
    def keys(self) -> Tuple[PlanCacheKey, ...]:
        with self._lock:
            return tuple(self._entries)

    def relations_of(self, key: PlanCacheKey) -> FrozenSet[str]:
        with self._lock:
            entry = self._entries.get(key)
            return entry.relations if entry is not None else frozenset()

    def describe(self) -> Dict[str, float]:
        """A flat metrics dict (for logging / monitoring endpoints)."""
        with self._lock:
            return {
                "size": float(len(self._entries)),
                "capacity": float(self.capacity),
                "hits": float(self.stats.hits),
                "misses": float(self.stats.misses),
                "puts": float(self.stats.puts),
                "evictions": float(self.stats.evictions),
                "invalidations": float(self.stats.invalidations),
                "hit_rate": self.stats.hit_rate,
            }
