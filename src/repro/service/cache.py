"""An LRU plan cache with statistics and catalog invalidation.

DP plan generation is by far the most expensive step of serving a query
(Fig. 16: seconds per query at larger relation counts), while the inputs
repeat heavily in production traffic — dashboards and applications
re-issue the same query shapes, differing at most in relation/attribute
naming or predicate spelling.  Caching the
:class:`~repro.optimizer.driver.OptimizationResult` under the structural
fingerprint of :mod:`repro.service.fingerprint` turns those repeats into
dictionary lookups.  (Constant *values* are part of the fingerprint:
queries differing in constants are different problems — their plans embed
the constants — so they intentionally miss.)

Correctness hinges on invalidation: a cached plan embeds cost and
cardinality decisions derived from catalog statistics, so the key includes
a statistics snapshot (stale statistics miss instead of serving a stale
plan) and the cache additionally supports *eager* invalidation — dropping
every entry that touches a relation whenever the catalog announces a
change (:meth:`PlanCache.watch`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.service.fingerprint import PlanCacheKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.driver import OptimizationResult


@dataclass
class CacheStats:
    """Counters exposed by :attr:`PlanCache.stats`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """A field-by-field copy — NOT atomic against concurrent updates.

        These counters mutate under :attr:`PlanCache._lock`; reading five
        of them here without that lock can tear (e.g. a ``hits`` from
        before and a ``misses`` from after another thread's lookup).  Use
        :meth:`PlanCache.stats_snapshot` for a consistent copy.
        """
        return CacheStats(self.hits, self.misses, self.puts, self.evictions, self.invalidations)

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, puts={self.puts}, "
            f"evictions={self.evictions}, invalidations={self.invalidations}, "
            f"hit_rate={self.hit_rate:.1%})"
        )


@dataclass
class _Entry:
    result: "OptimizationResult"
    relations: FrozenSet[str] = field(default_factory=frozenset)
    #: naming of the query the result was computed for (service.rebind.Binding);
    #: None means "serve verbatim" (caller guarantees name compatibility).
    binding: Optional[Tuple] = None


class PlanCache:
    """A bounded, thread-safe, least-recently-used plan cache.

    Thread safety matters because the batch driver consults the cache from
    the dispatching thread while results stream back; a plain lock
    suffices — entries are immutable once stored.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanCacheKey, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- core protocol -------------------------------------------------------
    def get(self, key: PlanCacheKey) -> Optional["OptimizationResult"]:
        """The cached result for *key*, refreshing its recency; else None."""
        found = self.lookup(key)
        return found[0] if found is not None else None

    def lookup(
        self, key: PlanCacheKey
    ) -> Optional[Tuple["OptimizationResult", Optional[Tuple]]]:
        """Like :meth:`get`, but returns ``(result, binding)``.

        The binding is the source query's naming as stored at :meth:`put`
        time; a caller serving a differently-named query must rebind the
        result (:func:`repro.service.rebind.rebind_result`) before use.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.result, entry.binding

    def serve(self, key: PlanCacheKey, query) -> Optional["OptimizationResult"]:
        """The cached result for *key*, re-expressed in *query*'s names.

        The one serving entry point shared by :func:`repro.optimizer.optimize`
        and the batch driver: probes once (statistics update exactly as
        :meth:`lookup`), rebinds the stored plan to *query*'s naming when the
        entry came from a renamed-but-isomorphic query, and marks the copy
        as a cache hit.  Returns None on miss.
        """
        from repro.service.rebind import rebind_result

        found = self.lookup(key)
        if found is None:
            return None
        result, binding = found
        if binding is not None:
            result = rebind_result(result, binding, query)
        return result.as_cache_hit()

    def store(self, key: PlanCacheKey, query, result: "OptimizationResult") -> None:
        """Store a freshly computed *result* for *query* under *key*.

        The counterpart of :meth:`serve`: records the base tables the plan
        scans (the handle eager invalidation grabs) and *query*'s naming
        (so renamed-but-isomorphic hits can be rebound).
        """
        from repro.service.rebind import query_binding

        self.put(
            key,
            result,
            relations=(rel.source_table for rel in query.relations),
            binding=query_binding(query),
        )

    def put(
        self,
        key: PlanCacheKey,
        result: "OptimizationResult",
        relations: Iterable[str] = (),
        binding: Optional[Tuple] = None,
    ) -> None:
        """Store *result* under *key*.

        *relations* are the base-table names the plan scans — the handle
        eager invalidation grabs when the catalog changes.  *binding* is
        the source query's naming (see :func:`repro.service.rebind.query_binding`)
        so hits for renamed-but-isomorphic queries can be rebound.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = _Entry(result, frozenset(relations), binding)
            self.stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def stats_snapshot(self) -> CacheStats:
        """A consistent copy of :attr:`stats`, taken under the cache lock.

        Counters only ever mutate while :attr:`_lock` is held, so holding
        it here guarantees the five fields describe one instant — an
        unlocked :meth:`CacheStats.snapshot` can interleave with a
        concurrent lookup and report torn totals.
        """
        with self._lock:
            return self.stats.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanCacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> int:
        """Drop every entry, counting each as an invalidation.

        Alias for ``invalidate(None)`` — the two used to diverge (``clear``
        silently skipped the invalidation counters, so ``describe()`` lied
        about how entries had left the cache).  Returns the number of
        entries removed.
        """
        return self.invalidate(None)

    # -- invalidation --------------------------------------------------------
    def invalidate(self, relation: Optional[str] = None) -> int:
        """Drop entries touching *relation* (or everything when None).

        Returns the number of entries removed.  Matching is by the
        relation names recorded at :meth:`put` time, case-insensitive to
        mirror catalog lookup semantics.
        """
        with self._lock:
            if relation is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                needle = relation.lower()
                doomed = [
                    key
                    for key, entry in self._entries.items()
                    if any(name.lower() == needle for name in entry.relations)
                ]
                for key in doomed:
                    del self._entries[key]
                removed = len(doomed)
            self.stats.invalidations += removed
            return removed

    def watch(self, catalog) -> Callable[[], None]:
        """Subscribe to *catalog* so statistics changes evict stale plans.

        The catalog calls back with the changed table name; entries whose
        plans scan that table are dropped.  (Entries keyed under the old
        statistics would miss anyway via the snapshot — watching reclaims
        their memory immediately and keeps the hit-rate signal honest.)

        Returns the catalog's unsubscribe handle; call it to detach the
        cache (e.g. before discarding a short-lived cache so the catalog
        does not keep it alive).
        """
        return catalog.subscribe(self.invalidate)

    # -- introspection -------------------------------------------------------
    def keys(self) -> Tuple[PlanCacheKey, ...]:
        with self._lock:
            return tuple(self._entries)

    def relations_of(self, key: PlanCacheKey) -> FrozenSet[str]:
        with self._lock:
            entry = self._entries.get(key)
            return entry.relations if entry is not None else frozenset()

    def describe(self) -> Dict[str, float]:
        """A flat metrics dict (for logging / monitoring endpoints)."""
        with self._lock:
            return {
                "size": float(len(self._entries)),
                "capacity": float(self.capacity),
                "hits": float(self.stats.hits),
                "misses": float(self.stats.misses),
                "puts": float(self.stats.puts),
                "evictions": float(self.stats.evictions),
                "invalidations": float(self.stats.invalidations),
                "hit_rate": self.stats.hit_rate,
            }
