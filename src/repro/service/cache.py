"""An LRU plan cache with statistics and catalog invalidation.

DP plan generation is by far the most expensive step of serving a query
(Fig. 16: seconds per query at larger relation counts), while the inputs
repeat heavily in production traffic — dashboards and applications
re-issue the same query shapes, differing at most in relation/attribute
naming or predicate spelling.  Caching the
:class:`~repro.optimizer.driver.OptimizationResult` under the structural
fingerprint of :mod:`repro.service.fingerprint` turns those repeats into
dictionary lookups.  (Constant *values* are part of the fingerprint:
queries differing in constants are different problems — their plans embed
the constants — so they intentionally miss.)

Correctness hinges on invalidation: a cached plan embeds cost and
cardinality decisions derived from catalog statistics, so the key includes
a statistics snapshot (stale statistics miss instead of serving a stale
plan) and the cache additionally supports *eager* invalidation — dropping
every entry that touches a relation whenever the catalog announces a
change (:meth:`PlanCache.watch`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.service.fingerprint import PlanCacheKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.driver import OptimizationResult

#: on-disk snapshot identity + layout version.  Bump the version whenever
#: the pickled entry layout (PlanCacheKey, OptimizationResult, PlanInfo,
#: binding tuples) changes incompatibly: a loader must refuse rather than
#: unpickle entries it would misinterpret.
SNAPSHOT_FORMAT = "repro-plancache"
SNAPSHOT_VERSION = 2

#: entry lifecycle states.  ``fresh`` — statistics unchanged since the
#: plan was stored; ``stale`` — a stats delta touched one of the plan's
#: base tables (or its exact snapshot no longer matches the query's), the
#: entry keeps serving while awaiting revalidation; ``revalidating`` — a
#: background revalidator claimed it (still servable).  Revalidation ends
#: the cycle with :meth:`PlanCache.refresh` (back to ``fresh``) or
#: eviction.
FRESH = "fresh"
STALE = "stale"
REVALIDATING = "revalidating"


class SnapshotError(Exception):
    """A plan-cache snapshot that must not be loaded.

    *reason* is a stable machine-readable tag:

    * ``"missing"`` — the file does not exist,
    * ``"corrupt"`` — unreadable header / truncated file,
    * ``"format"`` / ``"version"`` — written by a different format or an
      incompatible layout version,
    * ``"catalog"`` — the catalog fingerprint differs: the snapshot's
      plans embed statistics that no longer hold (serving them would be a
      correctness bug, so the loader refuses and the server cold-starts),
    * ``"checksum"`` — the entry payload does not match its recorded
      digest (tampered or torn write).
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason
        self.message = message


@dataclass
class CacheStats:
    """Counters exposed by :attr:`PlanCache.stats`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    invalidations: int = 0
    marked_stale: int = 0
    stale_hits: int = 0
    refreshed: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """A field-by-field copy — NOT atomic against concurrent updates.

        These counters mutate under :attr:`PlanCache._lock`; reading them
        here without that lock can tear (e.g. a ``hits`` from before and
        a ``misses`` from after another thread's lookup).  Use
        :meth:`PlanCache.stats_snapshot` for a consistent copy.
        """
        return CacheStats(
            self.hits, self.misses, self.puts, self.evictions, self.invalidations,
            self.marked_stale, self.stale_hits, self.refreshed,
        )

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, puts={self.puts}, "
            f"evictions={self.evictions}, invalidations={self.invalidations}, "
            f"marked_stale={self.marked_stale}, stale_hits={self.stale_hits}, "
            f"refreshed={self.refreshed}, hit_rate={self.hit_rate:.1%})"
        )


@dataclass
class _Entry:
    result: "OptimizationResult"
    relations: FrozenSet[str] = field(default_factory=frozenset)
    #: naming of the query the result was computed for (service.rebind.Binding);
    #: None means "serve verbatim" (caller guarantees name compatibility).
    binding: Optional[Tuple] = None
    #: lifecycle state — FRESH / STALE / REVALIDATING.
    state: str = FRESH
    #: the *exact* (unbanded) cardinality snapshot the plan was costed
    #: under; with banded keys this is how drift-within-a-band is
    #: detected on access (exact mismatch → serve stale + revalidate).
    exact_snapshot: Optional[str] = None
    #: re-parseable source text (when the entry came through a SQL front
    #: door) so a background revalidator can rebuild the query under
    #: fresh statistics without the original request.
    sql: Optional[str] = None
    #: the stored query object — transient revalidation context, NOT
    #: persisted in snapshots (it can hold resolver caches).
    query: Optional[object] = None
    #: lifetime hit count; :meth:`PlanCache.claim_stale` drains the
    #: hottest entries first so revalidation capacity goes where the
    #: serving traffic is.
    hits: int = 0


@dataclass(frozen=True)
class StaleClaim:
    """One stale entry claimed for revalidation (:meth:`PlanCache.claim_stale`).

    Carries the cached result (for re-costing), the source SQL and/or
    query object (for re-parsing under fresh statistics), and the exact
    snapshot the plan was costed under (for drift diagnostics).
    """

    key: PlanCacheKey
    result: "OptimizationResult"
    sql: Optional[str]
    exact_snapshot: Optional[str]
    query: Optional[object]
    binding: Optional[Tuple]


class PlanCache:
    """A bounded, thread-safe, least-recently-used plan cache.

    Thread safety matters because the batch driver consults the cache from
    the dispatching thread while results stream back; a plain lock
    suffices — entries are immutable once stored.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanCacheKey, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- core protocol -------------------------------------------------------
    def get(self, key: PlanCacheKey) -> Optional["OptimizationResult"]:
        """The cached result for *key*, refreshing its recency; else None."""
        found = self.lookup(key)
        return found[0] if found is not None else None

    def lookup(
        self, key: PlanCacheKey
    ) -> Optional[Tuple["OptimizationResult", Optional[Tuple]]]:
        """Like :meth:`get`, but returns ``(result, binding)``.

        The binding is the source query's naming as stored at :meth:`put`
        time; a caller serving a differently-named query must rebind the
        result (:func:`repro.service.rebind.rebind_result`) before use.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            entry.hits += 1
            return entry.result, entry.binding

    def serve(self, key: PlanCacheKey, query) -> Optional["OptimizationResult"]:
        """The cached result for *key*, re-expressed in *query*'s names.

        The one serving entry point shared by :func:`repro.optimizer.optimize`
        and the batch driver: probes once (statistics update exactly as
        :meth:`lookup`), rebinds the stored plan to *query*'s naming when the
        entry came from a renamed-but-isomorphic query, and marks the copy
        as a cache hit.  Returns None on miss.
        """
        found = self.serve_entry(key, query)
        return found[0] if found is not None else None

    def serve_entry(
        self,
        key: PlanCacheKey,
        query,
        exact_snapshot: Optional[str] = None,
    ) -> Optional[Tuple["OptimizationResult", str]]:
        """Like :meth:`serve`, but lifecycle-aware: ``(result, state)``.

        *exact_snapshot* is the probing query's exact (unbanded)
        cardinality snapshot.  Under banded keys a drifted-but-nearby
        snapshot still *hits* the structural entry; if it differs from
        the snapshot the entry was costed under, the entry is marked
        stale on the spot (stale-while-revalidate: the caller serves the
        returned result now and queues revalidation).  The returned state
        is the entry's state **at serve time** — :data:`STALE` /
        :data:`REVALIDATING` results should bump a ``stale_served``
        metric upstream.
        """
        from repro.service.rebind import rebind_result

        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            entry.hits += 1
            if (
                entry.state == FRESH
                and exact_snapshot is not None
                and entry.exact_snapshot is not None
                and entry.exact_snapshot != exact_snapshot
            ):
                entry.state = STALE
                self.stats.marked_stale += 1
            state = entry.state
            if state != FRESH:
                self.stats.stale_hits += 1
            result, binding = entry.result, entry.binding
        if binding is not None:
            result = rebind_result(result, binding, query)
        return result.as_cache_hit(), state

    def store(
        self,
        key: PlanCacheKey,
        query,
        result: "OptimizationResult",
        sql: Optional[str] = None,
        exact_snapshot: Optional[str] = None,
    ) -> None:
        """Store a freshly computed *result* for *query* under *key*.

        The counterpart of :meth:`serve`: records the base tables the plan
        scans (the handle eager invalidation grabs) and *query*'s naming
        (so renamed-but-isomorphic hits can be rebound).  *sql* and
        *exact_snapshot* feed the revalidation path — see :class:`_Entry`.

        Deadline-degraded results are refused (silently): a degraded plan
        is a serve-something fallback, not the plan of record, and caching
        one would pin the degraded answer past the deadline that caused it.
        """
        if getattr(result, "degraded", False):
            return
        from repro.service.rebind import query_binding

        self.put(
            key,
            result,
            relations=(rel.source_table for rel in query.relations),
            binding=query_binding(query),
            sql=sql,
            exact_snapshot=exact_snapshot,
            query=query,
        )

    def put(
        self,
        key: PlanCacheKey,
        result: "OptimizationResult",
        relations: Iterable[str] = (),
        binding: Optional[Tuple] = None,
        sql: Optional[str] = None,
        exact_snapshot: Optional[str] = None,
        query: Optional[object] = None,
    ) -> None:
        """Store *result* under *key*.

        *relations* are the base-table names the plan scans — the handle
        eager invalidation grabs when the catalog changes.  *binding* is
        the source query's naming (see :func:`repro.service.rebind.query_binding`)
        so hits for renamed-but-isomorphic queries can be rebound.
        *sql* / *exact_snapshot* / *query* are revalidation context (see
        :class:`_Entry`); a fresh store always lands in :data:`FRESH`.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = _Entry(
                result,
                frozenset(relations),
                binding,
                state=FRESH,
                exact_snapshot=exact_snapshot,
                sql=sql,
                query=query,
            )
            self.stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def stats_snapshot(self) -> CacheStats:
        """A consistent copy of :attr:`stats`, taken under the cache lock.

        Counters only ever mutate while :attr:`_lock` is held, so holding
        it here guarantees the five fields describe one instant — an
        unlocked :meth:`CacheStats.snapshot` can interleave with a
        concurrent lookup and report torn totals.
        """
        with self._lock:
            return self.stats.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanCacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> int:
        """Drop every entry, counting each as an invalidation.

        Alias for ``invalidate(None)`` — the two used to diverge (``clear``
        silently skipped the invalidation counters, so ``describe()`` lied
        about how entries had left the cache).  Returns the number of
        entries removed.
        """
        return self.invalidate(None)

    # -- invalidation --------------------------------------------------------
    def drop(self, key: PlanCacheKey) -> bool:
        """Remove one entry (counted as an invalidation); False if absent.

        The revalidator's last resort for entries it cannot rebuild a
        query for (no stored SQL or query object) — dropping keeps the
        cache honest rather than serving a plan nobody can re-cost.
        """
        with self._lock:
            if self._entries.pop(key, None) is None:
                return False
            self.stats.invalidations += 1
            return True

    def invalidate(self, relation: Optional[str] = None) -> int:
        """Drop entries touching *relation* (or everything when None).

        Returns the number of entries removed.  Matching is by the
        relation names recorded at :meth:`put` time, case-insensitive to
        mirror catalog lookup semantics.
        """
        with self._lock:
            if relation is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                needle = relation.lower()
                doomed = [
                    key
                    for key, entry in self._entries.items()
                    if any(name.lower() == needle for name in entry.relations)
                ]
                for key in doomed:
                    del self._entries[key]
                removed = len(doomed)
            self.stats.invalidations += removed
            return removed

    def watch(self, catalog) -> Callable[[], None]:
        """Subscribe to *catalog* so statistics changes evict stale plans.

        The catalog calls back with the changed table name; entries whose
        plans scan that table are dropped.  (Entries keyed under the old
        statistics would miss anyway via the snapshot — watching reclaims
        their memory immediately and keeps the hit-rate signal honest.)

        Returns the catalog's unsubscribe handle; call it to detach the
        cache (e.g. before discarding a short-lived cache so the catalog
        does not keep it alive).
        """
        return catalog.subscribe(self.invalidate)

    def watch_deltas(self, catalog) -> Callable[[], None]:
        """Subscribe to *catalog* stats deltas, marking entries stale.

        The lifecycle-aware sibling of :meth:`watch`:
        :meth:`~repro.sql.catalog.Catalog.update_stats` drift events mark
        affected entries :data:`STALE` instead of dropping them, so the
        server keeps serving them while a revalidator re-costs or
        re-plans (stale-while-revalidate).  Returns the unsubscribe
        handle.
        """
        return catalog.subscribe_deltas(lambda delta: self.mark_stale(delta.relation))

    # -- lifecycle -----------------------------------------------------------
    def mark_stale(self, relation: Optional[str] = None) -> int:
        """Mark fresh entries touching *relation* (or all, when None) stale.

        The stale-while-revalidate counterpart of :meth:`invalidate`:
        entries stay servable — :meth:`serve_entry` reports their state so
        callers can count stale serves — until a revalidator refreshes or
        evicts them.  Entries already stale or claimed for revalidation
        are left alone.  Returns the number of entries newly marked.
        """
        with self._lock:
            marked = 0
            needle = relation.lower() if relation is not None else None
            for entry in self._entries.values():
                if entry.state != FRESH:
                    continue
                if needle is not None and not any(
                    name.lower() == needle for name in entry.relations
                ):
                    continue
                entry.state = STALE
                marked += 1
            self.stats.marked_stale += marked
            return marked

    def claim_stale(self, limit: Optional[int] = None) -> Tuple["StaleClaim", ...]:
        """Atomically claim up to *limit* stale entries for revalidation.

        Stale entries are claimed **hottest first** — most lifetime hits,
        ties broken by LRU insertion order — so a bounded revalidation
        budget refreshes the plans the serving traffic actually depends
        on before the long tail.  Each claimed entry
        transitions ``stale → revalidating`` (so two revalidator threads
        never double-plan one entry) and is returned as a
        :class:`StaleClaim` carrying everything a revalidator needs.
        Claims for entries evicted mid-revalidation simply no-op at
        :meth:`refresh` time.
        """
        with self._lock:
            stale = [
                (entry.hits, key, entry)
                for key, entry in self._entries.items()
                if entry.state == STALE
            ]
            # Hits descending; the stable sort keeps LRU order for ties.
            stale.sort(key=lambda item: -item[0])
            if limit is not None:
                stale = stale[:limit]
            claims = []
            for _, key, entry in stale:
                entry.state = REVALIDATING
                claims.append(
                    StaleClaim(
                        key=key,
                        result=entry.result,
                        sql=entry.sql,
                        exact_snapshot=entry.exact_snapshot,
                        query=entry.query,
                        binding=entry.binding,
                    )
                )
            return tuple(claims)

    def refresh(
        self,
        key: PlanCacheKey,
        result: "OptimizationResult",
        exact_snapshot: Optional[str] = None,
        new_key: Optional[PlanCacheKey] = None,
    ) -> bool:
        """Complete a revalidation: install *result* and return to fresh.

        When re-optimization moved the entry's snapshot past its band
        (*new_key*), the entry migrates: the old key is dropped and the
        refreshed result stored under *new_key*.  Deadline-degraded
        results are refused — the degraded-plan cache guard extends to
        the revalidation path, so a background replan that blew its
        deadline leaves the cached (optimal) entry stale rather than
        overwriting it.  Returns True when the entry was refreshed.
        """
        if getattr(result, "degraded", False):
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and entry.state == REVALIDATING:
                    entry.state = STALE  # retryable; never cache degraded
            return False
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False  # evicted mid-revalidation
            entry.result = result
            entry.state = FRESH
            if exact_snapshot is not None:
                entry.exact_snapshot = exact_snapshot
            target = new_key if new_key is not None else key
            self._entries[target] = entry
            self._entries.move_to_end(target)
            self.stats.refreshed += 1
            return True

    def requeue(self, key: PlanCacheKey) -> None:
        """Return a claimed entry to stale (revalidation failed, retry later)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.state == REVALIDATING:
                entry.state = STALE

    def entry_state(self, key: PlanCacheKey) -> Optional[str]:
        """The lifecycle state of *key*'s entry (None when absent)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.state if entry is not None else None

    def stale_count(self) -> int:
        """Entries currently awaiting (or under) revalidation."""
        with self._lock:
            return sum(1 for entry in self._entries.values() if entry.state != FRESH)

    # -- persistence ---------------------------------------------------------
    def save_snapshot(
        self,
        path: "str | os.PathLike",
        *,
        catalog_fingerprint: str,
        meta: Optional[dict] = None,
    ) -> int:
        """Write every entry to *path*; returns the number written.

        Layout: one JSON header line (format, version, catalog
        fingerprint, entry count, payload checksum, caller *meta*)
        followed by a pickled entry list in LRU order (oldest first).
        The header is validated by :meth:`load_snapshot` **before** any
        unpickling, so a stale or foreign file is refused cheaply; the
        checksum guards against truncation and tampering (it is an
        integrity check against accidents, not a security boundary — the
        snapshot directory must be trusted, as with any pickle).

        The write is atomic (temp file + ``os.replace``), so a crash
        mid-save leaves the previous snapshot intact.
        """
        with self._lock:
            # v2 layout: lifecycle state and revalidation context ride
            # along (the transient query object does not — it is not
            # reliably picklable and re-parsing from sql is cheap).
            # REVALIDATING demotes to STALE: the claim dies with the
            # process, so the restarted server must be able to re-claim.
            entries = [
                (
                    key,
                    entry.result,
                    tuple(entry.relations),
                    entry.binding,
                    STALE if entry.state == REVALIDATING else entry.state,
                    entry.exact_snapshot,
                    entry.sql,
                )
                for key, entry in self._entries.items()
            ]
        blob = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "catalog_fingerprint": catalog_fingerprint,
            "entries": len(entries),
            "checksum": hashlib.sha256(blob).hexdigest(),
            "meta": meta or {},
        }
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            handle.write(b"\n")
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return len(entries)

    @staticmethod
    def read_snapshot_header(path: "str | os.PathLike") -> dict:
        """Parse and structurally validate *path*'s header line only.

        Raises :class:`SnapshotError` (``missing`` / ``corrupt`` /
        ``format``) without touching the pickled payload.
        """
        try:
            with open(path, "rb") as handle:
                line = handle.readline(1 << 20)
        except FileNotFoundError:
            raise SnapshotError("missing", f"no snapshot at {os.fspath(path)!r}") from None
        except OSError as exc:
            raise SnapshotError("corrupt", f"unreadable snapshot: {exc}") from exc
        try:
            header = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError("corrupt", f"unparsable snapshot header: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                "format",
                f"not a {SNAPSHOT_FORMAT} snapshot: {os.fspath(path)!r}",
            )
        return header

    def load_snapshot(
        self,
        path: "str | os.PathLike",
        *,
        catalog_fingerprint: str,
    ) -> int:
        """Warm-start from *path*; returns the number of entries loaded.

        Refuses (raising :class:`SnapshotError`) any file whose format,
        layout version or **catalog fingerprint** mismatches, or whose
        payload fails its checksum — a snapshot taken under different
        catalog statistics would serve stale plans, which is a
        correctness bug, so the caller must treat a refusal as "cold
        start", never as "load anyway".

        Entries are inserted preserving the saved LRU order; when the
        snapshot holds more entries than :attr:`capacity`, only the
        most-recently-used ``capacity`` entries are kept.  Loading counts
        toward :attr:`CacheStats.puts` like any other store (and the
        usual eviction accounting applies), so ``describe()`` stays an
        honest ledger of how entries entered the cache.
        """
        header = self.read_snapshot_header(path)
        if header.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                "version",
                f"snapshot layout v{header.get('version')} != "
                f"supported v{SNAPSHOT_VERSION}",
            )
        if header.get("catalog_fingerprint") != catalog_fingerprint:
            raise SnapshotError(
                "catalog",
                "snapshot was written under a different catalog "
                "(statistics changed since the snapshot — refusing to "
                "serve stale plans)",
            )
        with open(path, "rb") as handle:
            handle.readline(1 << 20)
            blob = handle.read()
        if hashlib.sha256(blob).hexdigest() != header.get("checksum"):
            raise SnapshotError(
                "checksum", "snapshot payload does not match its checksum "
                "(tampered or truncated)"
            )
        try:
            entries = pickle.loads(blob)
        except Exception as exc:  # pickle raises many types
            raise SnapshotError("corrupt", f"unpicklable snapshot payload: {exc}") from exc
        if not isinstance(entries, list):
            raise SnapshotError("corrupt", "snapshot payload is not an entry list")
        kept = entries[-self.capacity:]
        with self._lock:
            for key, result, relations, binding, state, exact_snapshot, sql in kept:
                if key in self._entries:
                    self._entries.move_to_end(key)
                self._entries[key] = _Entry(
                    result,
                    frozenset(relations),
                    binding,
                    state=state,
                    exact_snapshot=exact_snapshot,
                    sql=sql,
                )
                self.stats.puts += 1
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        return len(kept)

    # -- introspection -------------------------------------------------------
    def keys(self) -> Tuple[PlanCacheKey, ...]:
        with self._lock:
            return tuple(self._entries)

    def relations_of(self, key: PlanCacheKey) -> FrozenSet[str]:
        with self._lock:
            entry = self._entries.get(key)
            return entry.relations if entry is not None else frozenset()

    def describe(self) -> Dict[str, float]:
        """A flat metrics dict (for logging / monitoring endpoints)."""
        with self._lock:
            return {
                "size": float(len(self._entries)),
                "capacity": float(self.capacity),
                "hits": float(self.stats.hits),
                "misses": float(self.stats.misses),
                "puts": float(self.stats.puts),
                "evictions": float(self.stats.evictions),
                "invalidations": float(self.stats.invalidations),
                "marked_stale": float(self.stats.marked_stale),
                "stale_hits": float(self.stats.stale_hits),
                "refreshed": float(self.stats.refreshed),
                "stale_entries": float(
                    sum(1 for entry in self._entries.values() if entry.state != FRESH)
                ),
                "hit_rate": self.stats.hit_rate,
            }
