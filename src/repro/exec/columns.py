"""Column batches: the unit of work of the columnar executor.

A :class:`Column` is one attribute's values for a batch of rows, stored
as a plain python list with the :data:`~repro.algebra.values.NULL`
sentinel in place.  Numeric columns can additionally expose *lanes* — a
``float64`` data array plus a boolean validity mask — which is what the
vectorized expression evaluator computes on.  Either representation can
be derived from the other lazily, so operators hand columns around
without caring which side materialised first.

A :class:`Batch` is an ordered schema over columns of equal length —
the columnar analogue of :class:`~repro.algebra.relation.Relation`, with
conversions both ways at the executor boundary.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algebra.relation import Relation
from repro.algebra.rows import Row
from repro.algebra.values import NULL, SqlValue


class Column:
    """One attribute's values; list-of-values and/or float64 lanes."""

    __slots__ = ("_values", "_lanes", "_length")

    def __init__(self, values: Optional[List[SqlValue]] = None, lanes=None):
        if values is None and lanes is None:
            raise ValueError("a column needs values or lanes")
        self._values = values
        #: (data float64 array, valid bool array) | None (not computed) |
        #: False (computed: column is not numeric)
        self._lanes = lanes
        self._length = len(values) if values is not None else int(lanes[0].shape[0])

    def __len__(self) -> int:
        return self._length

    @property
    def values(self) -> List[SqlValue]:
        """The python value list (materialised from lanes on demand)."""
        if self._values is None:
            data, valid = self._lanes
            out = data.tolist()
            if not bool(valid.all()):
                for i in (~valid).nonzero()[0].tolist():
                    out[i] = NULL
            self._values = out
        return self._values

    def lanes(self, xp):
        """``(data, valid)`` float64/bool lanes, or None if non-numeric.

        *xp* is the numpy module (the caller already checked the backend
        seam).  The numeric check and conversion run once per column.
        """
        if self._lanes is None:
            values = self._values
            valid = [True] * len(values)
            data = [0.0] * len(values)
            ok = True
            for i, value in enumerate(values):
                if value is NULL:
                    valid[i] = False
                elif isinstance(value, (int, float)):  # bool included
                    data[i] = value
                else:
                    ok = False
                    break
            if ok:
                self._lanes = (
                    xp.asarray(data, dtype=xp.float64),
                    xp.asarray(valid, dtype=bool),
                )
            else:
                self._lanes = False
        return self._lanes if self._lanes is not False else None

    def take(self, indices: Iterable[int]) -> "Column":
        """Gather by row index (no bounds padding — see ``take_padded``)."""
        values = self.values
        return Column([values[i] for i in indices])

    def take_padded(self, indices: Iterable[int], pad: SqlValue) -> "Column":
        """Gather by row index; index ``-1`` yields *pad* (outerjoin fill)."""
        values = self.values
        return Column([pad if i < 0 else values[i] for i in indices])


def const_column(value: SqlValue, length: int) -> Column:
    return Column([value] * length)


class Batch:
    """An ordered schema over equal-length columns."""

    __slots__ = ("attributes", "columns", "length")

    def __init__(self, attributes: Sequence[str], columns: Dict[str, Column], length: int):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.columns = columns
        self.length = length

    # -- conversions --------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation) -> "Batch":
        columns = {
            attr: Column([row[attr] for row in relation.rows])
            for attr in relation.attributes
        }
        return cls(relation.attributes, columns, len(relation.rows))

    @classmethod
    def from_source(cls, source) -> "Batch":
        """Adapt a scan source: a Relation or anything with ``as_batch()``."""
        if isinstance(source, Relation):
            return cls.from_relation(source)
        as_batch = getattr(source, "as_batch", None)
        if as_batch is not None:
            return as_batch()
        raise TypeError(f"cannot scan {type(source).__name__} as a column batch")

    def to_relation(self) -> Relation:
        value_lists = [self.columns[attr].values for attr in self.attributes]
        rows = [
            Row(dict(zip(self.attributes, values)))
            for values in zip(*value_lists)
        ] if self.attributes else [Row() for _ in range(self.length)]
        return Relation(self.attributes, rows)

    # -- structural operators ------------------------------------------------
    def column(self, attr: str) -> Column:
        return self.columns[attr]

    def take(self, indices: List[int]) -> "Batch":
        columns = {attr: col.take(indices) for attr, col in self.columns.items()}
        return Batch(self.attributes, columns, len(indices))

    def head(self, count: int) -> "Batch":
        if count >= self.length:
            return self
        columns = {
            attr: Column(col.values[:count]) for attr, col in self.columns.items()
        }
        return Batch(self.attributes, columns, count)

    def project(self, attrs: Sequence[str]) -> "Batch":
        attrs = tuple(attrs)
        return Batch(attrs, {a: self.columns[a] for a in attrs}, self.length)

    def extended(self, new_columns: Sequence[Tuple[str, Column]]) -> "Batch":
        overlap = [name for name, _ in new_columns if name in self.columns]
        if overlap:
            raise ValueError(f"map would overwrite existing attributes: {set(overlap)}")
        columns = dict(self.columns)
        for name, col in new_columns:
            columns[name] = col
        attrs = self.attributes + tuple(name for name, _ in new_columns)
        return Batch(attrs, columns, self.length)

    @classmethod
    def concat_schemas(cls, left: "Batch", right: "Batch") -> "Batch":
        """Horizontal concatenation of two equal-length disjoint batches."""
        overlap = set(left.attributes) & set(right.attributes)
        if overlap:
            raise ValueError(f"cannot concatenate batches with overlapping attributes: {overlap}")
        if left.length != right.length:
            raise ValueError("horizontal concat requires equal lengths")
        columns = dict(left.columns)
        columns.update(right.columns)
        return cls(left.attributes + right.attributes, columns, left.length)

    def __repr__(self) -> str:
        return f"Batch({list(self.attributes)}, {self.length} rows)"
