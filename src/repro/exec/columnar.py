"""Columnar executor: physical operator trees over column batches.

The performance backend behind ``run_plan(..., executor="columnar")``.
Joins hash on equi-keys (O(|L|+|R|+|pairs|) instead of the
interpreter's nested O(|L|·|R|) probe), predicates and arithmetic ride
the vectorized evaluator, and aggregation evaluates each argument
expression *once* per input batch instead of once per row.

Row-set equality with the interpreter is a hard guarantee (the
differential suite enforces it), so emission mirrors the reference
semantics of :mod:`repro.algebra.operators` exactly:

* joins emit left-major, partners in right-input order (hash buckets
  keep right indices in insertion order),
* an unmatched left row of a left/full outerjoin emits its padded row
  immediately after its (absent) matches; unmatched right rows of a
  full outerjoin append at the end in right-input order,
* rows with a NULL join key never enter or probe the hash table — a
  NULL never makes an equality conjunct TRUE,
* per-group aggregation sums python values sequentially in member
  order, so float rounding matches ``AggCall.evaluate`` bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.aggregates.calls import AggKind
from repro.aggregates.vector import AggVector
from repro.algebra.values import NULL, SqlValue, group_key
from repro.exec.columns import Batch, Column
from repro.exec.physical import (
    PhysFilter,
    PhysGroupAgg,
    PhysHashJoin,
    PhysLimit,
    PhysMap,
    PhysNLJoin,
    PhysOp,
    PhysProject,
    PhysScan,
    PhysSort,
)
from repro.exec.vectoreval import eval_expr, eval_tri
from repro.rewrites.pushdown import OpKind


def execute_physical(op: PhysOp, database: Mapping[str, object]) -> Batch:
    """Evaluate a physical operator tree bottom-up into a batch."""
    if isinstance(op, PhysScan):
        source = database[op.relation]
        batch = Batch.from_source(source)
        if set(batch.attributes) != set(op.attributes):
            raise ValueError(
                f"scan of {op.relation!r} expects attributes {op.attributes}, "
                f"database provides {batch.attributes}"
            )
        return batch
    if isinstance(op, PhysFilter):
        child = execute_physical(op.child, database)
        keep = eval_tri(op.predicate, child).true_indices()
        if len(keep) == child.length:
            return child
        return child.take(keep)
    if isinstance(op, PhysProject):
        return execute_physical(op.child, database).project(op.attributes)
    if isinstance(op, PhysMap):
        child = execute_physical(op.child, database)
        return child.extended([(name, eval_expr(expr, child)) for name, expr in op.extensions])
    if isinstance(op, PhysHashJoin):
        return _hash_join(op, database)
    if isinstance(op, PhysNLJoin):
        return _nl_join(op, database)
    if isinstance(op, PhysGroupAgg):
        return _group_agg(op, database)
    if isinstance(op, PhysSort):
        return _sort(op, database)
    if isinstance(op, PhysLimit):
        return execute_physical(op.child, database).head(op.count)
    raise TypeError(f"unknown physical operator {op!r}")


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------

def _hash_pairs(
    left: Batch,
    right: Batch,
    left_keys: Tuple[str, ...],
    right_keys: Tuple[str, ...],
) -> Tuple[List[int], List[int]]:
    """Candidate (left, right) index pairs under the equi-keys.

    Left-major, right partners in right-input order; NULL keys on
    either side produce no candidates.  Raw values key the buckets —
    python dict equality (``1 == 1.0``) coincides with SQL numeric
    equality, and hashes agree.
    """
    buckets: Dict[object, List[int]] = {}
    if len(right_keys) == 1:
        rvalues = right.column(right_keys[0]).values
        for j, key in enumerate(rvalues):
            if key is NULL:
                continue
            buckets.setdefault(key, []).append(j)
    else:
        rcols = [right.column(k).values for k in right_keys]
        for j in range(right.length):
            key = tuple(col[j] for col in rcols)
            if any(v is NULL for v in key):
                continue
            buckets.setdefault(key, []).append(j)

    pairs_l: List[int] = []
    pairs_r: List[int] = []
    if len(left_keys) == 1:
        lvalues = left.column(left_keys[0]).values
        for i, key in enumerate(lvalues):
            if key is NULL:
                continue
            js = buckets.get(key)
            if js:
                pairs_l.extend([i] * len(js))
                pairs_r.extend(js)
    else:
        lcols = [left.column(k).values for k in left_keys]
        for i in range(left.length):
            key = tuple(col[i] for col in lcols)
            if any(v is NULL for v in key):
                continue
            js = buckets.get(key)
            if js:
                pairs_l.extend([i] * len(js))
                pairs_r.extend(js)
    return pairs_l, pairs_r


def _pair_batch(left: Batch, right: Batch, pairs_l: List[int], pairs_r: List[int]) -> Batch:
    return Batch.concat_schemas(left.take(pairs_l), right.take(pairs_r))


def _filter_pairs(
    residual, left: Batch, right: Batch, pairs_l: List[int], pairs_r: List[int]
) -> Tuple[List[int], List[int]]:
    if residual is None or not pairs_l:
        return pairs_l, pairs_r
    keep = eval_tri(residual, _pair_batch(left, right, pairs_l, pairs_r)).true_list()
    return (
        [i for i, k in zip(pairs_l, keep) if k],
        [j for j, k in zip(pairs_r, keep) if k],
    )


def _hash_join(op: PhysHashJoin, database) -> Batch:
    left = execute_physical(op.left, database)
    right = execute_physical(op.right, database)
    pairs_l, pairs_r = _hash_pairs(left, right, op.left_keys, op.right_keys)
    pairs_l, pairs_r = _filter_pairs(op.residual, left, right, pairs_l, pairs_r)
    return _emit_join(op, left, right, pairs_l, pairs_r)


def _nl_join(op: PhysNLJoin, database) -> Batch:
    left = execute_physical(op.left, database)
    right = execute_physical(op.right, database)
    pairs_l = [i for i in range(left.length) for _ in range(right.length)]
    pairs_r = list(range(right.length)) * left.length
    pairs_l, pairs_r = _filter_pairs(op.predicate, left, right, pairs_l, pairs_r)
    return _emit_join(op, left, right, pairs_l, pairs_r)


def _emit_join(op, left: Batch, right: Batch, pairs_l: List[int], pairs_r: List[int]) -> Batch:
    """Materialise the join output from matched pairs (left-major order)."""
    kind: OpKind = op.op
    if kind is OpKind.INNER:
        return _pair_batch(left, right, pairs_l, pairs_r)

    if kind in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI):
        matched = [False] * left.length
        for i in pairs_l:
            matched[i] = True
        keep = kind is OpKind.LEFT_SEMI
        return left.take([i for i in range(left.length) if matched[i] is keep])

    if kind is OpKind.GROUPJOIN:
        assert op.groupjoin_vector is not None
        partners: List[List[int]] = [[] for _ in range(left.length)]
        for i, j in zip(pairs_l, pairs_r):
            partners[i].append(j)
        agg_columns = _aggregate_columns(op.groupjoin_vector, right, partners)
        return left.extended(agg_columns)

    # Outer joins: one output slot list per side; -1 means "pad".
    out_l: List[int] = []
    out_r: List[int] = []
    pair_count = len(pairs_l)
    cursor = 0
    for i in range(left.length):
        had_match = False
        while cursor < pair_count and pairs_l[cursor] == i:
            out_l.append(i)
            out_r.append(pairs_r[cursor])
            cursor += 1
            had_match = True
        if not had_match:
            out_l.append(i)
            out_r.append(-1)
    if kind is OpKind.FULL_OUTER:
        matched_right = [False] * right.length
        for j in pairs_r:
            matched_right[j] = True
        for j in range(right.length):
            if not matched_right[j]:
                out_l.append(-1)
                out_r.append(j)
    elif kind is not OpKind.LEFT_OUTER:
        raise AssertionError(f"unhandled join kind {kind}")

    left_defaults = dict(op.left_defaults)
    right_defaults = dict(op.right_defaults)
    columns: Dict[str, Column] = {}
    for attr in left.attributes:
        columns[attr] = left.column(attr).take_padded(out_l, left_defaults.get(attr, NULL))
    for attr in right.attributes:
        columns[attr] = right.column(attr).take_padded(out_r, right_defaults.get(attr, NULL))
    return Batch(left.attributes + right.attributes, columns, len(out_l))


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

def _aggregate_columns(
    vector: AggVector, source: Batch, groups: List[List[int]]
) -> List[Tuple[str, Column]]:
    """One output column per aggregate, argument expressions evaluated once."""
    out: List[Tuple[str, Column]] = []
    for item in vector:
        call = item.call
        if call.kind is AggKind.COUNT_STAR:
            out.append((item.name, Column([len(members) for members in groups])))
            continue
        arg_values = eval_expr(call.arg, source).values
        out.append(
            (
                item.name,
                Column(
                    [
                        _evaluate_call(call.kind, call.distinct, arg_values, members)
                        for members in groups
                    ]
                ),
            )
        )
    return out


def _evaluate_call(
    kind: AggKind, distinct: bool, arg_values: List[SqlValue], members: List[int]
) -> SqlValue:
    """``AggCall.evaluate`` over pre-computed argument values.

    Sequential python ``sum`` in member order keeps float results bit
    identical to the interpreter.
    """
    values = [arg_values[i] for i in members if arg_values[i] is not NULL]
    if distinct:
        seen = set()
        unique: List[SqlValue] = []
        for v in values:
            key = group_key(v)
            if key not in seen:
                seen.add(key)
                unique.append(v)
        values = unique
    if kind is AggKind.COUNT:
        return len(values)
    if not values:
        return NULL
    if kind is AggKind.SUM:
        return sum(values)
    if kind is AggKind.MIN:
        return min(values)
    if kind is AggKind.MAX:
        return max(values)
    if kind is AggKind.AVG:
        return sum(values) / len(values)
    raise AssertionError(f"unhandled aggregate kind {kind}")


def _group_agg(op: PhysGroupAgg, database) -> Batch:
    child = execute_physical(op.child, database)
    group_values = [child.column(a).values for a in op.group_attrs]
    buckets: Dict[Tuple, int] = {}
    firsts: List[int] = []
    groups: List[List[int]] = []
    for i in range(child.length):
        key = tuple(group_key(col[i]) for col in group_values)
        slot = buckets.get(key)
        if slot is None:
            buckets[key] = len(groups)
            firsts.append(i)
            groups.append([i])
        else:
            groups[slot].append(i)

    columns: Dict[str, Column] = {
        attr: Column([values[i] for i in firsts])
        for attr, values in zip(op.group_attrs, group_values)
    }
    grouped = Batch(op.group_attrs, columns, len(groups))
    grouped = grouped.extended(_aggregate_columns(op.vector, child, groups))

    if not op.post:
        return grouped
    existing = set(grouped.attributes)
    new_cols = [(name, expr) for name, expr in op.post if name not in existing]
    if new_cols:
        grouped = grouped.extended([(name, eval_expr(expr, grouped)) for name, expr in new_cols])
    return grouped.project(op.attributes)


# ---------------------------------------------------------------------------
# sort
# ---------------------------------------------------------------------------

def _sort(op: PhysSort, database) -> Batch:
    child = execute_physical(op.child, database)
    indices = list(range(child.length))
    # Stable multi-key sort: apply keys right-to-left.  NULL sorts as the
    # largest value (Postgres default: NULLS LAST ascending, FIRST
    # descending); NULL keys compare equal to each other via group_key.
    for attr, descending in reversed(op.keys):
        values = child.column(attr).values
        indices.sort(
            key=lambda i: (values[i] is NULL, values[i]),
            reverse=descending,
        )
    return child.take(indices)
