"""Lowering: logical :mod:`repro.plans.nodes` trees → physical operators.

The physical plan is the seam both executor backends share: the
interpreter walks the logical tree directly (it *is* the executable
spec), while the columnar backend executes the physical tree produced
here.  Lowering is where execution strategy decisions live — most
importantly turning a join predicate into hash-join keys:

* the predicate is flattened into its top-level AND conjuncts,
* every conjunct of the form ``Attr = Attr`` with one side from each
  input becomes an equi-key pair,
* the remaining conjuncts are re-ANDed into a *residual* predicate
  applied to hash-matched candidate pairs.

The decomposition is sound under 3VL because a Kleene conjunction is
TRUE iff every conjunct is TRUE — and rows with a NULL key can never
make an equality conjunct TRUE, which is why the hash table skips them
on both sides.  Joins with no equi conjunct fall back to a block
nested-loop operator over the full cross pairing.

:class:`PhysSort` and :class:`PhysLimit` have no logical counterpart
yet (ORDER BY/LIMIT are still parse-reserved, ROADMAP item 3); they
exist for the executor API (``run_plan(..., limit=N)``) and for the
future SQL lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.aggregates.vector import AggVector
from repro.algebra.expressions import Attr, BinOp, Expr, Logical, conjunction
from repro.algebra.values import SqlValue
from repro.plans.nodes import (
    GroupByNode,
    JoinNode,
    MapNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.rewrites.pushdown import OpKind


class PhysOp:
    """Base physical operator; ``attributes`` is the output schema."""

    attributes: Tuple[str, ...]

    def children(self) -> Tuple["PhysOp", ...]:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class PhysScan(PhysOp):
    relation: str
    attributes: Tuple[str, ...]

    def children(self) -> Tuple[PhysOp, ...]:
        return ()

    def label(self) -> str:
        return f"scan({self.relation})"


@dataclass(frozen=True)
class PhysFilter(PhysOp):
    predicate: Expr
    child: PhysOp
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", self.child.attributes)

    def children(self) -> Tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"filter[{self.predicate!r}]"


@dataclass(frozen=True)
class PhysProject(PhysOp):
    attributes: Tuple[str, ...]
    child: PhysOp

    def children(self) -> Tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"project[{', '.join(self.attributes)}]"


@dataclass(frozen=True)
class PhysMap(PhysOp):
    extensions: Tuple[Tuple[str, Expr], ...]
    child: PhysOp
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        attrs = self.child.attributes + tuple(name for name, _ in self.extensions)
        object.__setattr__(self, "attributes", attrs)

    def children(self) -> Tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"map[{', '.join(name for name, _ in self.extensions)}]"


def _join_attributes(op: OpKind, left: PhysOp, right: PhysOp,
                     vector: Optional[AggVector]) -> Tuple[str, ...]:
    if op is OpKind.GROUPJOIN:
        assert vector is not None
        return left.attributes + vector.names()
    if op in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI):
        return left.attributes
    return left.attributes + right.attributes


@dataclass(frozen=True)
class PhysHashJoin(PhysOp):
    """Hash join on equi-keys, any join kind, optional residual predicate."""

    op: OpKind
    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    residual: Optional[Expr]
    left: PhysOp
    right: PhysOp
    left_defaults: Tuple[Tuple[str, SqlValue], ...] = ()
    right_defaults: Tuple[Tuple[str, SqlValue], ...] = ()
    groupjoin_vector: Optional[AggVector] = None
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "attributes",
            _join_attributes(self.op, self.left, self.right, self.groupjoin_vector),
        )

    def children(self) -> Tuple[PhysOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        keys = ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))
        residual = f" where {self.residual!r}" if self.residual is not None else ""
        return f"hash-{self.op.value}[{keys}]{residual}"


@dataclass(frozen=True)
class PhysNLJoin(PhysOp):
    """Block nested-loop join: no equi conjunct to hash on."""

    op: OpKind
    predicate: Expr
    left: PhysOp
    right: PhysOp
    left_defaults: Tuple[Tuple[str, SqlValue], ...] = ()
    right_defaults: Tuple[Tuple[str, SqlValue], ...] = ()
    groupjoin_vector: Optional[AggVector] = None
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "attributes",
            _join_attributes(self.op, self.left, self.right, self.groupjoin_vector),
        )

    def children(self) -> Tuple[PhysOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"nl-{self.op.value}[{self.predicate!r}]"


@dataclass(frozen=True)
class PhysGroupAgg(PhysOp):
    group_attrs: Tuple[str, ...]
    vector: AggVector
    post: Tuple[Tuple[str, Expr], ...]
    child: PhysOp
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.post:
            attrs = self.group_attrs + tuple(name for name, _ in self.post)
        else:
            attrs = self.group_attrs + self.vector.names()
        object.__setattr__(self, "attributes", attrs)

    def children(self) -> Tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"group[{','.join(self.group_attrs)}; {self.vector!r}]"


@dataclass(frozen=True)
class PhysSort(PhysOp):
    """Stable multi-key sort; NULLs order as the largest value (Postgres)."""

    keys: Tuple[Tuple[str, bool], ...]  # (attribute, descending)
    child: PhysOp
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", self.child.attributes)

    def children(self) -> Tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(f"{a} {'desc' if d else 'asc'}" for a, d in self.keys)
        return f"sort[{keys}]"


@dataclass(frozen=True)
class PhysLimit(PhysOp):
    count: int
    child: PhysOp
    attributes: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", self.child.attributes)

    def children(self) -> Tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"limit[{self.count}]"


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------

def flatten_conjuncts(predicate: Expr) -> List[Expr]:
    """Top-level AND conjuncts of *predicate* (nested ANDs flattened)."""
    if isinstance(predicate, Logical) and predicate.op == "and":
        out: List[Expr] = []
        for operand in predicate.operands:
            out.extend(flatten_conjuncts(operand))
        return out
    return [predicate]


def split_equi_keys(
    predicate: Expr, left_attrs: Tuple[str, ...], right_attrs: Tuple[str, ...]
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Optional[Expr]]:
    """``(left_keys, right_keys, residual)`` for a hash join, or no keys.

    A conjunct qualifies as an equi-key when it is ``Attr = Attr`` with
    the two attributes on opposite sides of the join.
    """
    left_set = set(left_attrs)
    right_set = set(right_attrs)
    left_keys: List[str] = []
    right_keys: List[str] = []
    residual: List[Expr] = []
    for conjunct in flatten_conjuncts(predicate):
        if (
            isinstance(conjunct, BinOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, Attr)
            and isinstance(conjunct.right, Attr)
        ):
            a, b = conjunct.left.name, conjunct.right.name
            if a in left_set and b in right_set:
                left_keys.append(a)
                right_keys.append(b)
                continue
            if b in left_set and a in right_set:
                left_keys.append(b)
                right_keys.append(a)
                continue
        residual.append(conjunct)
    rest = conjunction(residual) if residual else None
    return tuple(left_keys), tuple(right_keys), rest


def lower(plan: PlanNode) -> PhysOp:
    """Compile a logical plan tree into a physical operator tree."""
    if isinstance(plan, ScanNode):
        return PhysScan(plan.relation, plan.attributes)
    if isinstance(plan, SelectNode):
        return PhysFilter(plan.predicate, lower(plan.child))
    if isinstance(plan, JoinNode):
        left = lower(plan.left)
        right = lower(plan.right)
        left_keys, right_keys, residual = split_equi_keys(
            plan.predicate, left.attributes, right.attributes
        )
        if left_keys:
            return PhysHashJoin(
                plan.op,
                left_keys,
                right_keys,
                residual,
                left,
                right,
                plan.left_defaults,
                plan.right_defaults,
                plan.groupjoin_vector,
            )
        return PhysNLJoin(
            plan.op,
            plan.predicate,
            left,
            right,
            plan.left_defaults,
            plan.right_defaults,
            plan.groupjoin_vector,
        )
    if isinstance(plan, GroupByNode):
        return PhysGroupAgg(plan.group_attrs, plan.vector, plan.post, lower(plan.child))
    if isinstance(plan, MapNode):
        return PhysMap(plan.extensions, lower(plan.child))
    if isinstance(plan, ProjectNode):
        return PhysProject(plan.attributes, lower(plan.child))
    raise TypeError(f"unknown plan node {plan!r}")


def render_physical(op: PhysOp, indent: int = 0) -> str:
    """ASCII tree of a physical plan (mirrors ``plans.render``)."""
    lines = ["  " * indent + op.label()]
    for child in op.children():
        lines.append(render_physical(child, indent + 1))
    return "\n".join(lines)
