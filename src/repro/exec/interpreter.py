"""Recursive plan interpreter.

``execute(plan, database)`` evaluates any plan tree against a database
(mapping relation name → :class:`~repro.algebra.relation.Relation`) using
the operator semantics of :mod:`repro.algebra.operators`.  It is used to

* run canonical (unoptimized) trees,
* run optimizer output, and
* cross-check the two against each other in the correctness tests.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra import operators as ops
from repro.algebra.relation import Relation
from repro.plans.nodes import (
    GroupByNode,
    JoinNode,
    MapNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.rewrites.pushdown import OpKind

Database = Mapping[str, Relation]


def execute(plan: PlanNode, database: Database) -> Relation:
    """Evaluate *plan* bottom-up and return the result relation."""
    if isinstance(plan, ScanNode):
        relation = database[plan.relation]
        if set(relation.attributes) != set(plan.attributes):
            raise ValueError(
                f"scan of {plan.relation!r} expects attributes {plan.attributes}, "
                f"database provides {relation.attributes}"
            )
        return relation
    if isinstance(plan, SelectNode):
        return ops.select(execute(plan.child, database), plan.predicate)
    if isinstance(plan, JoinNode):
        return _execute_join(plan, database)
    if isinstance(plan, GroupByNode):
        grouped = ops.group_by(execute(plan.child, database), plan.group_attrs, plan.vector)
        if not plan.post:
            return grouped
        existing = set(grouped.attributes)
        new_cols = [(name, expr) for name, expr in plan.post if name not in existing]
        extended = ops.map_(grouped, new_cols) if new_cols else grouped
        return ops.project(extended, plan.attributes)
    if isinstance(plan, MapNode):
        return ops.map_(execute(plan.child, database), list(plan.extensions))
    if isinstance(plan, ProjectNode):
        return ops.project(execute(plan.child, database), plan.attributes)
    raise TypeError(f"unknown plan node {plan!r}")


def _execute_join(plan: JoinNode, database: Database) -> Relation:
    left = execute(plan.left, database)
    right = execute(plan.right, database)
    if plan.op is OpKind.INNER:
        return ops.join(left, right, plan.predicate)
    if plan.op is OpKind.LEFT_OUTER:
        return ops.left_outerjoin(left, right, plan.predicate, defaults=dict(plan.right_defaults))
    if plan.op is OpKind.FULL_OUTER:
        return ops.full_outerjoin(
            left,
            right,
            plan.predicate,
            left_defaults=dict(plan.left_defaults),
            right_defaults=dict(plan.right_defaults),
        )
    if plan.op is OpKind.LEFT_SEMI:
        return ops.semijoin(left, right, plan.predicate)
    if plan.op is OpKind.LEFT_ANTI:
        return ops.antijoin(left, right, plan.predicate)
    if plan.op is OpKind.GROUPJOIN:
        assert plan.groupjoin_vector is not None
        return ops.groupjoin(left, right, plan.predicate, plan.groupjoin_vector)
    raise AssertionError(f"unhandled join kind {plan.op}")
