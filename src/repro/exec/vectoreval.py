"""Vectorized expression evaluation over column batches.

Two entry points:

* :func:`eval_expr` — any :class:`~repro.algebra.expressions.Expr` to a
  value :class:`~repro.exec.columns.Column`,
* :func:`eval_tri` — a predicate to a :class:`Tri`, the columnar
  representation of three-valued logic: two parallel boolean vectors
  ``t`` ("evaluates to TRUE") and ``f`` ("evaluates to FALSE"), UNKNOWN
  being neither.  Kleene AND/OR/NOT become bitwise mask algebra.

Numeric sub-expressions ride numpy ``float64`` lanes (comparisons and
arithmetic are then single broadcasted array ops); anything non-numeric
— string comparisons, mixed-type columns, or a numpy-less process —
falls back to elementwise python over the value lists with the *same*
:mod:`repro.algebra.values` helpers the interpreter uses, which keeps
the two backends row-set identical by construction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.algebra.expressions import (
    Attr,
    BinOp,
    Case,
    Const,
    Expr,
    IsNull,
    Logical,
    Not,
    _ARITHMETIC,
    _COMPARISONS,
)
from repro.algebra.values import NULL, is_null, sql_arith, sql_compare
from repro.exec.arrays import numpy_module
from repro.exec.columns import Batch, Column, const_column


class Tri:
    """A three-valued predicate vector: ``t``/``f`` masks, UNKNOWN = neither.

    Masks are numpy bool arrays when *xp* is set, python bool lists
    otherwise; mixing is resolved by promoting lists to arrays.
    """

    __slots__ = ("t", "f", "xp")

    def __init__(self, t, f, xp=None):
        self.t = t
        self.f = f
        self.xp = xp

    def __len__(self) -> int:
        return len(self.t)

    def _paired(self, other: "Tri"):
        """Promote to a common representation (arrays win)."""
        if self.xp is not None and other.xp is None:
            return self, _promote(other, self.xp)
        if self.xp is None and other.xp is not None:
            return _promote(self, other.xp), other
        return self, other

    def and_(self, other: "Tri") -> "Tri":
        a, b = self._paired(other)
        if a.xp is not None:
            return Tri(a.t & b.t, a.f | b.f, a.xp)
        return Tri(
            [x and y for x, y in zip(a.t, b.t)],
            [x or y for x, y in zip(a.f, b.f)],
        )

    def or_(self, other: "Tri") -> "Tri":
        a, b = self._paired(other)
        if a.xp is not None:
            return Tri(a.t | b.t, a.f & b.f, a.xp)
        return Tri(
            [x or y for x, y in zip(a.t, b.t)],
            [x and y for x, y in zip(a.f, b.f)],
        )

    def not_(self) -> "Tri":
        return Tri(self.f, self.t, self.xp)

    def to_column(self) -> Column:
        """TRUE/FALSE/NULL values — the SQL surface form of a predicate."""
        t = self.t.tolist() if self.xp is not None else self.t
        f = self.f.tolist() if self.xp is not None else self.f
        return Column([True if a else (False if b else NULL) for a, b in zip(t, f)])

    def true_indices(self) -> List[int]:
        if self.xp is not None:
            return self.t.nonzero()[0].tolist()
        return [i for i, v in enumerate(self.t) if v]

    def true_list(self) -> List[bool]:
        return self.t.tolist() if self.xp is not None else list(self.t)


def _promote(tri: Tri, xp) -> Tri:
    return Tri(xp.asarray(tri.t, dtype=bool), xp.asarray(tri.f, dtype=bool), xp)


def _tri_from_column(col: Column, xp) -> Tri:
    """Truthiness of a value column (the interpreter's ``bool(value)``)."""
    if xp is not None:
        lanes = col.lanes(xp)
        if lanes is not None:
            data, valid = lanes
            nonzero = data != 0.0
            return Tri(valid & nonzero, valid & ~nonzero, xp)
    t = []
    f = []
    for value in col.values:
        if value is NULL:
            t.append(False)
            f.append(False)
        else:
            truthy = bool(value)
            t.append(truthy)
            f.append(not truthy)
    return Tri(t, f)


_CMP_FUNCS = {
    "=": lambda xp, a, b: a == b,
    "<>": lambda xp, a, b: a != b,
    "<": lambda xp, a, b: a < b,
    "<=": lambda xp, a, b: a <= b,
    ">": lambda xp, a, b: a > b,
    ">=": lambda xp, a, b: a >= b,
}


def eval_tri(expr: Expr, batch: Batch) -> Tri:
    """Evaluate *expr* as a predicate over *batch* (3VL masks)."""
    xp = numpy_module()
    return _tri(expr, batch, xp)


def _tri(expr: Expr, batch: Batch, xp) -> Tri:
    if isinstance(expr, Logical):
        acc = _tri(expr.operands[0], batch, xp)
        for operand in expr.operands[1:]:
            nxt = _tri(operand, batch, xp)
            acc = acc.and_(nxt) if expr.op == "and" else acc.or_(nxt)
        return acc
    if isinstance(expr, Not):
        return _tri(expr.operand, batch, xp).not_()
    if isinstance(expr, IsNull):
        col = _expr(expr.operand, batch, xp)
        if xp is not None:
            lanes = col.lanes(xp)
            if lanes is not None:
                _, valid = lanes
                return Tri(~valid, valid.copy(), xp)
        nulls = [v is NULL for v in col.values]
        return Tri(nulls, [not n for n in nulls])
    if isinstance(expr, BinOp) and expr.op in _COMPARISONS:
        left = _expr(expr.left, batch, xp)
        right = _expr(expr.right, batch, xp)
        if xp is not None:
            llanes = left.lanes(xp)
            rlanes = right.lanes(xp)
            if llanes is not None and rlanes is not None:
                ldata, lvalid = llanes
                rdata, rvalid = rlanes
                valid = lvalid & rvalid
                hit = _CMP_FUNCS[expr.op](xp, ldata, rdata)
                return Tri(valid & hit, valid & ~hit, xp)
        t = []
        f = []
        for lv, rv in zip(left.values, right.values):
            result = sql_compare(expr.op, lv, rv)
            t.append(result is True)
            f.append(result is False)
        return Tri(t, f)
    # Any other expression: evaluate as a value, take its truthiness.
    return _tri_from_column(_expr(expr, batch, xp), xp)


def eval_expr(expr: Expr, batch: Batch) -> Column:
    """Evaluate *expr* as a value column over *batch*."""
    xp = numpy_module()
    return _expr(expr, batch, xp)


def _expr(expr: Expr, batch: Batch, xp) -> Column:
    if isinstance(expr, Attr):
        return batch.column(expr.name)
    if isinstance(expr, Const):
        return const_column(expr.value, batch.length)
    if isinstance(expr, BinOp):
        if expr.op in _COMPARISONS:
            return _tri(expr, batch, xp).to_column()
        return _arith(expr, batch, xp)
    if isinstance(expr, (Logical, Not, IsNull)):
        return _tri(expr, batch, xp).to_column()
    if isinstance(expr, Case):
        cond = _tri(expr.condition, batch, xp)
        then = _expr(expr.then, batch, xp).values
        other = _expr(expr.otherwise, batch, xp).values
        keep = cond.true_list()
        return Column([then[i] if keep[i] else other[i] for i in range(len(keep))])
    raise TypeError(f"unknown expression {expr!r}")


def _arith(expr: BinOp, batch: Batch, xp) -> Column:
    left = _expr(expr.left, batch, xp)
    right = _expr(expr.right, batch, xp)
    if xp is not None:
        llanes = left.lanes(xp)
        rlanes = right.lanes(xp)
        if llanes is not None and rlanes is not None:
            ldata, lvalid = llanes
            rdata, rvalid = rlanes
            valid = lvalid & rvalid
            if expr.op == "+":
                data = ldata + rdata
            elif expr.op == "-":
                data = ldata - rdata
            elif expr.op == "*":
                data = ldata * rdata
            else:  # "/" — SQL maps division by zero to NULL
                valid = valid & (rdata != 0.0)
                with xp.errstate(divide="ignore", invalid="ignore"):
                    data = xp.where(valid, ldata / xp.where(rdata == 0.0, 1.0, rdata), 0.0)
            data = xp.where(valid, data, 0.0)
            return Column(lanes=(data, valid))
    return Column([sql_arith(expr.op, lv, rv) for lv, rv in zip(left.values, right.values)])
