"""Plan execution: one logical plan, two interchangeable backends.

``run_plan(plan, database, executor=..., limit=...)`` is the seam:

* ``"interpreter"`` — the recursive tuple-at-a-time reference backend
  (:mod:`repro.exec.interpreter`, stdlib-only, the executable spec),
* ``"columnar"`` — the vectorized physical-operator backend
  (:mod:`repro.exec.physical` lowering + :mod:`repro.exec.columnar`),
  row-set identical to the interpreter by the differential test suite.

*database* maps relation name to a :class:`~repro.algebra.relation.Relation`
or to any columnar source exposing ``as_batch()``/``to_relation()``
(:class:`repro.data.tables.ColumnTable` views) — each backend adapts
the other's native format at the scan boundary.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.algebra.relation import Relation
from repro.exec.interpreter import Database, execute
from repro.plans.nodes import PlanNode

#: the registered executor backends, default first.
EXECUTORS: Tuple[str, ...] = ("interpreter", "columnar")

DEFAULT_EXECUTOR = "interpreter"


class _RelationAdapter(Mapping):
    """Lazy Relation view of a mixed Relation/ColumnTable database."""

    __slots__ = ("_source",)

    def __init__(self, source: Mapping[str, object]):
        self._source = source

    def __getitem__(self, key: str) -> Relation:
        value = self._source[key]
        if isinstance(value, Relation):
            return value
        to_relation = getattr(value, "to_relation", None)
        if to_relation is not None:
            return to_relation()
        raise TypeError(f"cannot execute against {type(value).__name__} source {key!r}")

    def __iter__(self):
        return iter(self._source)

    def __len__(self) -> int:
        return len(self._source)


def run_plan(
    plan: PlanNode,
    database: Mapping[str, object],
    executor: str = DEFAULT_EXECUTOR,
    limit: Optional[int] = None,
) -> Relation:
    """Execute *plan* against *database* with the chosen backend.

    *limit*, when given, truncates the result to its first rows (the
    columnar backend truncates via a physical limit operator; the
    interpreter truncates the materialised result — both see the same
    rows because every operator's emission order is deterministic).
    """
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be >= 0, got {limit}")
    if executor == "interpreter":
        result = execute(plan, _RelationAdapter(database))
        if limit is not None and len(result.rows) > limit:
            return Relation(result.attributes, result.rows[:limit])
        return result
    if executor == "columnar":
        from repro.exec.columnar import execute_physical
        from repro.exec.physical import PhysLimit, lower

        physical = lower(plan)
        if limit is not None:
            physical = PhysLimit(limit, physical)
        return execute_physical(physical, database).to_relation()
    raise ValueError(f"unknown executor {executor!r} (registered: {', '.join(EXECUTORS)})")


__all__ = ["execute", "run_plan", "Database", "EXECUTORS", "DEFAULT_EXECUTOR"]
