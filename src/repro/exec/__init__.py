"""Plan interpreter: evaluates plan trees against in-memory databases."""

from repro.exec.interpreter import execute

__all__ = ["execute"]
