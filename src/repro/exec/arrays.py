"""Array-backend seam for the columnar executor.

Mirrors the PR 6 pattern from :mod:`repro.hypergraph.vectorized`: numpy is
an *accelerator*, never a dependency.  Every columnar code path has a
pure-python fallback, selected automatically when numpy is missing or
forced with ``REPRO_EXEC_FORCE_FALLBACK=1`` (the differential test suite
runs both ways).

Numeric columns are lowered to ``float64`` lanes.  IEEE-754 doubles make
elementwise ``+ - * /`` and the six comparisons bit-identical to the
python-float semantics of :func:`repro.algebra.values.sql_arith` /
:func:`~repro.algebra.values.sql_compare`, which is what lets the
columnar backend promise row-set equality with the interpreter.  The one
deliberate divergence: python ints are arbitrary precision, float64
lanes are not — integer arithmetic beyond 2^53 would lose exactness.
Query results compare through :func:`~repro.algebra.values.group_key`
(integral floats normalise to int), so within the exact range the
backends stay row-set identical.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via the numpy-less fallback suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

#: environment switch forcing the pure-python path (tests, debugging).
FORCE_FALLBACK_ENV = "REPRO_EXEC_FORCE_FALLBACK"


def numpy_module():
    """The numpy module when the accelerated path is active, else None."""
    if _np is None:
        return None
    if os.environ.get(FORCE_FALLBACK_ENV, "").strip() not in ("", "0"):
        return None
    return _np


def using_numpy() -> bool:
    """Whether the columnar executor currently runs on numpy lanes."""
    return numpy_module() is not None
