"""One worker shard: a process that *owns* its plan-cache shard.

``python -m repro.asyncserver.worker '<json config>'`` — spawned by the
:mod:`~repro.asyncserver.supervisor`, one per shard.  Each worker builds
its own TPC-H catalog and a **private** :class:`~repro.service.cache.PlanCache`;
the shard router guarantees every structural fingerprint always arrives
at the same worker, so there is no cross-process lock anywhere on the
warm path — and, the worker being single-threaded, no lock at all: its
stats snapshots are consistent by construction.

Requests arrive as :mod:`~repro.asyncserver.frames` on stdin; responses
(HTTP status + ready-to-send JSON body) leave on stdout.  The worker
keeps a bounded SQL-text memo (text → parsed query + fingerprint +
snapshot digests), so the steady-state warm hit is: memo lookup → cache
key → ``PlanCache.serve`` → ``json.dumps`` of a small dict.  Cold
misses run :func:`repro.optimizer.optimize` in-process, blocking the
shard — queries racing to the same shard queue behind the miss, which
is the sharding contract (one owner per fingerprint).

Persistence: on boot the worker warm-starts from its snapshot file when
the catalog fingerprint and layout version match (mismatches are
*refused* and counted as ``rejected`` — a stale plan served after a
catalog change is a correctness bug); on the supervisor's ``SNAPSHOT``
command (graceful drain) it writes the shard back to disk atomically.
"""

from __future__ import annotations

import json
import os
import select
import sys
import time
from collections import Counter, OrderedDict
from typing import Dict, Optional, Tuple

from repro import chaos
from repro.api.session import plan_to_dict
from repro.asyncserver import frames
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.deadline import Deadline, PlanningDeadlineExceeded
from repro.optimizer.driver import optimize
from repro.plans.render import render_plan
from repro.query.spec import Query
from repro.service.cache import FRESH, PlanCache, SnapshotError
from repro.service.fingerprint import (
    PlanCacheKey,
    cardinality_snapshot,
    catalog_fingerprint,
    query_fingerprint,
    strategy_label,
)
from repro.service.revalidate import StaleRevalidator
from repro.sql.binder import parse_query
from repro.sql.catalog import Catalog, TableStats

#: bounded memo of parsed SQL text per worker.
PARSE_MEMO_CAPACITY = 4096

#: default /execute row cap (mirrors the sync tier's; an explicit
#: ``"limit": null`` lifts it).  Kept local so the worker does not
#: import the sync HTTP stack.
DEFAULT_EXECUTE_LIMIT = 1000


class _RequestFailure(Exception):
    """A per-request error with an HTTP status and stable code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def body(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


class ShardWorker:
    """The per-process serving state: catalog, cache shard, memos, counters."""

    def __init__(self, config: dict):
        self.shard = int(config["shard"])
        self.shards = int(config["shards"])
        self.cache_dir = config.get("cache_dir")
        self.snapshot_path = config.get("snapshot_path")
        self.base_config = OptimizerConfig(
            strategy=config.get("strategy", "ea-prune"),
            factor=config.get("factor", 1.03),
            cost_model=config.get("cost_model", "cout"),
            engine=config.get("engine", "indexed"),
            cache_capacity=None,  # the shard cache is probed explicitly
            degradation=config.get("degradation", "heuristic"),
            snapshot_band_width=config.get("snapshot_band_width"),
            recost_bound=float(config.get("recost_bound", 2.0)),
        )
        #: per-request planning budget; queue time inside the worker is
        #: charged against it (see :meth:`_deadline`).
        self.request_timeout = float(config.get("request_timeout_seconds", 120.0))
        # Execution tier: every shard provisions its own dataset copy
        # (generation is deterministic, so shards hold identical data).
        self.dataset = None
        self.default_executor = config.get("default_executor", "columnar")
        if config.get("dataset"):
            from repro.data.provision import dataset_from_spec

            self.dataset = dataset_from_spec(config["dataset"])
        self.catalog = Catalog.from_tpch(scale_factor=config.get("scale_factor", 1.0))
        self.catalog_fp = catalog_fingerprint(self.catalog)
        self.cache = PlanCache(capacity=int(config.get("cache_capacity", 512)))
        # Stats drift lands via STATS_UPDATE frames; the revalidator runs
        # inline (drain() only — never kicked, so its thread pool stays
        # empty and the worker stays single-threaded by construction).
        self.revalidate_batch = int(config.get("revalidate_batch", 8))
        self.revalidator = StaleRevalidator(
            self.cache, self.catalog, self.base_config,
            on_event=self._record_revalidation,
        )
        # text → (query, fingerprint, key snapshot, exact snapshot) —
        # parse/bind/digest once per distinct SQL spelling (key snapshot
        # is banded when snapshot_band_width is configured).
        self._parse_memo: "OrderedDict[str, Tuple[Query, str, str, str]]" = OrderedDict()
        self._memo_hits = 0
        self._memo_misses = 0
        # (strategy, factor, cost_model) request overrides → resolved
        # (config, key-strategy name, key factor, cost-model name).
        self._config_memo: Dict[
            Tuple, Tuple[OptimizerConfig, str, Optional[float], str]
        ] = {}
        self.persistence = {"loaded": 0, "saved": 0, "rejected": 0}
        self.persistence_error: Optional[str] = None
        self._started = time.monotonic()
        self._served = 0
        self._failures = 0
        self._degraded = 0
        self._timeouts = 0
        self._stale_served = 0
        self._recosted = 0
        self._replanned = 0
        self._by_strategy: Counter = Counter()
        self._by_engine: Counter = Counter()
        self._executions: Counter = Counter()
        self._execution_rows = 0
        self._execution_seconds = 0.0

    # -- persistence ---------------------------------------------------------
    def warm_start(self) -> None:
        if not self.snapshot_path or not os.path.exists(self.snapshot_path):
            return
        try:
            self.persistence["loaded"] = self.cache.load_snapshot(
                self.snapshot_path, catalog_fingerprint=self.catalog_fp
            )
        except SnapshotError as error:
            # Refused: cold-start instead of serving stale plans.  The
            # file is left in place for post-mortems.
            self.persistence["rejected"] += 1
            self.persistence_error = f"{error.reason}: {error.message}"
            print(
                f"[shard {self.shard}] snapshot refused ({error.reason}): "
                f"{error.message}",
                file=sys.stderr,
                flush=True,
            )

    def snapshot(self) -> dict:
        if not self.snapshot_path:
            return {"saved": 0, "path": None, "persistence": dict(self.persistence)}
        os.makedirs(os.path.dirname(self.snapshot_path) or ".", exist_ok=True)
        saved = self.cache.save_snapshot(
            self.snapshot_path,
            catalog_fingerprint=self.catalog_fp,
            meta={"shard": self.shard, "shards": self.shards},
        )
        self.persistence["saved"] += saved
        if chaos.enabled():
            # Injected snapshot damage (tests/CI): the next warm start
            # must refuse this file and cold-start.
            fault = chaos.damage_snapshot(self.snapshot_path)
            if fault:
                print(
                    f"[shard {self.shard}] chaos: snapshot {fault}d on disk",
                    file=sys.stderr,
                    flush=True,
                )
        return {
            "saved": saved,
            "path": self.snapshot_path,
            "persistence": dict(self.persistence),
        }

    def _record_revalidation(self, outcome: str) -> None:
        if outcome == "recosted":
            self._recosted += 1
        elif outcome == "replanned":
            self._replanned += 1

    # -- request plumbing ----------------------------------------------------
    def _parse(self, sql) -> Tuple[Query, str, str, str]:
        if not isinstance(sql, str) or not sql.strip():
            raise _RequestFailure(400, "bad_request", "'sql' must be a non-empty string")
        memo = self._parse_memo
        hit = memo.get(sql)
        if hit is not None:
            self._memo_hits += 1
            memo.move_to_end(sql)
            return hit
        self._memo_misses += 1
        try:
            query = parse_query(sql, self.catalog)
        except ValueError as exc:
            raise _RequestFailure(400, "parse_error", str(exc)) from exc
        exact = cardinality_snapshot(query)
        band = self.base_config.snapshot_band_width
        key_snapshot = cardinality_snapshot(query, band) if band is not None else exact
        entry = (query, query_fingerprint(query), key_snapshot, exact)
        memo[sql] = entry
        if len(memo) > PARSE_MEMO_CAPACITY:
            memo.popitem(last=False)
        return entry

    def _resolve_config(
        self, body: dict
    ) -> Tuple[OptimizerConfig, str, Optional[float], str]:
        signature = tuple(
            body.get(field) for field in ("strategy", "factor", "cost_model")
        )
        resolved = self._config_memo.get(signature)
        if resolved is None:
            overrides = {
                field: body[field]
                for field in ("strategy", "factor", "cost_model")
                if body.get(field) is not None
            }
            try:
                config = (
                    self.base_config.with_overrides(**overrides)
                    if overrides
                    else self.base_config
                )
                name, factor = strategy_label(config.resolve_strategy(), config.factor)
            except (TypeError, ValueError) as exc:
                raise _RequestFailure(400, "bad_config", str(exc)) from exc
            resolved = (config, name, factor, config.cost_model_name)
            self._config_memo[signature] = resolved
        return resolved

    def _deadline(self, arrived: Optional[float]) -> Deadline:
        """The planning budget left for a request that arrived at
        *arrived* (``time.monotonic``): the configured request timeout
        minus time already spent queued behind earlier frames in this
        single-threaded worker.  A fully consumed budget still returns a
        Deadline — it fires on the first DP check, so the request
        degrades (or 504s) immediately instead of planning past its
        caller's patience."""
        budget = self.request_timeout
        if arrived is not None:
            budget -= time.monotonic() - arrived
        return Deadline(max(0.0, budget))

    def _plan(self, sql, body: dict, arrived: Optional[float] = None):
        """Serve or compute one plan; returns ``(result, config)``."""
        if chaos.enabled() and isinstance(sql, str):
            chaos.before_request(sql)
        query, fingerprint, snapshot, exact = self._parse(sql)
        config, strategy, factor, cost_model = self._resolve_config(body)
        key = PlanCacheKey(
            fingerprint=fingerprint,
            snapshot=snapshot,
            strategy=strategy,
            factor=factor,
            cost_model=cost_model,
        )
        found = self.cache.serve_entry(key, query, exact_snapshot=exact)
        result = None
        if found is not None:
            result, state = found
            if state != FRESH:
                # Stale-while-revalidate: answered now from the stale
                # entry; the idle-loop revalidator brings it back fresh.
                self._stale_served += 1
        if result is None:
            try:
                # The deadline rides beside the config (not through
                # _resolve_config's memo — budgets are per-request).
                result = optimize(query, config=config, deadline=self._deadline(arrived))
            except PlanningDeadlineExceeded as exc:
                # degradation="error": surface the blown budget as 504.
                self._timeouts += 1
                raise _RequestFailure(504, "timeout", str(exc)) from exc
            except Exception as exc:  # noqa: BLE001 - per-request isolation
                self._failures += 1
                raise _RequestFailure(
                    500, "optimizer_error", f"{type(exc).__name__}: {exc}"
                ) from exc
            if result.degraded:
                # Never cache a degraded fallback plan (PlanCache.store
                # also refuses them defensively).
                self._degraded += 1
            else:
                self.cache.store(key, query, result, sql=sql, exact_snapshot=exact)
        self._served += 1
        self._by_strategy[result.strategy] += 1
        self._by_engine[self._effective_engine(result)] += 1
        return result, config

    @staticmethod
    def _effective_engine(result) -> str:
        """The driver code path that actually produced *result* (the
        mirror of :func:`repro.server.service.effective_engine` — kept
        local so the worker does not import the sync HTTP stack)."""
        stats = result.stats or {}
        if stats.get("engine_vectorized"):
            return "vectorized"
        if stats.get("engine_reference"):
            return "reference"
        return "indexed"

    # -- commands ------------------------------------------------------------
    def handle_optimize(self, body: dict, arrived: Optional[float] = None) -> Tuple[int, dict]:
        started = time.perf_counter()
        result, config = self._plan(body.get("sql"), body, arrived)
        payload = {
            "strategy": result.strategy,
            "cost_model": config.cost_model_name,
            "cost": result.cost,
            "cardinality": result.plan.cardinality,
            "elapsed_seconds": result.elapsed_seconds,
            "server_seconds": time.perf_counter() - started,
            "cache_hit": result.cache_hit,
            "degraded": result.degraded,
            "ccp_count": result.ccp_count,
            "plans_built": result.plans_built,
            "shard": self.shard,
        }
        if body.get("include_plan", True):
            payload["plan"] = plan_to_dict(result.plan.node)
        return 200, payload

    def handle_explain(self, body: dict, arrived: Optional[float] = None) -> Tuple[int, dict]:
        result, _config = self._plan(body.get("sql"), body, arrived)
        return 200, {
            "strategy": result.strategy,
            "cost": result.cost,
            "cache_hit": result.cache_hit,
            "degraded": result.degraded,
            "explain": render_plan(result.plan.node),
            "shard": self.shard,
        }

    def handle_execute(self, body: dict, arrived: Optional[float] = None) -> Tuple[int, dict]:
        """``EXECUTE`` — plan (cached or fresh) and run against the shard's
        dataset copy.  Mirrors the sync tier's ``execute_body``: the same
        request fields (``executor`` / ``limit``), the same columnar
        response shape, the same 409 when no dataset is provisioned."""
        if self.dataset is None:
            raise _RequestFailure(
                409,
                "no_dataset",
                "no dataset loaded — start the server with a dataset "
                "(e.g. --dataset tpch-sf0.01) to execute plans",
            )
        from repro.algebra.values import NULL
        from repro.exec import EXECUTORS, run_plan

        executor = body.get("executor", self.default_executor)
        if executor not in EXECUTORS:
            raise _RequestFailure(
                400,
                "bad_executor",
                f"unknown executor {executor!r} (one of: {', '.join(EXECUTORS)})",
            )
        if "limit" not in body:
            limit = DEFAULT_EXECUTE_LIMIT
        else:
            limit = body["limit"]
            if limit is not None and (
                not isinstance(limit, int) or isinstance(limit, bool) or limit < 0
            ):
                raise _RequestFailure(
                    400, "bad_request", "'limit' must be an integer >= 0 or null"
                )
        started = time.perf_counter()
        sql = body.get("sql")
        result, _config = self._plan(sql, body, arrived)
        query, _fingerprint, _snapshot, _exact = self._parse(sql)
        try:
            database = self.dataset.database_for(query)
        except KeyError as exc:
            raise _RequestFailure(
                404, "unknown_table", f"dataset has no table for {exc.args[0]!r}"
            ) from exc
        run_started = time.perf_counter()
        try:
            relation = run_plan(result.plan.node, database, executor=executor, limit=limit)
        except Exception as exc:  # noqa: BLE001 - per-request isolation
            self._failures += 1
            raise _RequestFailure(
                500, "execution_error", f"{type(exc).__name__}: {exc}"
            ) from exc
        execution_seconds = time.perf_counter() - run_started
        self._executions[executor] += 1
        self._execution_rows += len(relation)
        self._execution_seconds += execution_seconds
        columns = list(relation.attributes)
        return 200, {
            "strategy": result.strategy,
            "cost": result.cost,
            "cache_hit": result.cache_hit,
            "degraded": result.degraded,
            "executor": executor,
            "limit": limit,
            "columns": columns,
            "rows": [
                [None if row[column] is NULL else row[column] for column in columns]
                for row in relation
            ],
            "row_count": len(relation),
            "execution_seconds": execution_seconds,
            "server_seconds": time.perf_counter() - started,
            "shard": self.shard,
        }

    def handle_batch(self, body: dict, arrived: Optional[float] = None) -> Tuple[int, dict]:
        """A shard's slice of one ``/batch``: ``[[index, sql], ...]``.

        All items share the request's arrival time, so the whole slice
        shares one budget — later items in a slice whose earlier items
        ate the budget degrade rather than extend the request.
        """
        include_plans = bool(body.get("include_plans", False))
        items = []
        for index, sql in body.get("queries", ()):
            try:
                result, _config = self._plan(sql, body, arrived)
            except _RequestFailure as failure:
                stage = "parse" if failure.code in ("parse_error", "bad_request") else "optimize"
                item = {"index": index, "error": failure.message, "stage": stage}
                if failure.code == "timeout":
                    item["timeout"] = True
                items.append(item)
                continue
            item = {
                "index": index,
                "strategy": result.strategy,
                "cost": result.cost,
                "cache_hit": result.cache_hit,
                "degraded": result.degraded,
                "elapsed_seconds": result.elapsed_seconds,
            }
            if include_plans:
                item["plan"] = plan_to_dict(result.plan.node)
            items.append(item)
        return 200, {"items": items, "shard": self.shard}

    def handle_stats_update(self, body: dict) -> Tuple[int, dict]:
        """Apply one statistics drift to this shard's private catalog.

        Scales (``cardinality_factor``) or sets (``cardinality``) a
        table's row count, marks dependent cache entries stale, flushes
        the parse memo (its queries and digests embed the old
        statistics) and revalidates a bounded inline batch; the rest of
        the backlog drains in the serve loop's idle gaps while requests
        keep being answered from the stale entries.
        """
        table = body.get("table")
        if not isinstance(table, str) or not table.strip():
            raise _RequestFailure(400, "bad_request", "'table' must be a non-empty string")
        old = self.catalog.lookup(table)
        if old is None:
            raise _RequestFailure(404, "unknown_table", f"unknown table {table!r}")
        factor = body.get("cardinality_factor")
        absolute = body.get("cardinality")
        if (factor is None) == (absolute is None):
            raise _RequestFailure(
                400, "bad_request",
                "provide exactly one of 'cardinality_factor' or 'cardinality'",
            )
        try:
            if factor is not None:
                factor = float(factor)
                if factor <= 0:
                    raise ValueError("cardinality_factor must be > 0")
                new_cardinality = old.cardinality * factor
            else:
                new_cardinality = float(absolute)
                if new_cardinality <= 0:
                    raise ValueError("cardinality must be > 0")
                factor = new_cardinality / old.cardinality if old.cardinality else 1.0
        except (TypeError, ValueError) as exc:
            raise _RequestFailure(400, "bad_request", str(exc)) from exc
        new_stats = TableStats(
            name=old.name,
            columns=old.columns,
            cardinality=new_cardinality,
            distinct={
                column: min(value * factor, new_cardinality)
                for column, value in old.distinct.items()
            },
            keys=old.keys,
        )
        delta = self.catalog.update_stats(table, new_stats)
        marked = self.cache.mark_stale(delta.relation)
        self._parse_memo.clear()
        counts = self.revalidator.drain(limit=self.revalidate_batch)
        payload = dict(delta.payload())
        payload.update(
            shard=self.shard,
            marked_stale=marked,
            stale_entries=self.cache.stale_count(),
            revalidated_inline=counts,
        )
        return 200, payload

    def stale_backlog(self) -> bool:
        """Whether idle-loop revalidation has entries left to process."""
        return self.cache.stale_count() > 0

    def revalidate_some(self, limit: int = 1) -> bool:
        """Revalidate up to *limit* stale entries (idle-gap work).

        Returns whether any entry actually left the stale backlog —
        False means everything claimed failed (e.g. replans that
        deadline-degrade) and went back to stale, so the caller must
        stop looping rather than spin on the same entry.
        """
        counts = self.revalidator.drain(limit=limit)
        return counts["recosted"] + counts["replanned"] + counts["dropped"] > 0

    def stats_payload(self) -> dict:
        """One consistent stats snapshot — single-threaded, so no torn
        counters are possible by construction."""
        served = self._served
        hits = self.cache.stats.hits
        misses = self.cache.stats.misses
        return {
            "shard": self.shard,
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self._started,
            "plans": {
                "served": served,
                "cache_hits": hits,
                "cache_misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                "failures": self._failures,
                "degraded": self._degraded,
                "timeouts": self._timeouts,
                "stale_served": self._stale_served,
                "recosted": self._recosted,
                "replanned": self._replanned,
                "by_strategy": dict(self._by_strategy),
                "by_engine": dict(self._by_engine),
            },
            "executions": {
                "count": sum(self._executions.values()),
                "by_executor": dict(self._executions),
                "rows_returned": self._execution_rows,
                "seconds_total": self._execution_seconds,
            },
            "cache": self.cache.describe(),
            "persistence": dict(self.persistence),
            "persistence_error": self.persistence_error,
            "parse_memo": {
                "size": len(self._parse_memo),
                "hits": self._memo_hits,
                "misses": self._memo_misses,
            },
        }

    def hello_payload(self) -> dict:
        return {
            "shard": self.shard,
            "pid": os.getpid(),
            "catalog_fingerprint": self.catalog_fp,
            "cache_size": len(self.cache),
            "persistence": dict(self.persistence),
            "persistence_error": self.persistence_error,
        }


def _dumps(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8")


#: responses are flushed at least every this-many frames, bounding the
#: head-of-line latency a burst adds (16 warm hits ~ a millisecond)
#: while still amortising the pipe syscall over the batch.
FLUSH_EVERY = 16


def _write_all(out_fd: int, out: bytearray) -> None:
    data = bytes(out)
    out.clear()
    written = 0
    while written < len(data):
        written += os.write(out_fd, data[written:])


def serve(worker: ShardWorker, in_fd: int, out_fd: int) -> None:
    """The blocking frame loop: read a chunk, answer the complete frames
    in it, flushing responses in bounded batches."""
    buffer = bytearray()
    out = bytearray()
    running = True
    while running:
        try:
            chunk = os.read(in_fd, 1 << 16)
        except InterruptedError:  # pragma: no cover - EINTR
            continue
        if not chunk:  # supervisor went away: exit without snapshotting
            break
        buffer += chunk
        # Frames in this chunk share an arrival stamp: planning budgets
        # start when the request reaches the worker's queue, so time
        # spent queued behind earlier frames counts against them.
        arrived = time.monotonic()
        answered = 0
        for request_id, kind, payload in frames.feed(buffer):
            if kind == frames.EXIT:
                out += frames.pack(request_id, 200, _dumps({"ok": True}))
                running = False
                break
            if chaos.should_drop(payload):
                # Injected frame loss: swallow the request, never answer
                # (the front's hard timeout fires and reaps this worker).
                continue
            try:
                if kind == frames.OPTIMIZE:
                    status, body = worker.handle_optimize(json.loads(payload), arrived)
                elif kind == frames.EXPLAIN:
                    status, body = worker.handle_explain(json.loads(payload), arrived)
                elif kind == frames.BATCH:
                    status, body = worker.handle_batch(json.loads(payload), arrived)
                elif kind == frames.EXECUTE:
                    status, body = worker.handle_execute(json.loads(payload), arrived)
                elif kind == frames.STATS:
                    status, body = 200, worker.stats_payload()
                elif kind == frames.STATS_UPDATE:
                    status, body = worker.handle_stats_update(json.loads(payload))
                elif kind == frames.SNAPSHOT:
                    status, body = 200, worker.snapshot()
                else:
                    status, body = 400, {
                        "error": {"code": "bad_command", "message": f"unknown kind {kind}"}
                    }
            except _RequestFailure as failure:
                status, body = failure.status, failure.body()
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                status, body = 400, {
                    "error": {"code": "bad_json", "message": f"invalid JSON body: {error}"}
                }
            except Exception as error:  # noqa: BLE001 - the shard must not die
                status, body = 500, {
                    "error": {
                        "code": "internal",
                        "message": f"{type(error).__name__}: {error}",
                    }
                }
            out += frames.pack(request_id, status, _dumps(body))
            answered += 1
            if answered % FLUSH_EVERY == 0:
                _write_all(out_fd, out)
        if out:
            _write_all(out_fd, out)
        # Idle-gap revalidation: with every received frame answered and
        # flushed, drain the stale backlog one entry at a time, yielding
        # the moment new input arrives — the async tier's "task per
        # shard" revalidator, expressed in this blocking loop.
        while running and worker.stale_backlog():
            ready, _, _ = select.select([in_fd], [], [], 0)
            if ready:
                break
            if not worker.revalidate_some(1):
                break  # backlog is all failures; retry on a later gap


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.asyncserver.worker '<json config>'", file=sys.stderr)
        return 2
    config = json.loads(argv[0])

    # The frame channel owns fd 1.  Point fd 1 at stderr so any stray
    # print()/traceback inside the optimizer cannot corrupt the stream.
    out_fd = os.dup(1)
    os.dup2(2, 1)
    sys.stdout = sys.stderr

    worker = ShardWorker(config)
    worker.warm_start()
    # A worker process exists only to serve its shard: adopt the
    # latency-oriented GC posture (frozen boot heap, rare full passes).
    from repro.asyncserver.app import tune_gc_for_serving

    tune_gc_for_serving()
    hello = frames.pack(0, frames.HELLO, _dumps(worker.hello_payload()))
    os.write(out_fd, hello)
    serve(worker, 0, out_fd)
    return 0


if __name__ == "__main__":
    sys.exit(main())
