"""The front ↔ worker wire protocol: length-prefixed binary frames.

The event loop talks to each worker shard over the worker subprocess's
stdin/stdout pipes.  Frames are deliberately minimal — a fixed 16-byte
header followed by an opaque payload::

    <request_id: uint64 LE> <kind: uint32 LE> <length: uint32 LE> <payload: length bytes>

Requests carry a command kind (:data:`OPTIMIZE` ...) and a JSON payload
(usually the HTTP request body, relayed verbatim so the front never
re-serialises what the client already encoded).  Responses echo the
request id, carry the **HTTP status code** as their kind, and their
payload is the final JSON response body — the front writes it into the
HTTP response without inspecting it, so a warm hit costs the worker one
``json.dumps`` and the front zero.

Frames also deliberately batch: the worker answers every complete frame
in its read buffer before flushing one write, and the front coalesces
same-iteration sends per worker — under load the pipe syscall and
context-switch cost amortises over the burst.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Tuple

HEADER = struct.Struct("<QII")
HEADER_SIZE = HEADER.size

#: largest accepted frame payload (matches the HTTP body bound upstream,
#: with headroom for batch responses carrying many plan trees).
MAX_FRAME_BYTES = 64 * 1024 * 1024

# -- request kinds (responses use HTTP status codes instead) ----------------
OPTIMIZE = 1
EXPLAIN = 2
BATCH = 3
STATS = 4
SNAPSHOT = 5
EXIT = 6
STATS_UPDATE = 7
EXECUTE = 8

#: worker → front boot announcement (sent once, request_id 0).
HELLO = 100


def pack(request_id: int, kind: int, payload: bytes) -> bytes:
    """One frame as bytes (header + payload)."""
    return HEADER.pack(request_id, kind, len(payload)) + payload


def feed(buffer: bytearray) -> Iterator[Tuple[int, int, bytes]]:
    """Yield every complete ``(request_id, kind, payload)`` in *buffer*.

    Consumed bytes are deleted from *buffer* in one slice at the end —
    callers keep appending received chunks and re-calling.  Raises
    ``ValueError`` on an over-size frame (a corrupt stream: resyncing is
    impossible, the connection must be dropped).
    """
    offset = 0
    total = len(buffer)
    frames: List[Tuple[int, int, bytes]] = []
    while total - offset >= HEADER_SIZE:
        request_id, kind, length = HEADER.unpack_from(buffer, offset)
        if length > MAX_FRAME_BYTES:
            raise ValueError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
        if total - offset - HEADER_SIZE < length:
            break
        start = offset + HEADER_SIZE
        frames.append((request_id, kind, bytes(buffer[start:start + length])))
        offset = start + length
    if offset:
        del buffer[:offset]
    return iter(frames)
