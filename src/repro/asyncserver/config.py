"""`AsyncServerConfig` — the async serving tier's knobs, validated eagerly.

The async tier replaces thread-per-connection with one asyncio event
loop in front of ``shards`` worker *processes*, each owning a private
:class:`~repro.service.cache.PlanCache` shard — so capacity knobs here
are **per shard** where the sync :class:`~repro.server.ServerConfig`'s
were global.  ``cache_dir`` enables persistence: shards snapshot to
``<cache_dir>/shard-<i>-of-<N>.plancache`` on graceful drain and
warm-start from the same files on boot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.optimizer.config import OptimizerConfig


def default_shards() -> int:
    """Worker-shard count when unspecified: one per core, capped at 4.

    Unlike the batch pool (CPU-bound misses, more workers help), the
    async tier's warm path is dominated by per-request overhead; extra
    shards past the core count only add context switching.
    """
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    return max(1, min(available, 4))


@dataclass(frozen=True)
class AsyncServerConfig:
    """Immutable async-tier settings.

    ``shards`` — worker processes, each owning one plan-cache shard
    (``None`` auto-sizes via :func:`default_shards`).  ``cache_dir`` —
    directory for shard snapshots; ``None`` disables persistence.
    ``cache_capacity`` — plan-cache entries **per shard**.
    ``max_inflight`` bounds requests admitted to the worker tier across
    all endpoints; excess requests get an immediate 429 (``None``
    derives ``16 * shards + 32`` — the tier is built for open-loop
    traffic, so the bound is deliberately deeper than the sync
    server's).  ``route_cache_capacity`` bounds the front process's
    SQL-text → shard memo.  ``request_timeout_seconds`` is one
    request's planning budget: workers charge queue time against it and
    arm the remainder as a cooperative deadline inside the DP, with
    ``degradation`` picking the outcome of a blown budget — a heuristic
    plan marked ``degraded: true`` (200) or a 504.  The front waits
    :attr:`hard_timeout_seconds` (budget + grace) before declaring the
    worker wedged, answering 504, and killing it for restart.
    ``worker_boot_seconds`` caps waiting for a worker's hello at spawn;
    ``drain_grace_seconds`` is how long a drain waits for in-flight
    requests before snapshotting and exiting anyway.

    Stale-while-revalidate: ``recost_bound`` is how far a re-costed
    stale plan may regress past the cheap-replan reference before full
    re-enumeration, ``revalidate_batch`` bounds inline revalidation per
    ``STATS_UPDATE`` frame (the rest drains in serve-loop idle gaps),
    and ``snapshot_band_width`` (log10 decades, ``None`` = exact)
    enables banded cache keys so nearby statistics share entries.

    ``dataset`` enables ``POST /execute``: a
    :func:`~repro.data.provision.dataset_from_spec` spec (``tpch-sf0.01``
    or a directory) provisioned **per worker shard** at boot —
    generation is deterministic, so every shard holds identical data.
    ``default_executor`` is the backend used when a request names none.

    Crash supervision: restarts back off exponentially
    (``restart_backoff_base_seconds`` doubling per crash up to
    ``restart_backoff_cap_seconds``), and ``breaker_threshold`` crashes
    within ``breaker_window_seconds`` open a per-shard circuit breaker —
    the shard's fingerprints answer 503 for
    ``breaker_cooldown_seconds`` while other shards keep serving, then
    one restart probe closes the breaker if it boots.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    shards: Optional[int] = None
    cache_dir: Optional[str] = None
    max_inflight: Optional[int] = None
    scale_factor: float = 1.0
    strategy: str = "ea-prune"
    factor: float = 1.03
    cost_model: str = "cout"
    engine: str = "indexed"
    cache_capacity: int = 512
    route_cache_capacity: int = 4096
    request_timeout_seconds: float = 120.0
    worker_boot_seconds: float = 60.0
    drain_grace_seconds: float = 10.0
    degradation: str = "heuristic"
    recost_bound: float = 2.0
    revalidate_batch: int = 8
    snapshot_band_width: Optional[float] = None
    restart_backoff_base_seconds: float = 0.5
    restart_backoff_cap_seconds: float = 30.0
    breaker_threshold: int = 5
    breaker_window_seconds: float = 60.0
    breaker_cooldown_seconds: float = 30.0
    dataset: Optional[str] = None
    default_executor: str = "columnar"

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port must be in [0, 65535] (0 = ephemeral), got {self.port}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.scale_factor <= 0:
            raise ValueError(f"scale_factor must be > 0, got {self.scale_factor}")
        if self.cache_capacity < 1:
            raise ValueError(f"cache_capacity must be >= 1, got {self.cache_capacity}")
        if self.route_cache_capacity < 1:
            raise ValueError(
                f"route_cache_capacity must be >= 1, got {self.route_cache_capacity}"
            )
        if self.request_timeout_seconds <= 0:
            raise ValueError(
                f"request_timeout_seconds must be > 0, got {self.request_timeout_seconds}"
            )
        if self.worker_boot_seconds <= 0:
            raise ValueError(
                f"worker_boot_seconds must be > 0, got {self.worker_boot_seconds}"
            )
        if self.drain_grace_seconds < 0:
            raise ValueError(
                f"drain_grace_seconds must be >= 0, got {self.drain_grace_seconds}"
            )
        if self.degradation not in ("heuristic", "error"):
            raise ValueError(
                f"degradation must be 'heuristic' or 'error', got {self.degradation!r}"
            )
        if self.revalidate_batch < 1:
            raise ValueError(
                f"revalidate_batch must be >= 1, got {self.revalidate_batch}"
            )
        if self.restart_backoff_base_seconds < 0:
            raise ValueError(
                f"restart_backoff_base_seconds must be >= 0, got {self.restart_backoff_base_seconds}"
            )
        if self.restart_backoff_cap_seconds < self.restart_backoff_base_seconds:
            raise ValueError(
                "restart_backoff_cap_seconds must be >= restart_backoff_base_seconds, "
                f"got {self.restart_backoff_cap_seconds}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {self.breaker_threshold}")
        if self.breaker_window_seconds <= 0:
            raise ValueError(
                f"breaker_window_seconds must be > 0, got {self.breaker_window_seconds}"
            )
        if self.breaker_cooldown_seconds < 0:
            raise ValueError(
                f"breaker_cooldown_seconds must be >= 0, got {self.breaker_cooldown_seconds}"
            )
        from repro.exec import EXECUTORS

        if self.default_executor not in EXECUTORS:
            raise ValueError(
                f"default_executor must be one of {', '.join(EXECUTORS)}, "
                f"got {self.default_executor!r}"
            )
        if self.dataset is not None:
            from repro.data.provision import validate_dataset_spec

            validate_dataset_spec(self.dataset)
        # Validate the optimizer-facing fields eagerly, like everything else.
        self.optimizer_config()

    def optimizer_config(self) -> OptimizerConfig:
        """The optimizer settings each worker shard plans under."""
        return OptimizerConfig(
            strategy=self.strategy,
            factor=self.factor,
            cost_model=self.cost_model,
            engine=self.engine,
            workers=None,
            cache_capacity=self.cache_capacity,
            degradation=self.degradation,
            snapshot_band_width=self.snapshot_band_width,
            recost_bound=self.recost_bound,
        )

    @property
    def hard_timeout_seconds(self) -> float:
        """The front's hard wait before declaring a worker wedged.

        Budget plus grace: the worker's cooperative deadline fires at
        ``request_timeout_seconds`` and a degraded (or 504) response
        travels back within the grace margin, so this expiring means the
        worker is genuinely stuck (hung, not merely slow) and gets
        killed for restart.
        """
        return self.request_timeout_seconds + max(
            2.0, 0.25 * self.request_timeout_seconds
        )

    @property
    def effective_shards(self) -> int:
        return self.shards if self.shards is not None else default_shards()

    @property
    def effective_max_inflight(self) -> int:
        if self.max_inflight is not None:
            return self.max_inflight
        return 16 * self.effective_shards + 32

    def shard_path(self, shard: int) -> Optional[str]:
        """The snapshot file for *shard*, or None when persistence is off.

        The shard count is baked into the filename: re-sharding changes
        the fingerprint → shard mapping, so a ``shard-0-of-2`` file must
        never warm-start shard 0 of a 4-shard server.
        """
        if self.cache_dir is None:
            return None
        shards = self.effective_shards
        return os.path.join(
            self.cache_dir, f"shard-{shard:03d}-of-{shards:03d}.plancache"
        )
