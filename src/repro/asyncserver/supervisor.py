"""Worker-shard supervisor: spawn, talk to, restart, and drain workers.

The supervisor owns the ``shards`` worker subprocesses.  For each shard
it keeps one :class:`WorkerHandle` — the subprocess, its pending
request futures, and a per-iteration send buffer (writes are coalesced
via ``call_soon`` so a burst of requests costs one pipe write).

Crash policy: a worker that dies outside a drain takes its pending
requests down with 500 ``worker_pool_failure`` responses and is
restarted with capped exponential backoff (the fresh worker warm-starts
from the shard's last snapshot when persistence is on, so a crash loses
at most the plans cached since the previous drain).  A crash *loop* —
``breaker_threshold`` crashes inside ``breaker_window_seconds`` — opens
the shard's circuit breaker: its fingerprints answer 503
(:class:`WorkerUnavailable`) for ``breaker_cooldown_seconds`` while the
other shards keep serving, then a single restart probe closes the
breaker if the worker boots.  During a drain, exits are expected and no
restart happens.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import sys
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.asyncserver import frames
from repro.asyncserver.config import AsyncServerConfig


class WorkerCrashed(Exception):
    """The shard's worker died while holding this request."""


class WorkerUnavailable(WorkerCrashed):
    """The shard has no serving worker right now (restart backoff or
    open circuit breaker) — the front answers 503 so clients retry,
    rather than queueing onto a process that does not exist."""


class WorkerHandle:
    """One shard's subprocess plus its in-flight request bookkeeping."""

    def __init__(self, shard: int, supervisor: "WorkerSupervisor"):
        self.shard = shard
        self.supervisor = supervisor
        self.process: Optional[asyncio.subprocess.Process] = None
        self.pending: Dict[int, asyncio.Future] = {}
        self.hello: dict = {}
        self.restarts = 0
        self.breaker_open = False
        #: the delay currently (or last) applied before a respawn.
        self.current_backoff = 0.0
        self._crash_times: Deque[float] = deque()
        self._send_buffer = bytearray()
        self._flush_scheduled = False
        self._reader_task: Optional[asyncio.Task] = None
        self._draining = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        config = self.supervisor.worker_config(self.shard)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
        self.process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.asyncserver.worker",
            json.dumps(config),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=None,  # workers share the front's stderr for diagnostics
            env=env,
        )
        hello = await asyncio.wait_for(
            self._read_hello(), timeout=self.supervisor.config.worker_boot_seconds
        )
        self.hello = hello
        self.supervisor.note_persistence(hello.get("persistence"))

    async def _read_hello(self) -> dict:
        assert self.process is not None and self.process.stdout is not None
        header = await self.process.stdout.readexactly(frames.HEADER_SIZE)
        _request_id, kind, length = frames.HEADER.unpack(header)
        payload = await self.process.stdout.readexactly(length)
        if kind != frames.HELLO:
            raise RuntimeError(f"shard {self.shard}: expected hello, got kind {kind}")
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return json.loads(payload)

    async def _read_loop(self) -> None:
        assert self.process is not None and self.process.stdout is not None
        stdout = self.process.stdout
        try:
            while True:
                header = await stdout.readexactly(frames.HEADER_SIZE)
                request_id, status, length = frames.HEADER.unpack(header)
                payload = await stdout.readexactly(length)
                future = self.pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result((status, payload))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # worker exited — handled below
        except asyncio.CancelledError:
            raise
        await self._on_exit()

    async def _on_exit(self) -> None:
        if self.process is not None:
            await self.process.wait()
        failed = list(self.pending.values())
        self.pending.clear()
        for future in failed:
            if not future.done():
                future.set_exception(WorkerCrashed(f"shard {self.shard} worker exited"))
        if self._draining or self.supervisor.closed:
            return
        # Crash outside a drain: restart the shard (warm-starting from
        # its last snapshot when persistence is on), backing off
        # exponentially, and opening the circuit breaker on a crash
        # loop.  While this coroutine sleeps, send() raises
        # WorkerUnavailable → the front answers 503 for this shard and
        # the other shards keep serving.
        self.process = None
        while not (self._draining or self.supervisor.closed):
            self.restarts += 1
            delay = self._note_crash()
            state = "breaker open; cooling down" if self.breaker_open else "backing off"
            print(
                f"[supervisor] shard {self.shard} worker died "
                f"(restart #{self.restarts}); {state} {delay:.2f}s before respawn",
                file=sys.stderr,
                flush=True,
            )
            if delay > 0:
                await asyncio.sleep(delay)
            if self._draining or self.supervisor.closed:
                return
            try:
                await self.start()
            except Exception as error:  # noqa: BLE001 - keep serving other shards
                print(
                    f"[supervisor] shard {self.shard} restart failed: {error}",
                    file=sys.stderr,
                    flush=True,
                )
                process, self.process = self.process, None
                if process is not None and process.returncode is None:
                    try:
                        process.kill()
                    except ProcessLookupError:
                        pass
                continue
            # Half-open probe booted: close the breaker.  Crash history
            # stays in the window, so an immediate re-crash (a
            # deterministic crasher being retried) reopens it at once.
            self.breaker_open = False
            self.current_backoff = 0.0
            return

    def _note_crash(self) -> float:
        """Record one crash; return the pre-respawn delay.

        Exponential backoff doubles from the configured base per crash in
        the sliding window, capped; reaching ``breaker_threshold`` crashes
        in the window opens the breaker and switches the delay to the
        breaker cooldown.
        """
        config = self.supervisor.config
        now = time.monotonic()
        self._crash_times.append(now)
        window = config.breaker_window_seconds
        while self._crash_times and now - self._crash_times[0] > window:
            self._crash_times.popleft()
        crashes = len(self._crash_times)
        if crashes >= config.breaker_threshold:
            self.breaker_open = True
            delay = config.breaker_cooldown_seconds
        else:
            delay = min(
                config.restart_backoff_cap_seconds,
                config.restart_backoff_base_seconds * (2 ** (crashes - 1)),
            )
        self.current_backoff = delay
        return delay

    def reap(self, reason: str) -> None:
        """Kill a wedged worker (hard-timeout expiry on the front).

        The kill surfaces as process exit in the reader loop, which runs
        the normal crash accounting — backoff, breaker, restart — so a
        hang is just a crash the supervisor has to cause itself.
        """
        process = self.process
        if process is not None and process.returncode is None:
            print(
                f"[supervisor] shard {self.shard}: killing wedged worker ({reason})",
                file=sys.stderr,
                flush=True,
            )
            try:
                process.kill()
            except ProcessLookupError:
                pass

    def describe(self) -> dict:
        """Supervision state for ``/stats`` (front-process truth only)."""
        process = self.process
        return {
            "shard": self.shard,
            "alive": process is not None and process.returncode is None,
            "restarts": self.restarts,
            "backoff_seconds": self.current_backoff,
            "breaker_open": self.breaker_open,
            "crashes_in_window": len(self._crash_times),
        }

    # -- request path --------------------------------------------------------
    def send(self, kind: int, payload: bytes) -> asyncio.Future:
        """Queue one frame; returns a future of ``(status, body_bytes)``."""
        if self.breaker_open:
            raise WorkerUnavailable(
                f"shard {self.shard} circuit breaker open after repeated crashes; "
                "cooling down"
            )
        if self.process is None or self.process.stdin is None:
            raise WorkerUnavailable(
                f"shard {self.shard} has no live worker (restarting)"
            )
        request_id = next(self.supervisor.request_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.pending[request_id] = future
        self._send_buffer += frames.pack(request_id, kind, payload)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)
        return future

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._send_buffer:
            return
        buffer = bytes(self._send_buffer)
        self._send_buffer.clear()
        stdin = self.process.stdin if self.process else None
        if stdin is None or stdin.is_closing():
            return  # pending futures fail via _on_exit
        stdin.write(buffer)

    async def request(self, kind: int, payload: bytes, timeout: float) -> Tuple[int, bytes]:
        future = self.send(kind, payload)
        return await asyncio.wait_for(future, timeout=timeout)

    # -- shutdown ------------------------------------------------------------
    async def drain(self, *, snapshot: bool, timeout: float) -> Optional[dict]:
        """Ask the worker to (optionally) snapshot its shard, then exit."""
        self._draining = True
        saved: Optional[dict] = None
        try:
            if snapshot:
                status, payload = await self.request(frames.SNAPSHOT, b"{}", timeout)
                if status == 200:
                    saved = json.loads(payload)
                    self.supervisor.note_persistence(saved.get("persistence"))
            await self.request(frames.EXIT, b"{}", timeout)
        except (WorkerCrashed, asyncio.TimeoutError):
            pass  # fall through to kill
        await self.terminate()
        return saved

    async def terminate(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._reader_task = None
        process, self.process = self.process, None
        if process is None:
            return
        if process.stdin is not None:
            try:
                process.stdin.close()
            except (BrokenPipeError, ConnectionResetError):
                pass
        if process.returncode is None:
            try:
                await asyncio.wait_for(process.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                process.kill()
                await process.wait()
        for future in self.pending.values():
            if not future.done():
                future.set_exception(WorkerCrashed(f"shard {self.shard} terminated"))
        self.pending.clear()


class WorkerSupervisor:
    """All shards: spawn on start, route by shard index, drain together."""

    def __init__(self, config: AsyncServerConfig):
        self.config = config
        self.shards = config.effective_shards
        self.workers: List[WorkerHandle] = [
            WorkerHandle(shard, self) for shard in range(self.shards)
        ]
        self.request_ids = itertools.count(1)
        self.closed = False
        self.started_at = time.monotonic()
        # Persistence totals survive worker restarts (each hello /
        # snapshot response folds its counters in here).
        self._persistence = {"loaded": 0, "saved": 0, "rejected": 0}

    def worker_config(self, shard: int) -> dict:
        config = self.config
        return {
            "shard": shard,
            "shards": self.shards,
            "cache_dir": config.cache_dir,
            "snapshot_path": config.shard_path(shard),
            "scale_factor": config.scale_factor,
            "strategy": config.strategy,
            "factor": config.factor,
            "cost_model": config.cost_model,
            "engine": config.engine,
            "cache_capacity": config.cache_capacity,
            "request_timeout_seconds": config.request_timeout_seconds,
            "degradation": config.degradation,
            "recost_bound": config.recost_bound,
            "revalidate_batch": config.revalidate_batch,
            "snapshot_band_width": config.snapshot_band_width,
            "dataset": config.dataset,
            "default_executor": config.default_executor,
        }

    def note_persistence(self, counters: Optional[dict]) -> None:
        if not counters:
            return
        for key in self._persistence:
            self._persistence[key] += int(counters.get(key, 0))

    @property
    def persistence(self) -> dict:
        return dict(self._persistence)

    async def start(self) -> None:
        await asyncio.gather(*(worker.start() for worker in self.workers))

    def worker(self, shard: int) -> WorkerHandle:
        return self.workers[shard]

    @property
    def total_restarts(self) -> int:
        return sum(worker.restarts for worker in self.workers)

    def shard_states(self) -> List[dict]:
        """Per-shard supervision state (restarts/backoff/breaker) for /stats."""
        return [worker.describe() for worker in self.workers]

    async def request(
        self, shard: int, kind: int, payload: bytes, timeout: Optional[float] = None
    ) -> Tuple[int, bytes]:
        """One request to *shard*.  *timeout* defaults to the request
        budget; planning endpoints pass the hard (budget + grace) timeout
        instead so the worker's cooperative deadline answers first."""
        if timeout is None:
            timeout = self.config.request_timeout_seconds
        return await self.workers[shard].request(kind, payload, timeout)

    async def broadcast(self, kind: int, payload: bytes) -> List[Optional[Tuple[int, bytes]]]:
        """Send *kind* to every shard; crashed shards yield ``None``."""

        async def one(worker: WorkerHandle):
            try:
                return await worker.request(
                    kind, payload, self.config.request_timeout_seconds
                )
            except (WorkerCrashed, asyncio.TimeoutError):
                return None

        return list(await asyncio.gather(*(one(worker) for worker in self.workers)))

    async def drain(self, *, snapshot: Optional[bool] = None) -> dict:
        """Snapshot (when persistence is on) and stop every worker.

        Idempotent: the second call is a no-op, so a SIGTERM racing an
        explicit ``drain()`` cannot double-count ``persistence.saved``.
        """
        if self.closed:
            return self.persistence
        self.closed = True
        if snapshot is None:
            snapshot = self.config.cache_dir is not None
        timeout = max(self.config.drain_grace_seconds, 1.0)
        await asyncio.gather(
            *(worker.drain(snapshot=snapshot, timeout=timeout) for worker in self.workers)
        )
        return self.persistence

    async def kill(self) -> None:
        self.closed = True
        await asyncio.gather(*(worker.terminate() for worker in self.workers))
