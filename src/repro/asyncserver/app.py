"""The async serving tier: one event loop in front of sharded workers.

Architecture (see ``docs/architecture.md``)::

    clients ──keep-alive HTTP/1.1──▶ event loop (this module)
                                        │ route: SQL → fingerprint → shard
                                        ├──frames──▶ worker 0 (own PlanCache)
                                        ├──frames──▶ worker 1 (own PlanCache)
                                        └──frames──▶ ...

The front process never optimizes and never touches a plan cache: it
parses HTTP, routes each request by structural fingerprint to the worker
that owns that fingerprint's cache shard, and relays the worker's
ready-made JSON response bytes verbatim.  A bounded route cache
(SQL text → shard) makes the steady-state front cost independent of SQL
parsing; ``/batch`` scatters slices to every involved shard and merges
the per-item results; ``/stats`` aggregates all shards plus the front's
own request metrics.

Endpoints, status codes and error bodies mirror the sync tier
(:mod:`repro.server.app`) so :class:`repro.server.client.ServerClient`
works unchanged against either.
"""

from __future__ import annotations

import asyncio
import gc
import json
import logging
import socket
import threading
import time
from collections import Counter, OrderedDict, deque
from typing import Deque, Optional, Tuple

from repro.asyncserver import frames
from repro.asyncserver.config import AsyncServerConfig
from repro.asyncserver.supervisor import (
    WorkerCrashed,
    WorkerSupervisor,
    WorkerUnavailable,
)
from repro.server.metrics import ServerMetrics
from repro.service.fingerprint import query_fingerprint, shard_for_fingerprint
from repro.sql.binder import parse_query
from repro.sql.catalog import Catalog

logger = logging.getLogger("repro.asyncserver")

#: same request-size bound as the sync tier.
MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

KNOWN_PATHS = frozenset(
    {"/optimize", "/explain", "/batch", "/execute", "/healthz", "/stats", "/stats_update"}
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """An error response with the sync tier's ``{"error": {...}}`` body."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def body_bytes(self) -> bytes:
        return _error_bytes(self.code, self.message)


def _error_bytes(code: str, message: str) -> bytes:
    return json.dumps({"error": {"code": code, "message": message}}).encode("utf-8")


def _response_bytes(status: int, body: bytes, *, close: bool = False) -> bytes:
    # Backpressure statuses advertise a retry hint that ServerClient's
    # opt-in retry loop honours (mirrors the sync tier).
    retry_after = "Retry-After: 1\r\n" if status in (429, 503) else ""
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{retry_after}"
        f"{'Connection: close' + chr(13) + chr(10) if close else ''}"
        "\r\n"
    )
    return head.encode("latin-1") + body


def tune_gc_for_serving() -> None:
    """Latency-oriented GC posture for a **dedicated** serving process.

    Freezes the boot heap (catalog, caches — immortal anyway) out of the
    collector and makes full collections rare, so a gen-2 pass over
    thousands of plan nodes cannot stall the event loop mid-burst; the
    warm path allocates only small short-lived objects that gen-0
    handles.  Called by the worker processes, the ``serve --async`` CLI
    and the benchmark — NOT by the in-process test facade, which must
    leave its host process's GC alone.
    """
    gc.collect()
    gc.freeze()
    gc.set_threshold(50_000, 50, 100)


class AsyncPlanService:
    """Loop-side state: supervisor, route cache, admission, metrics."""

    def __init__(self, config: AsyncServerConfig):
        self.config = config
        self.supervisor = WorkerSupervisor(config)
        self.catalog = Catalog.from_tpch(scale_factor=config.scale_factor)
        self.metrics = ServerMetrics()
        self.inflight = 0
        self.draining = False
        self._idle: Optional[asyncio.Event] = None
        # SQL text → shard.  Bounded LRU; on a hit the front routes
        # without parsing at all.
        self._routes: "OrderedDict[str, int]" = OrderedDict()
        self._route_hits = 0
        self._route_misses = 0
        self.started = time.monotonic()

    async def start(self) -> None:
        self._idle = asyncio.Event()
        self._idle.set()
        await self.supervisor.start()

    # -- routing -------------------------------------------------------------
    def route(self, sql) -> int:
        """The shard owning *sql*'s structural fingerprint."""
        if not isinstance(sql, str) or not sql.strip():
            raise _HttpError(400, "bad_request", "'sql' must be a non-empty string")
        routes = self._routes
        shard = routes.get(sql)
        if shard is not None:
            self._route_hits += 1
            routes.move_to_end(sql)
            return shard
        self._route_misses += 1
        try:
            query = parse_query(sql, self.catalog)
        except ValueError as exc:
            raise _HttpError(400, "parse_error", str(exc)) from exc
        shard = shard_for_fingerprint(
            query_fingerprint(query), self.supervisor.shards
        )
        routes[sql] = shard
        if len(routes) > self.config.route_cache_capacity:
            routes.popitem(last=False)
        return shard

    # -- admission -----------------------------------------------------------
    def _admit(self) -> None:
        if self.draining:
            raise _HttpError(503, "draining", "server is draining; retry elsewhere")
        if self.inflight >= self.config.effective_max_inflight:
            raise _HttpError(
                429,
                "overloaded",
                f"too many in-flight requests (limit {self.config.effective_max_inflight})",
            )
        self.inflight += 1
        if self._idle is not None:
            self._idle.clear()

    def _release(self) -> None:
        self.inflight -= 1
        if self.inflight == 0 and self._idle is not None:
            self._idle.set()

    # -- endpoints -----------------------------------------------------------
    async def dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, bytes]:
        started = time.perf_counter()
        try:
            status, payload = await self._route_request(method, path, body)
        except _HttpError as error:
            status, payload = error.status, error.body_bytes()
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - the front must not die
            logger.exception("unhandled error on %s %s", method, path)
            status, payload = 500, _error_bytes(
                "internal", f"{type(error).__name__}: {error}"
            )
        endpoint = path if path in KNOWN_PATHS else "<other>"
        self.metrics.record_request(endpoint, status, time.perf_counter() - started)
        return status, payload

    async def _route_request(self, method, path, body) -> Tuple[int, bytes]:
        if path == "/optimize":
            self._require(method, "POST", path)
            return await self._plan_request(frames.OPTIMIZE, body)
        if path == "/explain":
            self._require(method, "POST", path)
            return await self._plan_request(frames.EXPLAIN, body)
        if path == "/execute":
            self._require(method, "POST", path)
            # Same fingerprint-routing as /optimize: the executing shard
            # is the one whose cache shard owns the plan.
            return await self._plan_request(frames.EXECUTE, body)
        if path == "/batch":
            self._require(method, "POST", path)
            return await self._batch_request(body)
        if path == "/stats":
            self._require(method, "GET", path)
            return 200, json.dumps(await self.stats_body()).encode("utf-8")
        if path == "/stats_update":
            self._require(method, "POST", path)
            return await self._stats_update_request(body)
        if path == "/healthz":
            self._require(method, "GET", path)
            status, payload = self.healthz_body()
            return status, json.dumps(payload).encode("utf-8")
        raise _HttpError(404, "not_found", f"no such endpoint: {path}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HttpError(
                405, "method_not_allowed", f"{path} expects {expected}, got {method}"
            )

    def _parse_body(self, body: bytes) -> dict:
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, "bad_json", f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "bad_json", "body must be a JSON object")
        return payload

    async def _plan_request(self, kind: int, body: bytes) -> Tuple[int, bytes]:
        self._admit()
        try:
            payload = self._parse_body(body)
            shard = self.route(payload.get("sql"))
            try:
                # Hard (budget + grace) timeout: the worker's cooperative
                # deadline fires at the budget and answers first, so this
                # expiring means the worker is wedged — kill it so the
                # supervisor's crash path restarts the shard.
                return await self.supervisor.request(
                    shard, kind, body, timeout=self.config.hard_timeout_seconds
                )
            except asyncio.TimeoutError:
                self.supervisor.worker(shard).reap("request hard-timeout")
                raise _HttpError(
                    504,
                    "timeout",
                    f"worker unresponsive past the "
                    f"{self.config.request_timeout_seconds}s budget plus grace"
                    " — request abandoned",
                ) from None
            except WorkerUnavailable as unavailable:
                raise _HttpError(
                    503, "shard_unavailable", str(unavailable)
                ) from unavailable
            except WorkerCrashed as crash:
                raise _HttpError(500, "worker_pool_failure", str(crash)) from crash
        finally:
            self._release()

    async def _batch_request(self, body: bytes) -> Tuple[int, bytes]:
        self._admit()
        try:
            payload = self._parse_body(body)
            queries = payload.get("queries")
            if not isinstance(queries, list):
                raise _HttpError(400, "bad_request", "'queries' must be a list")
            started = time.perf_counter()
            front_items = []  # items answered without a worker (parse errors)
            per_shard: dict = {}
            for index, sql in enumerate(queries):
                try:
                    shard = self.route(sql)
                except _HttpError as error:
                    front_items.append(
                        {"index": index, "error": error.message, "stage": "parse"}
                    )
                    continue
                per_shard.setdefault(shard, []).append([index, sql])

            passthrough = {
                key: payload[key]
                for key in ("strategy", "factor", "cost_model", "include_plans")
                if key in payload
            }

            async def one_shard(shard: int, chunk):
                request = dict(passthrough)
                request["queries"] = chunk
                try:
                    status, response = await self.supervisor.request(
                        shard,
                        frames.BATCH,
                        json.dumps(request).encode("utf-8"),
                        timeout=self.config.hard_timeout_seconds,
                    )
                except asyncio.TimeoutError:
                    self.supervisor.worker(shard).reap("batch hard-timeout")
                    return [
                        {
                            "index": index,
                            "error": "worker timeout",
                            "stage": "optimize",
                            "timeout": True,
                        }
                        for index, _sql in chunk
                    ]
                except WorkerUnavailable as unavailable:
                    return [
                        {
                            "index": index,
                            "error": str(unavailable),
                            "stage": "route",
                        }
                        for index, _sql in chunk
                    ]
                except WorkerCrashed:
                    return [
                        {
                            "index": index,
                            "error": "worker crashed while optimizing",
                            "stage": "optimize",
                        }
                        for index, _sql in chunk
                    ]
                if status != 200:
                    detail = json.loads(response).get("error", {}).get("message", "")
                    return [
                        {"index": index, "error": detail, "stage": "optimize"}
                        for index, _sql in chunk
                    ]
                return json.loads(response)["items"]

            shard_items = await asyncio.gather(
                *(one_shard(shard, chunk) for shard, chunk in per_shard.items())
            )
            items = front_items + [item for chunk in shard_items for item in chunk]
            items.sort(key=lambda item: item["index"])
            failed = sum(1 for item in items if "error" in item)
            cache_hits = sum(1 for item in items if item.get("cache_hit"))
            report = {
                "total": len(items),
                "succeeded": len(items) - failed,
                "failed": failed,
                "cache_hits": cache_hits,
                "wall_seconds": time.perf_counter() - started,
                "items": items,
            }
            return 200, json.dumps(report).encode("utf-8")
        finally:
            self._release()

    async def _stats_update_request(self, body: bytes) -> Tuple[int, bytes]:
        """``POST /stats_update`` — broadcast one statistics drift.

        Every shard owns a private catalog copy, so the delta goes to
        all of them (each marks its own entries stale and revalidates a
        bounded inline batch — an independent per-shard task).  The
        control plane takes no admission slot: drift must land even
        under 429 pressure.  Any shard rejecting the update (unknown
        table, bad body) fails the whole request with that shard's
        error, since a half-applied drift would leave shards planning
        under different statistics.
        """
        payload = self._parse_body(body)  # reject bad JSON before fan-out
        if not isinstance(payload.get("table"), str):
            raise _HttpError(400, "bad_request", "'table' must be a non-empty string")
        replies = await self.supervisor.broadcast(
            frames.STATS_UPDATE, json.dumps(payload).encode("utf-8")
        )
        shards: list = []
        for reply in replies:
            if reply is None:
                continue
            status, response = reply
            detail = json.loads(response)
            if status != 200:
                error = detail.get("error", {})
                raise _HttpError(
                    status,
                    error.get("code", "stats_update_failed"),
                    error.get("message", "shard rejected the statistics update"),
                )
            shards.append(detail)
        if not shards:
            raise _HttpError(503, "shard_unavailable", "no shard answered the update")
        merged = {
            key: shards[0].get(key)
            for key in (
                "relation",
                "old_cardinality",
                "new_cardinality",
                "cardinality_ratio",
                "distinct_changed",
            )
        }
        merged["shards"] = len(shards)
        merged["marked_stale"] = sum(s.get("marked_stale", 0) for s in shards)
        merged["stale_entries"] = sum(s.get("stale_entries", 0) for s in shards)
        inline: Counter = Counter()
        for shard in shards:
            inline.update(shard.get("revalidated_inline", {}))
        merged["revalidated_inline"] = dict(inline)
        return 200, json.dumps(merged).encode("utf-8")

    # -- introspection -------------------------------------------------------
    def healthz_body(self) -> Tuple[int, dict]:
        if self.draining:
            return 503, {"status": "draining", "inflight": self.inflight}
        return 200, {
            "status": "ok",
            "mode": "async",
            "shards": self.supervisor.shards,
            "strategy": self.config.strategy,
            "inflight": self.inflight,
        }

    async def stats_body(self) -> dict:
        """``GET /stats`` — front metrics + all shards, merged.

        Per-shard counters come from each worker's single-threaded
        snapshot, so no individual shard's numbers can tear; the merge
        is one pass over already-consistent snapshots.
        """
        replies = await self.supervisor.broadcast(frames.STATS, b"{}")
        details = [
            json.loads(payload)
            for reply in replies
            if reply is not None
            for status, payload in (reply,)
            if status == 200
        ]
        payload = self.metrics.snapshot()
        payload["mode"] = "async"
        payload["inflight"] = self.inflight
        payload["draining"] = self.draining
        payload["max_inflight"] = self.config.effective_max_inflight
        payload["shards"] = self.supervisor.shards
        payload["restarts"] = self.supervisor.total_restarts
        payload["supervision"] = self.supervisor.shard_states()
        payload["degradation"] = self.config.degradation
        payload["plans"] = _merge_plans(details)
        payload["executions"] = _merge_executions(details)
        payload["engine"] = {
            "requested": self.config.engine,
            "effective": payload["plans"]["by_engine"],
        }
        payload["persistence"] = self.supervisor.persistence
        payload["cache"] = _merge_caches(details)
        payload["route_cache"] = {
            "size": len(self._routes),
            "capacity": self.config.route_cache_capacity,
            "hits": self._route_hits,
            "misses": self._route_misses,
        }
        payload["shard_detail"] = details
        return payload

    # -- lifecycle -----------------------------------------------------------
    async def drain(self, grace: Optional[float] = None) -> bool:
        """Refuse new work, wait for in-flight, snapshot shards, stop.

        Idempotent; returns True when every in-flight request finished
        inside the grace period.
        """
        grace = self.config.drain_grace_seconds if grace is None else grace
        self.draining = True
        clean = True
        if self._idle is not None and self.inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=grace)
            except asyncio.TimeoutError:
                clean = False
        await self.supervisor.drain()
        return clean


def _merge_plans(details) -> dict:
    served = hits = misses = failures = degraded = timeouts = 0
    stale_served = recosted = replanned = 0
    by_strategy: Counter = Counter()
    by_engine: Counter = Counter()
    for detail in details:
        plans = detail.get("plans", {})
        served += plans.get("served", 0)
        hits += plans.get("cache_hits", 0)
        misses += plans.get("cache_misses", 0)
        failures += plans.get("failures", 0)
        degraded += plans.get("degraded", 0)
        timeouts += plans.get("timeouts", 0)
        stale_served += plans.get("stale_served", 0)
        recosted += plans.get("recosted", 0)
        replanned += plans.get("replanned", 0)
        by_strategy.update(plans.get("by_strategy", {}))
        by_engine.update(plans.get("by_engine", {}))
    return {
        "served": served,
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "failures": failures,
        "degraded": degraded,
        "timeouts": timeouts,
        "stale_served": stale_served,
        "recosted": recosted,
        "replanned": replanned,
        "by_strategy": dict(by_strategy),
        "by_engine": dict(by_engine),
    }


def _merge_executions(details) -> dict:
    """Sum the shards' /execute counters (per-shard detail keeps the rest)."""
    count = rows = 0
    seconds = 0.0
    by_executor: Counter = Counter()
    for detail in details:
        executions = detail.get("executions", {})
        count += executions.get("count", 0)
        rows += executions.get("rows_returned", 0)
        seconds += executions.get("seconds_total", 0.0)
        by_executor.update(executions.get("by_executor", {}))
    return {
        "count": count,
        "by_executor": dict(by_executor),
        "rows_returned": rows,
        "seconds_total": seconds,
        "mean_ms": (seconds / count) * 1000.0 if count else None,
    }


def _merge_caches(details) -> dict:
    merged: Counter = Counter()
    for detail in details:
        for key, value in (detail.get("cache") or {}).items():
            if isinstance(value, (int, float)):
                merged[key] += value
    if "hits" in merged or "misses" in merged:
        lookups = merged.get("hits", 0) + merged.get("misses", 0)
        merged["hit_rate"] = merged.get("hits", 0) / lookups if lookups else 0.0
    return dict(merged)


class _HttpConnection(asyncio.Protocol):
    """One keep-alive client connection on the front event loop.

    Minimal HTTP/1.1: request line + Content-Length framing, no chunked
    bodies.  Pipelined requests are dispatched **concurrently** (each
    fans out to its shard immediately, so one connection can keep every
    worker busy and the workers see batched frames) while responses are
    written strictly in request order — a per-connection FIFO of
    dispatch tasks that a single writer coroutine drains.
    """

    def __init__(self, service: AsyncPlanService):
        self.service = service
        self.transport: Optional[asyncio.Transport] = None
        self.buffer = bytearray()
        self._head: Optional[Tuple[str, str, int, bool]] = None
        self._responses: Deque[Tuple[asyncio.Task, bool]] = deque()
        self._writer: Optional[asyncio.Task] = None

    def connection_made(self, transport) -> None:
        self.transport = transport
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass

    def connection_lost(self, exc) -> None:
        if self._writer is not None:
            self._writer.cancel()
            self._writer = None
        for task, _close in self._responses:
            task.cancel()
        self._responses.clear()

    def data_received(self, data: bytes) -> None:
        self.buffer += data
        self._parse()

    # -- request framing -----------------------------------------------------
    def _parse(self) -> None:
        while True:
            if self._head is None:
                end = self.buffer.find(b"\r\n\r\n")
                if end < 0:
                    if len(self.buffer) > MAX_HEADER_BYTES:
                        self._reject(400, "bad_request", "request head too large")
                    return
                head = bytes(self.buffer[: end])
                del self.buffer[: end + 4]
                try:
                    self._head = self._parse_head(head)
                except _HttpError as error:
                    self._reject(error.status, error.code, error.message)
                    return
            method, path, length, close_after = self._head
            if length > MAX_BODY_BYTES:
                self._reject(413, "too_large", f"body exceeds {MAX_BODY_BYTES} bytes")
                return
            if len(self.buffer) < length:
                return
            body = bytes(self.buffer[:length])
            del self.buffer[:length]
            self._head = None
            task = asyncio.ensure_future(self.service.dispatch(method, path, body))
            self._responses.append((task, close_after))
            if self._writer is None:
                self._writer = asyncio.ensure_future(self._write_responses())

    @staticmethod
    def _parse_head(head: bytes) -> Tuple[str, str, int, bool]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise _HttpError(400, "bad_request", "undecodable head") from exc
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, "bad_request", f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        length = 0
        connection = ""
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if not sep:
                continue
            name = name.strip().lower()
            if name == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad_request", "bad Content-Length") from None
                if length < 0:
                    raise _HttpError(400, "bad_request", "bad Content-Length")
            elif name == "connection":
                connection = value.strip().lower()
        close_after = connection == "close" or version == "HTTP/1.0"
        return method, target.split("?", 1)[0], length, close_after

    def _reject(self, status: int, code: str, message: str) -> None:
        """Protocol-level failure: answer and close (resync impossible)."""
        if self.transport is not None and not self.transport.is_closing():
            self.transport.write(
                _response_bytes(status, _error_bytes(code, message), close=True)
            )
            self.transport.close()

    # -- response loop -------------------------------------------------------
    async def _write_responses(self) -> None:
        try:
            while self._responses:
                task, close_after = self._responses.popleft()
                status, payload = await task
                transport = self.transport
                if transport is None or transport.is_closing():
                    return
                transport.write(_response_bytes(status, payload, close=close_after))
                if close_after:
                    transport.close()
                    return
        finally:
            self._writer = None


class AsyncPlanServer:
    """The async daemon: supervisor + event-loop HTTP front.

    Two usage styles:

    * **async** (the CLI): ``await server.async_start()`` inside a
      running loop, later ``await server.async_drain()``.
    * **sync facade** (tests, parity with the sync
      :class:`~repro.server.app.PlanServer`)::

          with AsyncPlanServer(AsyncServerConfig(port=0, shards=2)) as server:
              ...  # server.port, server.url
              server.drain()

      which hosts a private event loop in a background thread.
    """

    def __init__(self, config: Optional[AsyncServerConfig] = None):
        self.config = config if config is not None else AsyncServerConfig()
        self.service = AsyncPlanService(self.config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._done: Optional[asyncio.Future] = None

    # -- addressing ----------------------------------------------------------
    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("server not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- async API -----------------------------------------------------------
    async def async_start(self) -> "AsyncPlanServer":
        await self.service.start()
        loop = asyncio.get_running_loop()
        self._server = await loop.create_server(
            lambda: _HttpConnection(self.service), self.config.host, self.config.port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        logger.info(
            "%s",
            json.dumps(
                {
                    "event": "start",
                    "mode": "async",
                    "url": self.url,
                    "shards": self.service.supervisor.shards,
                    "max_inflight": self.config.effective_max_inflight,
                    "cache_dir": self.config.cache_dir,
                }
            ),
        )
        return self

    async def async_drain(self, grace: Optional[float] = None) -> bool:
        """Graceful stop: 503 new work, finish in-flight, snapshot, exit."""
        clean = await self.service.drain(grace)
        await self.async_close()
        logger.info(
            "%s",
            json.dumps(
                {
                    "event": "drain",
                    "clean": clean,
                    "persistence": self.service.supervisor.persistence,
                }
            ),
        )
        return clean

    async def async_close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.supervisor.kill()

    # -- sync facade (background-thread event loop) --------------------------
    def start(self) -> "AsyncPlanServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-async-plan-server", daemon=True
        )
        self._thread.start()
        boot_budget = self.config.worker_boot_seconds + 30.0
        if not self._ready.wait(timeout=boot_budget):
            raise RuntimeError(f"async server failed to boot within {boot_budget}s")
        if self._startup_error is not None:
            self._join()
            raise RuntimeError("async server failed to start") from self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()
                self._loop = None

    async def _main(self) -> None:
        self._done = asyncio.get_running_loop().create_future()
        try:
            await self.async_start()
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            self._startup_error = error
            await self.async_close()
            self._ready.set()
            return
        self._ready.set()
        await self._done

    def _finish(self) -> None:
        if self._done is not None and not self._done.done():
            self._done.set_result(None)

    def _join(self) -> None:
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def drain(self, grace: Optional[float] = None) -> bool:
        """Sync-facade graceful stop (mirrors ``PlanServer.drain``)."""
        loop = self._loop
        if loop is None or self._thread is None:
            return True

        async def _do() -> bool:
            try:
                return await self.async_drain(grace)
            finally:
                self._finish()

        timeout = (grace if grace is not None else self.config.drain_grace_seconds)
        clean = asyncio.run_coroutine_threadsafe(_do(), loop).result(
            timeout=timeout + self.config.request_timeout_seconds + 30.0
        )
        self._join()
        return clean

    def close(self) -> None:
        """Sync-facade immediate stop (idempotent)."""
        loop = self._loop
        if loop is None or self._thread is None:
            return

        async def _do() -> None:
            try:
                await self.async_close()
            finally:
                self._finish()

        asyncio.run_coroutine_threadsafe(_do(), loop).result(timeout=30.0)
        self._join()

    def __enter__(self) -> "AsyncPlanServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
