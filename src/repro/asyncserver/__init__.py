"""The async serving tier: event-loop front, sharded worker processes.

Replaces thread-per-connection serving (:mod:`repro.server`) with one
asyncio event loop that routes each request by structural fingerprint to
a worker *process* owning a private plan-cache shard — no cross-process
lock on the warm path — plus shard snapshot/warm-start persistence and
crash-restart supervision.  Start it with::

    python -m repro serve --async --shards 4 --cache-dir /var/cache/repro

or in-process::

    from repro.asyncserver import AsyncPlanServer, AsyncServerConfig

    with AsyncPlanServer(AsyncServerConfig(port=0, shards=2)) as server:
        ...                     # same HTTP surface as the sync tier
        server.drain()          # snapshot shards + graceful stop
"""

from repro.asyncserver.app import AsyncPlanServer, AsyncPlanService, tune_gc_for_serving
from repro.asyncserver.config import AsyncServerConfig, default_shards
from repro.asyncserver.supervisor import WorkerCrashed, WorkerSupervisor

__all__ = [
    "AsyncPlanServer",
    "AsyncPlanService",
    "AsyncServerConfig",
    "WorkerCrashed",
    "WorkerSupervisor",
    "default_shards",
    "tune_gc_for_serving",
]
