"""Fault injection for robustness tests — disabled unless armed via env.

The chaos layer lets the test suite (and the CI ``chaos-smoke`` job)
inject failures at the exact seams the serving tiers are supposed to
survive: worker crashes, worker hangs, pathologically slow planning,
snapshot corruption, and dropped response frames.  It is **test-build
plumbing only**: every hook is a no-op unless the ``REPRO_CHAOS``
environment variable is set to a truthy value in the process (worker
subprocesses inherit the server's environment), so production paths pay
one cached ``os.environ`` read.

Faults are *marker-driven*, not process-global: a hook fires only for
requests whose SQL (or query) carries a marker substring, so a clean
follow-up query through the same worker behaves normally — which is
exactly what the recovery tests assert.  SQL table aliases survive
binding as ``RelationInfo.name``, so markers written as aliases
(``FROM nation chaos_slow_200 JOIN ...``) are visible both to the
serving tiers (raw SQL) and to the optimizer driver (query relations).

Markers:

* ``chaos_crash`` — the worker process exits hard (``os._exit``) before
  planning, simulating a segfault/OOM kill.
* ``chaos_hang``  — the worker sleeps for ``REPRO_CHAOS_HANG_SECONDS``
  (default 3600) before planning, simulating a wedged worker.
* ``chaos_slow`` / ``chaos_slow_<ms>`` — planning sleeps ``<ms>``
  (default 100) at every deadline check point inside the DP loop,
  simulating a query whose enumeration outruns its budget.  Only fires
  while a deadline is armed, so the heuristic fallback run stays fast.
* ``chaos_drop`` — the async worker swallows the request frame and
  never responds, simulating a lost frame (the front times out).

Snapshot damage is request-independent and armed separately via
``REPRO_CHAOS_SNAPSHOT=truncate|corrupt``: the next snapshot written is
truncated / bit-flipped in place, so the following warm start must
refuse it and cold-start.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Optional

CRASH_MARKER = "chaos_crash"
HANG_MARKER = "chaos_hang"
SLOW_MARKER = "chaos_slow"
DROP_MARKER = "chaos_drop"

#: Exit code used by injected crashes, so supervisors/tests can tell a
#: chaos kill from a real fault.
CRASH_EXIT_CODE = 23

_DEFAULT_SLOW_MS = 100.0


def enabled() -> bool:
    """True when fault injection is armed in this process."""
    value = os.environ.get("REPRO_CHAOS", "")
    return value not in ("", "0", "false", "no")


def _hang_seconds() -> float:
    try:
        return float(os.environ.get("REPRO_CHAOS_HANG_SECONDS", "3600"))
    except ValueError:
        return 3600.0


def before_request(text: str) -> None:
    """Crash/hang injection point — call with the raw SQL before planning.

    No-op unless chaos is armed and *text* carries a marker.
    """
    if not enabled() or not text:
        return
    if CRASH_MARKER in text:
        os._exit(CRASH_EXIT_CODE)
    if HANG_MARKER in text:
        time.sleep(_hang_seconds())


def should_drop(payload: bytes) -> bool:
    """True when an async worker should swallow this request frame."""
    return enabled() and DROP_MARKER.encode() in payload


def planning_delay(relation_names: Iterable[str]) -> Optional[float]:
    """Per-deadline-check sleep (seconds) for a query, or None.

    ``chaos_slow_250`` → 0.25s per check; bare ``chaos_slow`` → 0.1s.
    The driver applies the delay only at deadline check points, so the
    injected slowness is scoped to the budgeted run.
    """
    if not enabled():
        return None
    for name in relation_names:
        if SLOW_MARKER not in name:
            continue
        suffix = name.rsplit(SLOW_MARKER, 1)[1].lstrip("_")
        try:
            return float(suffix) / 1000.0 if suffix else _DEFAULT_SLOW_MS / 1000.0
        except ValueError:
            return _DEFAULT_SLOW_MS / 1000.0
    return None


def damage_snapshot(path: str) -> Optional[str]:
    """Apply the armed snapshot fault to *path*; returns the fault name.

    ``REPRO_CHAOS_SNAPSHOT=truncate`` cuts the file roughly in half;
    ``corrupt`` flips one bit mid-file.  Either way the snapshot's
    checksum validation must reject it on the next warm start.
    """
    if not enabled():
        return None
    mode = os.environ.get("REPRO_CHAOS_SNAPSHOT", "")
    if mode not in ("truncate", "corrupt"):
        return None
    try:
        size = os.path.getsize(path)
    except OSError:
        return None
    if size < 2:
        return None
    if mode == "truncate":
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
    else:
        offset = size // 2
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0x40]))
    return mode
