"""Load CSV/Parquet files into :class:`~repro.data.tables.ColumnTable`.

CSV loading is stdlib-only (:mod:`csv`) with per-column type inference:
a column whose non-empty cells all parse as ``int`` becomes an int
column, else all-``float`` becomes float, else the cells stay strings.
Empty cells load as SQL ``NULL``.  Inference is two-pass over the
buffered cells, so a column that starts numeric but contains one
string stays a string column throughout — no mixed lanes.

Parquet loading needs :mod:`pyarrow`, which this environment may not
ship; the import is gated and the error says exactly what is missing
rather than failing on an unrelated ``AttributeError`` later.

``load_directory`` assembles a :class:`Dataset` from every recognised
file in a directory (``<table>.csv`` / ``<table>.parquet``), and
``load_dataset_into`` additionally registers measured statistics with a
:class:`~repro.sql.catalog.Catalog` so cost-based planning prices real
row counts instead of spec estimates.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.values import NULL, SqlValue
from repro.data.tables import ColumnTable, Dataset
from repro.sql.catalog import Catalog

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow.parquet as _parquet  # type: ignore
except ImportError:  # pragma: no cover
    _parquet = None

HAVE_PYARROW = _parquet is not None


def _infer_column(cells: List[Optional[str]]) -> List[SqlValue]:
    """Type a raw text column: all-int → int, all-float → float, else str."""
    non_null = [c for c in cells if c is not None]
    as_int: Optional[List[int]] = []
    for cell in non_null:
        try:
            as_int.append(int(cell))
        except ValueError:
            as_int = None
            break
    if as_int is not None:
        it = iter(as_int)
        return [NULL if c is None else next(it) for c in cells]
    as_float: Optional[List[float]] = []
    for cell in non_null:
        try:
            as_float.append(float(cell))
        except ValueError:
            as_float = None
            break
    if as_float is not None:
        it = iter(as_float)
        return [NULL if c is None else next(it) for c in cells]
    return [NULL if c is None else c for c in cells]


def load_csv(path: str, name: Optional[str] = None, delimiter: str = ",") -> ColumnTable:
    """Read a header-first CSV file into a typed :class:`ColumnTable`."""
    table_name = name or os.path.splitext(os.path.basename(path))[0]
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"CSV file {path!r} is empty (no header row)")
        if len(set(header)) != len(header):
            raise ValueError(f"CSV file {path!r} has duplicate column names: {header}")
        raw: List[List[Optional[str]]] = [[] for _ in header]
        for line_no, record in enumerate(reader, start=2):
            if len(record) != len(header):
                raise ValueError(
                    f"CSV file {path!r} line {line_no}: expected {len(header)} "
                    f"fields, got {len(record)}"
                )
            for column, cell in zip(raw, record):
                column.append(cell if cell != "" else None)
    columns = {attr: _infer_column(cells) for attr, cells in zip(header, raw)}
    return ColumnTable(table_name, columns)


def write_csv(table: ColumnTable, path: str, delimiter: str = ",") -> None:
    """Write a :class:`ColumnTable` as a header-first CSV (NULL → empty)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.attributes)
        value_lists = [table.column(attr) for attr in table.attributes]
        for record in zip(*value_lists):
            writer.writerow(["" if v is NULL else v for v in record])


def load_parquet(path: str, name: Optional[str] = None) -> ColumnTable:
    """Read a Parquet file into a :class:`ColumnTable` (requires pyarrow)."""
    if _parquet is None:
        raise RuntimeError(
            "Parquet loading requires the optional 'pyarrow' dependency, "
            "which is not installed; convert the file to CSV and use "
            "load_csv, or install pyarrow."
        )
    table_name = name or os.path.splitext(os.path.basename(path))[0]
    arrow = _parquet.read_table(path)
    columns: Dict[str, List[SqlValue]] = {}
    for field_name in arrow.schema.names:
        values = arrow.column(field_name).to_pylist()
        columns[field_name] = [NULL if v is None else v for v in values]
    return ColumnTable(table_name, columns)


_LOADERS: Tuple[Tuple[str, object], ...] = (
    (".csv", load_csv),
    (".parquet", load_parquet),
)


def load_file(path: str, name: Optional[str] = None) -> ColumnTable:
    """Dispatch on extension: ``.csv`` or ``.parquet``."""
    for suffix, loader in _LOADERS:
        if path.endswith(suffix):
            return loader(path, name)
    raise ValueError(
        f"unsupported data file {path!r} (expected one of: "
        f"{', '.join(s for s, _ in _LOADERS)})"
    )


def load_directory(directory: str, name: Optional[str] = None) -> Dataset:
    """Every ``<table>.csv`` / ``<table>.parquet`` in *directory* → Dataset."""
    tables: Dict[str, ColumnTable] = {}
    for entry in sorted(os.listdir(directory)):
        path = os.path.join(directory, entry)
        if not os.path.isfile(path):
            continue
        if not any(entry.endswith(suffix) for suffix, _ in _LOADERS):
            continue
        table = load_file(path)
        if table.name in tables:
            raise ValueError(f"duplicate table {table.name!r} in {directory!r}")
        tables[table.name] = table
    if not tables:
        raise ValueError(f"no .csv or .parquet files found in {directory!r}")
    return Dataset(tables, name=name or os.path.basename(os.path.normpath(directory)))


def load_dataset_into(
    catalog: Catalog,
    directory: str,
    name: Optional[str] = None,
    keys: Optional[Mapping[str, Sequence]] = None,
) -> Dataset:
    """Load a directory and register measured stats with *catalog*."""
    dataset = load_directory(directory, name=name)
    dataset.register_stats(catalog, keys={k.lower(): tuple(v) for k, v in (keys or {}).items()})
    return dataset
