"""Dataset provisioning: turn a ``--dataset`` spec into tables in memory.

One spec grammar shared by both serving tiers and the CLI:

* ``tpch-sf<scale>`` — generate the deterministic scaled TPC-H dataset
  (:func:`repro.tpch.datagen.scaled_dataset`), e.g. ``tpch-sf0.01``.
  Generation is seeded per table, so every process that asks for the
  same spec holds byte-identical data — the async tier's worker shards
  each provision their own copy and stay consistent without shipping
  rows over the wire.
* a directory path — load every ``.csv``/``.parquet`` file in it
  (:func:`repro.data.loader.load_directory`), one table per file.
"""

from __future__ import annotations

import os
import re

from repro.data.tables import Dataset

#: ``tpch-sf0.01`` / ``tpch-sf1`` — the generated-TPC-H spec form.
_TPCH_SPEC = re.compile(r"^tpch-sf(?P<scale>[0-9]*\.?[0-9]+)$")


def validate_dataset_spec(spec: str) -> str:
    """Check *spec*'s shape without provisioning anything (cheap, eager).

    Lets server configs reject a typo at construction time — provisioning
    itself (generation / file loading) stays deferred to the process that
    will actually serve the data.  Returns the normalised spec.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("dataset spec must be a non-empty string")
    spec = spec.strip()
    match = _TPCH_SPEC.match(spec.lower())
    if match:
        scale = float(match.group("scale"))
        if not 0 < scale <= 1:
            raise ValueError(f"tpch-sf scale must be in (0, 1], got {scale:g}")
        return spec
    if os.path.isdir(spec):
        return spec
    raise ValueError(
        f"unknown dataset spec {spec!r} — use 'tpch-sf<scale>' (e.g. tpch-sf0.01) "
        "or a directory of .csv/.parquet files"
    )


def dataset_from_spec(spec: str) -> Dataset:
    """Resolve *spec* (``tpch-sf<scale>`` or a directory) into a Dataset."""
    spec = validate_dataset_spec(spec)
    match = _TPCH_SPEC.match(spec.lower())
    if match:
        from repro.tpch.datagen import scaled_dataset

        return scaled_dataset(float(match.group("scale")))
    from repro.data.loader import load_directory

    return load_directory(spec)
