"""Columnar-native tables and datasets for the execution tier.

A :class:`ColumnTable` holds one base table column-major under *bare*
column names (``"n_name"``).  Query plans reference *qualified*
attributes (``"ns.n_name"``), so a table serves scans through cheap
:meth:`ColumnTable.view` objects that re-label the shared value lists —
no copying per alias, no row materialisation until an interpreter-backed
execution asks for one.

A :class:`Dataset` is a named collection of tables plus the resolution
logic from a query's :class:`~repro.query.spec.RelationInfo` entries to
scan sources (by ``source_table``, by name, or — for hand-built aliased
queries — by column-set matching), and the bridge into the optimizer:
:meth:`Dataset.register_stats` prices the cost model with *measured*
row counts and distinct counts instead of spec-derived estimates.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.relation import Relation
from repro.algebra.rows import Row
from repro.algebra.values import NULL, SqlValue, group_key
from repro.exec.columns import Batch, Column
from repro.sql.catalog import Catalog, TableStats


class ColumnTable:
    """One base table, column-major, with cached row-view conversion."""

    __slots__ = ("name", "attributes", "_columns", "length", "_relation")

    def __init__(self, name: str, columns: Mapping[str, List[SqlValue]]):
        self.name = name
        self.attributes: Tuple[str, ...] = tuple(columns.keys())
        self._columns: Dict[str, List[SqlValue]] = dict(columns)
        lengths = {len(values) for values in self._columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns for table {name!r}: lengths {sorted(lengths)}")
        self.length = lengths.pop() if lengths else 0
        self._relation: Optional[Relation] = None

    @classmethod
    def from_relation(cls, name: str, relation: Relation) -> "ColumnTable":
        columns = {
            attr: [row[attr] for row in relation.rows] for attr in relation.attributes
        }
        return cls(name, columns)

    def __len__(self) -> int:
        return self.length

    def column(self, name: str) -> List[SqlValue]:
        return self._columns[name]

    # -- executor adapters ---------------------------------------------------
    def as_batch(self) -> Batch:
        columns = {attr: Column(values) for attr, values in self._columns.items()}
        return Batch(self.attributes, columns, self.length)

    def to_relation(self) -> Relation:
        if self._relation is None:
            value_lists = [self._columns[attr] for attr in self.attributes]
            rows = [
                Row(dict(zip(self.attributes, values))) for values in zip(*value_lists)
            ]
            self._relation = Relation(self.attributes, rows)
        return self._relation

    def view(self, attributes: Sequence[str]) -> "ColumnTable":
        """Re-label columns under qualified names, sharing the value lists.

        Each attribute resolves to the bare column after its last ``"."``
        (``"ns.n_name"`` → ``"n_name"``); unqualified names resolve as
        themselves.
        """
        columns: Dict[str, List[SqlValue]] = {}
        for attr in attributes:
            bare = attr.rsplit(".", 1)[-1]
            source = self._columns.get(attr, self._columns.get(bare))
            if source is None:
                raise KeyError(
                    f"table {self.name!r} has no column for attribute {attr!r} "
                    f"(columns: {', '.join(self.attributes)})"
                )
            columns[attr] = source
        return ColumnTable(self.name, columns)

    # -- statistics ----------------------------------------------------------
    def stats(self, keys: Tuple = ()) -> TableStats:
        """Measured statistics: true cardinality and distinct counts."""
        distinct = {
            attr: float(len({group_key(v) for v in values}))
            for attr, values in self._columns.items()
        }
        return TableStats(
            self.name,
            self.attributes,
            float(self.length),
            distinct,
            tuple(keys),
        )

    def null_fraction(self, column: str) -> float:
        values = self._columns[column]
        if not values:
            return 0.0
        return sum(1 for v in values if v is NULL) / len(values)

    def __repr__(self) -> str:
        return f"ColumnTable({self.name!r}, {len(self.attributes)} cols, {self.length} rows)"


class Dataset:
    """Named tables + query-relation resolution + catalog registration."""

    def __init__(self, tables: Mapping[str, ColumnTable], name: str = "dataset"):
        self.name = name
        self.tables: Dict[str, ColumnTable] = {
            table_name.lower(): table for table_name, table in tables.items()
        }

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.tables

    def table(self, name: str) -> ColumnTable:
        return self.tables[name.lower()]

    def register_stats(self, catalog: Catalog, keys: Optional[Mapping[str, Tuple]] = None) -> None:
        """Register every table's *measured* statistics with *catalog*."""
        keys = keys or {}
        for table in self.tables.values():
            catalog.register(table.stats(keys=tuple(keys.get(table.name.lower(), ()))))

    def resolve(self, rel) -> ColumnTable:
        """The base table backing a query :class:`RelationInfo`."""
        source = rel.source_table.lower()
        if source in self.tables:
            return self.tables[source]
        if rel.name.lower() in self.tables:
            return self.tables[rel.name.lower()]
        # Hand-built aliased relations (name == alias, no source): match
        # by bare column set, the same way tpch.queries._table_of does.
        wanted = sorted(a.rsplit(".", 1)[-1] for a in rel.attributes)
        for table in self.tables.values():
            if sorted(table.attributes) == wanted:
                return table
        raise KeyError(
            f"dataset {self.name!r} has no table for relation {rel.name!r} "
            f"(source {rel.source_table!r})"
        )

    def database_for(self, query) -> Dict[str, ColumnTable]:
        """A scan-source mapping for every relation of *query*."""
        return {rel.name: self.resolve(rel).view(rel.attributes) for rel in query.relations}

    def total_rows(self) -> int:
        return sum(table.length for table in self.tables.values())

    def __repr__(self) -> str:
        return f"Dataset({self.name!r}, {len(self.tables)} tables, {self.total_rows()} rows)"
