"""Data tier: columnar base tables, datasets, and file loading.

The execution tier (:mod:`repro.exec`) consumes these through the
scan-source protocol (``as_batch()`` / ``to_relation()``); the
optimizer consumes them through measured :class:`~repro.sql.catalog.TableStats`.
"""

from repro.data.loader import (
    HAVE_PYARROW,
    load_csv,
    load_dataset_into,
    load_directory,
    load_file,
    load_parquet,
    write_csv,
)
from repro.data.provision import dataset_from_spec
from repro.data.tables import ColumnTable, Dataset

__all__ = [
    "ColumnTable",
    "Dataset",
    "HAVE_PYARROW",
    "dataset_from_spec",
    "load_csv",
    "load_dataset_into",
    "load_directory",
    "load_file",
    "load_parquet",
    "write_csv",
]
