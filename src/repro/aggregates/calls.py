"""Single aggregate-function applications and their evaluation semantics.

Evaluation follows SQL-92:

* ``count(*)`` counts rows (including rows where everything is NULL),
* ``count(e)`` counts rows where *e* is not NULL (this *is* the paper's
  ``countNN`` — SQL's ``count`` with an argument already ignores NULLs),
* ``sum``/``min``/``max``/``avg`` ignore NULL inputs and return NULL for
  empty (or all-NULL) input,
* ``distinct`` deduplicates the non-NULL argument values first.

Classification (paper Sec. 2.1):

* *duplicate agnostic* (Yan & Larson's class D): min, max and all
  ``distinct`` variants; everything else is *duplicate sensitive* (class C),
* *decomposable*: min, max, sum, count, count(*), avg (via sum/countNN);
  ``sum(distinct)``, ``count(distinct)`` and ``avg(distinct)`` are not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from repro.algebra.expressions import Expr
from repro.algebra.rows import Row
from repro.algebra.values import NULL, SqlValue, group_key, is_null


class AggKind(enum.Enum):
    """The SQL aggregate functions supported throughout the repository."""

    COUNT_STAR = "count(*)"
    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggCall:
    """One aggregate function applied to an argument expression."""

    kind: AggKind
    arg: Optional[Expr] = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.kind is AggKind.COUNT_STAR:
            if self.arg is not None:
                raise ValueError("count(*) takes no argument")
            if self.distinct:
                raise ValueError("count(*) cannot be distinct")
        elif self.arg is None:
            raise ValueError(f"{self.kind.value} requires an argument")

    # -- static properties --------------------------------------------------
    def attributes(self) -> FrozenSet[str]:
        """Attributes referenced by the argument (``F(f)``)."""
        if self.arg is None:
            return frozenset()
        return self.arg.attributes()

    @property
    def duplicate_agnostic(self) -> bool:
        """Class-D functions: result independent of input multiplicities."""
        if self.kind in (AggKind.MIN, AggKind.MAX):
            return True
        return self.distinct

    @property
    def duplicate_sensitive(self) -> bool:
        return not self.duplicate_agnostic

    @property
    def decomposable(self) -> bool:
        """Whether agg(X ∪ Y) can be computed from agg1(X), agg1(Y) (Def. 2)."""
        if self.distinct and self.kind in (AggKind.SUM, AggKind.COUNT, AggKind.AVG):
            return False
        return True

    # -- evaluation -----------------------------------------------------------
    def evaluate(self, rows: Iterable[Row]) -> SqlValue:
        """Apply this aggregate to a group of rows."""
        if self.kind is AggKind.COUNT_STAR:
            return sum(1 for _ in rows)
        values = self._argument_values(rows)
        if self.kind is AggKind.COUNT:
            return len(values)
        if not values:
            return NULL
        if self.kind is AggKind.SUM:
            return sum(values)
        if self.kind is AggKind.MIN:
            return min(values)
        if self.kind is AggKind.MAX:
            return max(values)
        if self.kind is AggKind.AVG:
            return sum(values) / len(values)
        raise AssertionError(f"unhandled aggregate kind {self.kind}")

    def _argument_values(self, rows: Iterable[Row]) -> List[SqlValue]:
        assert self.arg is not None
        values = [v for v in (self.arg.eval(row) for row in rows) if not is_null(v)]
        if self.distinct:
            seen = set()
            unique: List[SqlValue] = []
            for v in values:
                key = group_key(v)
                if key not in seen:
                    seen.add(key)
                    unique.append(v)
            return unique
        return values

    def evaluate_on_null_tuple(self) -> SqlValue:
        """``f({⊥})`` — the aggregate applied to a single all-NULL tuple.

        Needed to compute the default vectors of the generalised outerjoins
        (Eqvs. 11/12/14/...): ``count(*)`` yields 1, ``count(e)`` yields 0,
        sum/min/max/avg yield NULL, and ⊗-scaled counts of the form
        ``sum(CASE WHEN e IS NULL THEN 0 ELSE c END)`` yield 0 — all of which
        fall out of simply evaluating the call on the singleton bag {⊥}.
        """
        bottom = Row({a: NULL for a in self.attributes()})
        return self.evaluate([bottom])

    def __repr__(self) -> str:
        if self.kind is AggKind.COUNT_STAR:
            return "count(*)"
        inner = f"distinct {self.arg!r}" if self.distinct else repr(self.arg)
        return f"{self.kind.value}({inner})"


# -- readable constructors ---------------------------------------------------

def _as_expr(arg) -> Expr:
    from repro.algebra.expressions import Attr

    if isinstance(arg, Expr):
        return arg
    return Attr(str(arg))


def sum_(arg, distinct: bool = False) -> AggCall:
    """``sum(arg)`` / ``sum(distinct arg)``."""
    return AggCall(AggKind.SUM, _as_expr(arg), distinct)


def count(arg, distinct: bool = False) -> AggCall:
    """``count(arg)`` (the paper's countNN) / ``count(distinct arg)``."""
    return AggCall(AggKind.COUNT, _as_expr(arg), distinct)


def count_star() -> AggCall:
    """``count(*)``."""
    return AggCall(AggKind.COUNT_STAR)


def min_(arg) -> AggCall:
    """``min(arg)``."""
    return AggCall(AggKind.MIN, _as_expr(arg))


def max_(arg) -> AggCall:
    """``max(arg)``."""
    return AggCall(AggKind.MAX, _as_expr(arg))


def avg(arg, distinct: bool = False) -> AggCall:
    """``avg(arg)`` / ``avg(distinct arg)``."""
    return AggCall(AggKind.AVG, _as_expr(arg), distinct)
