"""Decomposition (Def. 2) and duplicate scaling ``F ⊗ c`` (Sec. 2.1.3).

These two transformations are the algebraic core of eager aggregation:

* **Decomposition** splits an aggregate into an *inner* stage, evaluated in a
  pushed-down grouping, and an *outer* stage, evaluated further up over the
  inner stage's result column:

  ===========  =================  ==================
  aggregate    inner stage        outer stage
  ===========  =================  ==================
  sum(e)       s := sum(e)        sum(s)
  count(*)     c := count(*)      sum(c)
  count(e)     c := count(e)      sum(c)
  min(e)       m := min(e)        min(m)
  max(e)       m := max(e)        max(m)
  avg(e)       — normalised to (sum, countNN) + final division first —
  ===========  =================  ==================

  ``sum(distinct)``, ``count(distinct)`` and ``avg(distinct)`` are *not*
  decomposable and therefore block pushdown on their own side.

* **Scaling** ``f ⊗ c`` adjusts a duplicate-sensitive aggregate for the fact
  that a grouping on the *other* join side collapsed ``c`` duplicates into a
  single row carrying a ``count(*)`` column:

  ==============  ========================================================
  aggregate       scaled form
  ==============  ========================================================
  agnostic        unchanged (min, max, distinct)
  sum(e)          sum(e * c)
  count(*)        sum(c)
  count(e)        sum(CASE WHEN e IS NULL THEN 0 ELSE c END)
  avg(e)          — normalised away before scaling is ever required —
  ==============  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra.expressions import Attr, BinOp, Case, Const, Expr, IsNull


class NotDecomposableError(ValueError):
    """Raised when an aggregate that cannot be decomposed would need to be."""


class NotScalableError(ValueError):
    """Raised when an aggregate cannot be ⊗-scaled (only avg; normalise it)."""


# ---------------------------------------------------------------------------
# avg normalisation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NormalizedVector:
    """Result of replacing ``avg`` by (sum, countNN) plus a final division.

    ``vector`` contains no plain ``avg`` calls; ``post`` lists the scalar
    projections (name, expression over vector output columns) that rebuild
    every original output — identity references for non-avg aggregates.
    """

    vector: AggVector
    post: Tuple[Tuple[str, Expr], ...]


def normalize_avg(vector: AggVector) -> NormalizedVector:
    """Rewrite every plain ``avg(e)`` as ``sum(e) / countNN(e)``.

    ``avg(distinct)`` is left alone: it is duplicate agnostic (never needs
    scaling) and not decomposable (never pushed down on its own side), so it
    can always be evaluated directly.
    """
    items: List[AggItem] = []
    post: List[Tuple[str, Expr]] = []
    for item in vector:
        call = item.call
        if call.kind is AggKind.AVG and not call.distinct:
            sum_name = f"{item.name}#s"
            cnt_name = f"{item.name}#c"
            items.append(AggItem(sum_name, AggCall(AggKind.SUM, call.arg)))
            items.append(AggItem(cnt_name, AggCall(AggKind.COUNT, call.arg)))
            post.append((item.name, BinOp("/", Attr(sum_name), Attr(cnt_name))))
        else:
            items.append(item)
            post.append((item.name, Attr(item.name)))
    return NormalizedVector(AggVector(items), tuple(post))


# ---------------------------------------------------------------------------
# decomposition
# ---------------------------------------------------------------------------

def decompose_call(call: AggCall, inner_name: str) -> Tuple[AggCall, AggCall]:
    """Return ``(inner, outer)`` stages; *inner_name* is the inner column.

    Raises :class:`NotDecomposableError` for distinct sums/counts/avgs and
    for plain ``avg`` (which must be normalised first).
    """
    if not call.decomposable:
        raise NotDecomposableError(f"{call!r} is not decomposable")
    if call.kind is AggKind.AVG:
        raise NotDecomposableError(f"{call!r} must be normalised to sum/count before decomposition")
    column = Attr(inner_name)
    if call.kind in (AggKind.SUM, AggKind.COUNT, AggKind.COUNT_STAR):
        return call, AggCall(AggKind.SUM, column)
    if call.kind is AggKind.MIN:
        return call, AggCall(AggKind.MIN, column)
    if call.kind is AggKind.MAX:
        return call, AggCall(AggKind.MAX, column)
    raise AssertionError(f"unhandled aggregate kind {call.kind}")


@dataclass(frozen=True)
class VectorDecomposition:
    """``F`` decomposed into inner stage ``F¹`` and outer stage ``F²``.

    The outer vector produces exactly the original output names, evaluated
    over the inner vector's columns.
    """

    inner: AggVector
    outer: AggVector


def decompose_vector(vector: AggVector, suffix: str = "'") -> VectorDecomposition:
    """Decompose every aggregate of *vector*; inner columns get *suffix*."""
    inner_items: List[AggItem] = []
    outer_items: List[AggItem] = []
    for item in vector:
        inner_name = item.name + suffix
        inner, outer = decompose_call(item.call, inner_name)
        inner_items.append(AggItem(inner_name, inner))
        outer_items.append(AggItem(item.name, outer))
    return VectorDecomposition(AggVector(inner_items), AggVector(outer_items))


# ---------------------------------------------------------------------------
# duplicate scaling (⊗)
# ---------------------------------------------------------------------------

def _count_product(count_attrs: Sequence[str]) -> Expr:
    product: Expr = Attr(count_attrs[0])
    for name in count_attrs[1:]:
        product = BinOp("*", product, Attr(name))
    return product


def scale_call(call: AggCall, count_attrs: Sequence[str]) -> AggCall:
    """``f ⊗ c`` for ``c`` = the product of *count_attrs* (Sec. 2.1.3)."""
    if not count_attrs:
        return call
    if call.duplicate_agnostic:
        return call
    if call.kind is AggKind.AVG:
        raise NotScalableError("normalise avg to sum/count before scaling")
    c = _count_product(count_attrs)
    if call.kind is AggKind.COUNT_STAR:
        return AggCall(AggKind.SUM, c)
    assert call.arg is not None
    if call.kind is AggKind.SUM:
        return AggCall(AggKind.SUM, BinOp("*", call.arg, c))
    if call.kind is AggKind.COUNT:
        return AggCall(AggKind.SUM, Case(IsNull(call.arg), Const(0), c))
    raise AssertionError(f"unhandled aggregate kind {call.kind}")


def scale_vector(vector: AggVector, count_attrs: Sequence[str]) -> AggVector:
    """``F ⊗ c`` applied item-wise (names preserved)."""
    return AggVector(AggItem(item.name, scale_call(item.call, count_attrs)) for item in vector)


# ---------------------------------------------------------------------------
# single-row finalisation (top-grouping elimination, Eqv. 42)
# ---------------------------------------------------------------------------

def single_row_expr(call: AggCall) -> Expr:
    """``f({t})`` as a scalar expression over the single tuple *t*.

    Used by Eqv. 42 to replace a top grouping whose groups are guaranteed to
    be singletons by a map operator: ``sum(e) → e``, ``count(*) → 1``,
    ``count(e) → CASE WHEN e IS NULL THEN 0 ELSE 1``, ``min/max/avg(e) → e``.
    """
    if call.kind is AggKind.COUNT_STAR:
        return Const(1)
    assert call.arg is not None
    if call.kind is AggKind.COUNT:
        return Case(IsNull(call.arg), Const(0), Const(1))
    # sum / min / max / avg of a single value is the value itself (NULL for
    # NULL input, which matches SQL's empty-group semantics used here).
    return call.arg


def default_values(vector: AggVector) -> dict:
    """``F({⊥})`` plus nothing else — the outerjoin default vector payload."""
    return vector.evaluate_on_null_tuple()
