"""Aggregate functions and their algebraic properties (paper Sec. 2.1).

The package provides:

* :class:`~repro.aggregates.calls.AggCall` — a single aggregate function
  application (``sum(a)``, ``count(*)``, ``avg(distinct b)``, ...) together
  with its *duplicate sensitivity* and *decomposability* classification,
* :class:`~repro.aggregates.vector.AggVector` — an ordered aggregation
  vector ``F`` with splitting (Def. 1) into ``F1 ◦ F2``,
* :mod:`~repro.aggregates.transform` — decomposition of ``F`` into inner and
  outer stages ``F¹ / F²`` (Def. 2), the duplicate-scaling operator
  ``F ⊗ c`` (Sec. 2.1.3), and the default vector ``F({⊥})`` evaluation used
  by the generalised outerjoins.
"""

from repro.aggregates.calls import AggCall, AggKind, avg, count, count_star, max_, min_, sum_
from repro.aggregates.vector import AggItem, AggVector
from repro.aggregates import transform

__all__ = [
    "AggCall",
    "AggKind",
    "AggItem",
    "AggVector",
    "transform",
    "sum_",
    "count",
    "count_star",
    "min_",
    "max_",
    "avg",
]
