"""Aggregation vectors ``F = (b1 : f1, ..., bk : fk)`` and splitting (Def. 1).

An :class:`AggVector` is an ordered sequence of named aggregate calls.  The
paper concatenates vectors with ``◦`` (here: :meth:`AggVector.concat`) and
splits ``F`` into ``F1 ◦ F2`` with respect to two expressions when every
aggregate references attributes of only one of them.  ``count(*)`` is the
special case S1: it references no attributes and may go to either side (we
put it on a caller-chosen preferred side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.aggregates.calls import AggCall
from repro.algebra.rows import Row
from repro.algebra.values import SqlValue


@dataclass(frozen=True)
class AggItem:
    """A named aggregate: output attribute ``name`` holding ``call``."""

    name: str
    call: AggCall

    def __repr__(self) -> str:
        return f"{self.name}:{self.call!r}"


class AggVector:
    """An ordered aggregation vector."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[AggItem] = ()):
        self.items: Tuple[AggItem, ...] = tuple(items)
        names = [item.name for item in self.items]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate output names in aggregation vector: {names}")

    # -- basic protocol ------------------------------------------------------
    def __iter__(self) -> Iterator[AggItem]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggVector):
            return NotImplemented
        return self.items == other.items

    def __repr__(self) -> str:
        return "F[" + ", ".join(repr(item) for item in self.items) + "]"

    # -- structure -------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Output attribute names, in order."""
        return tuple(item.name for item in self.items)

    def attributes(self) -> FrozenSet[str]:
        """``F(F)`` — all attributes referenced by any aggregate argument."""
        result: FrozenSet[str] = frozenset()
        for item in self.items:
            result |= item.call.attributes()
        return result

    def concat(self, other: "AggVector") -> "AggVector":
        """Vector concatenation ``F1 ◦ F2``."""
        return AggVector(self.items + other.items)

    @property
    def all_decomposable(self) -> bool:
        return all(item.call.decomposable for item in self.items)

    @property
    def all_duplicate_agnostic(self) -> bool:
        return all(item.call.duplicate_agnostic for item in self.items)

    # -- splitting (Def. 1) ------------------------------------------------------
    def split(
        self,
        attrs1: FrozenSet[str] | set,
        attrs2: FrozenSet[str] | set,
        star_side: int = 1,
    ) -> Optional[Tuple["AggVector", "AggVector"]]:
        """Split into ``(F1, F2)`` w.r.t. attribute sets of two expressions.

        Returns ``None`` when some aggregate references attributes from both
        sides (not splittable).  ``count(*)`` — and any aggregate over a
        constant — goes to side *star_side* (special case S1).
        """
        attrs1 = frozenset(attrs1)
        attrs2 = frozenset(attrs2)
        left: List[AggItem] = []
        right: List[AggItem] = []
        for item in self.items:
            referenced = item.call.attributes()
            if not referenced:
                (left if star_side == 1 else right).append(item)
            elif referenced <= attrs1:
                left.append(item)
            elif referenced <= attrs2:
                right.append(item)
            else:
                return None
        return AggVector(left), AggVector(right)

    def splittable(self, attrs1: FrozenSet[str] | set, attrs2: FrozenSet[str] | set) -> bool:
        """Whether :meth:`split` would succeed."""
        return self.split(attrs1, attrs2) is not None

    # -- evaluation ---------------------------------------------------------------
    def evaluate(self, rows: List[Row]) -> Dict[str, SqlValue]:
        """Apply every aggregate to the group *rows*."""
        return {item.name: item.call.evaluate(rows) for item in self.items}

    def evaluate_on_null_tuple(self) -> Dict[str, SqlValue]:
        """``F({⊥})`` for default vectors of generalised outerjoins."""
        return {item.name: item.call.evaluate_on_null_tuple() for item in self.items}
