"""Constructive implementations of the paper's equivalences (Sec. 3, Fig. 3).

:mod:`repro.rewrites.pushdown` builds the *specification* of an eager
aggregation step — the pushed-down (inner) grouping, the adjusted (outer)
aggregation vector, and the outerjoin default vectors.  The specification is
shared between two consumers:

* :mod:`repro.rewrites.eager` applies it directly to relations, giving an
  executable right-hand side for every equivalence (Eqvs. 10–41) — this is
  what the property-based tests validate against the left-hand sides;
* the plan generator (:mod:`repro.optimizer`) uses the same builder to
  construct eager plans inside dynamic programming.

:mod:`repro.rewrites.top_elimination` implements Eqv. 42.
"""

from repro.rewrites.pushdown import GroupPushdown, OpKind, plan_pushdown
from repro.rewrites import eager, top_elimination

__all__ = ["GroupPushdown", "OpKind", "plan_pushdown", "eager", "top_elimination"]
