"""Specification builder for a single eager-aggregation step.

Given the grouping attributes and the split aggregation vector, this module
computes everything the equivalences of Fig. 3 need:

* the pushed-down grouping ``Γ_{G_i^+; F_i^1 ∘ (c_i : count(*))}``,
* the adjusted outer vector ``(F_j ⊗ c_i) ∘ F_i^2``,
* the default vector ``F_i^1({⊥}), c_i : 1`` for generalised outerjoins.

The builder is deliberately independent of relations *and* of plan nodes so
that the algebra-level rewrites (:mod:`repro.rewrites.eager`) and the DP
plan generator share one implementation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.aggregates.transform import (
    NotDecomposableError,
    decompose_vector,
    scale_vector,
)
from repro.aggregates.vector import AggItem, AggVector
from repro.aggregates.calls import AggCall, AggKind
from repro.algebra.values import SqlValue


class OpKind(enum.Enum):
    """Binary operators eligible for eager aggregation (Fig. 3)."""

    INNER = "join"
    LEFT_OUTER = "left-outerjoin"
    FULL_OUTER = "full-outerjoin"
    LEFT_SEMI = "semijoin"
    LEFT_ANTI = "antijoin"
    GROUPJOIN = "groupjoin"

    @property
    def commutative(self) -> bool:
        return self in (OpKind.INNER, OpKind.FULL_OUTER)

    @property
    def left_only(self) -> bool:
        """Operators whose output exposes only left-side attributes.

        For these, grouping can only ever be pushed into the left argument
        (Fig. 3, block *Others*).
        """
        return self in (OpKind.LEFT_SEMI, OpKind.LEFT_ANTI, OpKind.GROUPJOIN)


@dataclass(frozen=True)
class GroupPushdown:
    """A fully specified eager-aggregation step for one join side.

    Attributes:
        side: 1 when the grouping is pushed into the left argument, else 2.
        group_attrs: the pushed grouping's attributes ``G_i^+``.
        inner: the pushed grouping's aggregation vector
            (``F_i^1`` possibly extended by ``c_i : count(*)``).
        outer: the replacement vector for the grouping above the join
            (``(F_j ⊗ c_i) ∘ F_i^2`` — names match the original outputs).
        count_attr: name of the introduced count column, or ``None`` when no
            duplicate-sensitive aggregate on the other side requires scaling.
        defaults: default vector for the grouped side's new columns, used to
            pad unmatched tuples of the *other* side in generalised
            outerjoins (``F_i^1({⊥})`` plus ``c_i : 1``).
    """

    side: int
    group_attrs: Tuple[str, ...]
    inner: AggVector
    outer: AggVector
    count_attr: Optional[str]
    defaults: Dict[str, SqlValue]


def plan_pushdown(
    group_attrs: Sequence[str],
    pushed_vector: AggVector,
    other_vector: AggVector,
    side: int,
    suffix: str = "'",
    count_attr: Optional[str] = None,
) -> Optional[GroupPushdown]:
    """Build the pushdown spec, or ``None`` when the rewrite is invalid.

    Args:
        group_attrs: ``G_i^+`` — the grouping attributes of the pushed
            grouping (grouping attributes of side *i* plus all join
            attributes of side *i* still needed above).
        pushed_vector: ``F_i`` — the aggregates whose arguments live on the
            pushed side (must be decomposable; plain ``avg`` must have been
            normalised away beforehand).
        other_vector: ``F_j`` — the remaining aggregates, to be ⊗-scaled.
        side: 1 (left) or 2 (right); recorded in the spec.
        suffix: appended to output names to form inner column names.
        count_attr: name for the ``count(*)`` column; a default is derived
            from *side* when omitted.

    Invalidity causes (→ ``None``): a non-decomposable aggregate in
    ``pushed_vector``, or a plain ``avg`` anywhere (callers normalise first).
    """
    if side not in (1, 2):
        raise ValueError("side must be 1 or 2")
    for item in other_vector:
        if item.call.kind is AggKind.AVG and not item.call.distinct:
            return None  # must be normalised to sum/countNN first
    try:
        decomposition = decompose_vector(pushed_vector, suffix=suffix)
    except NotDecomposableError:
        return None

    needs_count = any(item.call.duplicate_sensitive for item in other_vector)
    count_name: Optional[str] = None
    inner = decomposition.inner
    if needs_count:
        count_name = count_attr or f"c{side}#"
        inner = inner.concat(AggVector([AggItem(count_name, AggCall(AggKind.COUNT_STAR))]))

    scaled_other = scale_vector(other_vector, [count_name] if count_name else [])
    outer = scaled_other.concat(decomposition.outer)

    defaults: Dict[str, SqlValue] = dict(decomposition.inner.evaluate_on_null_tuple())
    if count_name is not None:
        defaults[count_name] = 1

    return GroupPushdown(
        side=side,
        group_attrs=tuple(group_attrs),
        inner=inner,
        outer=outer,
        count_attr=count_name,
        defaults=defaults,
    )


def pushdown_valid_for(op: OpKind, side: int) -> bool:
    """Which sides an eager grouping may be pushed into, per operator.

    Inner and full outerjoins accept both sides (Eqvs. 10–15), the left
    outerjoin accepts both (Eqvs. 11/14 — the right side via defaults), and
    the left-only operators (semijoin, antijoin, groupjoin) accept only the
    left argument (Eqvs. 37–41).
    """
    if side == 1:
        return True
    return not op.left_only
