"""Eliminating the top grouping (Sec. 3.2, Eqv. 42).

``Γ_{G;F}(e) ≡ Π_C(χ_{F̂}(e))`` holds whenever *G* contains a key of *e* and
*e* is duplicate-free: every group is then a singleton, and each aggregate
reduces to a scalar expression over the single tuple (``sum(a) → a``,
``count(*) → 1``, ``count(a) → CASE WHEN a IS NULL THEN 0 ELSE 1 END`` ...).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.aggregates.transform import single_row_expr
from repro.aggregates.vector import AggVector
from repro.algebra import operators as ops
from repro.algebra.expressions import Expr
from repro.algebra.relation import Relation


def singleton_group_extensions(vector: AggVector) -> List[Tuple[str, Expr]]:
    """The map vector ``F̂`` of Eqv. 42: one scalar expression per aggregate."""
    return [(item.name, single_row_expr(item.call)) for item in vector]


def eliminate_top_grouping(
    rel: Relation, group_attrs: Sequence[str], vector: AggVector
) -> Relation:
    """Apply ``Π_C(χ_{F̂}(e))`` — the right-hand side of Eqv. 42.

    The caller is responsible for the precondition (G ⊇ some key of *e* and
    *e* duplicate-free); in the optimizer this is exactly the negation of
    ``NeedsGrouping`` (Fig. 7).
    """
    extended = ops.map_(rel, singleton_group_extensions(vector))
    return ops.project(extended, tuple(group_attrs) + vector.names())
