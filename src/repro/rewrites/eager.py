"""Executable right-hand sides for the equivalences of Fig. 3.

Every function takes the *ingredients* of the left-hand side
``Γ_{G;F}(e1 ∘q e2)`` and evaluates the corresponding eager-aggregation
right-hand side on concrete relations.  The property-based test-suite then
asserts LHS ≡ RHS for random inputs — which is how this repository validates
the paper's equivalences (including the appendix proofs) computationally.

The functions return ``None`` when an equivalence's preconditions
(splittability / decomposability / operator-side combination) do not hold.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.aggregates.calls import AggCall, AggKind
from repro.aggregates.transform import (
    NotDecomposableError,
    decompose_vector,
    normalize_avg,
    scale_vector,
)
from repro.aggregates.vector import AggItem, AggVector
from repro.algebra import operators as ops
from repro.algebra.expressions import Expr
from repro.algebra.relation import Relation
from repro.rewrites.pushdown import GroupPushdown, OpKind, plan_pushdown, pushdown_valid_for


def apply_operator(
    op: OpKind,
    e1: Relation,
    e2: Relation,
    predicate: Expr,
    groupjoin_vector: Optional[AggVector] = None,
    left_defaults: Optional[dict] = None,
    right_defaults: Optional[dict] = None,
) -> Relation:
    """Evaluate ``e1 ∘_q e2`` for any operator of Fig. 1."""
    if op is OpKind.INNER:
        return ops.join(e1, e2, predicate)
    if op is OpKind.LEFT_OUTER:
        return ops.left_outerjoin(e1, e2, predicate, defaults=right_defaults)
    if op is OpKind.FULL_OUTER:
        return ops.full_outerjoin(
            e1, e2, predicate, left_defaults=left_defaults, right_defaults=right_defaults
        )
    if op is OpKind.LEFT_SEMI:
        return ops.semijoin(e1, e2, predicate)
    if op is OpKind.LEFT_ANTI:
        return ops.antijoin(e1, e2, predicate)
    if op is OpKind.GROUPJOIN:
        if groupjoin_vector is None:
            raise ValueError("groupjoin requires its own aggregation vector")
        return ops.groupjoin(e1, e2, predicate, groupjoin_vector)
    raise AssertionError(f"unhandled operator {op}")


def lazy_groupby(
    op: OpKind,
    e1: Relation,
    e2: Relation,
    predicate: Expr,
    group_attrs: Sequence[str],
    vector: AggVector,
    groupjoin_vector: Optional[AggVector] = None,
) -> Relation:
    """The left-hand side ``Γ_{G;F}(e1 ∘q e2)`` of every equivalence."""
    joined = apply_operator(op, e1, e2, predicate, groupjoin_vector)
    return ops.group_by(joined, group_attrs, vector)


def _output_attrs(
    op: OpKind, e1: Relation, e2: Relation, groupjoin_vector: Optional[AggVector]
) -> Tuple[frozenset, frozenset]:
    """Attribute sets (A1, A2) *visible in the operator output* per side."""
    a1 = frozenset(e1.attributes)
    if op is OpKind.GROUPJOIN:
        assert groupjoin_vector is not None
        return a1, frozenset(groupjoin_vector.names())
    if op.left_only:
        return a1, frozenset()
    return a1, frozenset(e2.attributes)


def _split_for_side(
    vector: AggVector,
    attrs1: frozenset,
    attrs2: frozenset,
    side: int,
) -> Optional[Tuple[AggVector, AggVector]]:
    """Split F into (pushed, other) for the given side (count(*) → pushed)."""
    split = vector.split(attrs1, attrs2, star_side=side)
    if split is None:
        return None
    f1, f2 = split
    return (f1, f2) if side == 1 else (f2, f1)


def eager_groupby(
    op: OpKind,
    e1: Relation,
    e2: Relation,
    predicate: Expr,
    group_attrs: Sequence[str],
    vector: AggVector,
    side: int,
    groupjoin_vector: Optional[AggVector] = None,
) -> Optional[Relation]:
    """Right-hand side with the grouping pushed into one argument.

    Implements the *Eager/Lazy Groupby-Count* family (Eqvs. 10–15) and all
    its specialisations (Group-by, Count, Others) — the specialisations are
    exactly the cases where parts of the construction collapse, and
    :func:`repro.rewrites.pushdown.plan_pushdown` performs those collapses
    automatically (no count column when no duplicate-sensitive aggregate on
    the other side, empty inner/outer stage parts, ...).

    Returns ``None`` when the equivalence is not applicable.
    """
    if not pushdown_valid_for(op, side):
        return None

    normalized = normalize_avg(vector)
    work_vector = normalized.vector

    attrs1, attrs2 = _output_attrs(op, e1, e2, groupjoin_vector)
    split = _split_for_side(work_vector, attrs1, attrs2, side)
    if split is None:
        return None
    pushed_vector, other_vector = split

    group_set = frozenset(group_attrs)
    if not group_set <= attrs1 | attrs2:
        raise ValueError("grouping attributes must come from the operator output")
    join_attrs = predicate.attributes()
    g_plus = tuple(a for a in (e1 if side == 1 else e2).attributes if a in (group_set | join_attrs))

    spec = plan_pushdown(g_plus, pushed_vector, other_vector, side=side)
    if spec is None:
        return None

    result = _apply_spec(op, e1, e2, predicate, spec, groupjoin_vector)
    grouped = ops.group_by(result, tuple(group_attrs), spec.outer)
    return _finalize(grouped, tuple(group_attrs), normalized)


def eager_split(
    op: OpKind,
    e1: Relation,
    e2: Relation,
    predicate: Expr,
    group_attrs: Sequence[str],
    vector: AggVector,
) -> Optional[Relation]:
    """*Eager/Lazy Split* (Eqvs. 34–36): push the grouping into both sides.

    Direct construction: with ``F`` split into ``F1/F2`` and both parts
    decomposed, the top vector becomes ``(F1² ⊗ c2) ∘ (F2² ⊗ c1)``; for the
    full outerjoin both sides carry default vectors
    ``F_i^{1}({⊥}), c_i : 1`` (Eqv. 36).
    """
    if op.left_only:
        return None

    normalized = normalize_avg(vector)
    work_vector = normalized.vector

    attrs1, attrs2 = _output_attrs(op, e1, e2, None)
    split = work_vector.split(attrs1, attrs2, star_side=1)
    if split is None:
        return None
    f1, f2 = split

    group_set = frozenset(group_attrs)
    join_attrs = predicate.attributes()
    g1_plus = tuple(a for a in e1.attributes if a in (group_set | join_attrs))
    g2_plus = tuple(a for a in e2.attributes if a in (group_set | join_attrs))

    try:
        dec1 = decompose_vector(f1, suffix="'")
        dec2 = decompose_vector(f2, suffix="''")
    except NotDecomposableError:
        return None

    c1, c2 = "c1#", "c2#"
    need_c1 = any(item.call.duplicate_sensitive for item in dec2.outer)
    need_c2 = any(item.call.duplicate_sensitive for item in dec1.outer)
    inner1 = dec1.inner
    if need_c1:
        inner1 = inner1.concat(AggVector([AggItem(c1, AggCall(AggKind.COUNT_STAR))]))
    inner2 = dec2.inner
    if need_c2:
        inner2 = inner2.concat(AggVector([AggItem(c2, AggCall(AggKind.COUNT_STAR))]))

    outer = scale_vector(dec1.outer, [c2] if need_c2 else []).concat(
        scale_vector(dec2.outer, [c1] if need_c1 else [])
    )

    left_defaults = dict(dec1.inner.evaluate_on_null_tuple())
    if need_c1:
        left_defaults[c1] = 1
    right_defaults = dict(dec2.inner.evaluate_on_null_tuple())
    if need_c2:
        right_defaults[c2] = 1

    grouped1 = ops.group_by(e1, g1_plus, inner1)
    grouped2 = ops.group_by(e2, g2_plus, inner2)

    if op is OpKind.INNER:
        joined = ops.join(grouped1, grouped2, predicate)
    elif op is OpKind.LEFT_OUTER:
        joined = ops.left_outerjoin(grouped1, grouped2, predicate, defaults=right_defaults)
    elif op is OpKind.FULL_OUTER:
        joined = ops.full_outerjoin(
            grouped1, grouped2, predicate,
            left_defaults=left_defaults, right_defaults=right_defaults,
        )
    else:  # pragma: no cover - excluded above
        raise AssertionError(op)

    grouped = ops.group_by(joined, tuple(group_attrs), outer)
    return _finalize(grouped, tuple(group_attrs), normalized)


def _apply_spec(
    op: OpKind,
    e1: Relation,
    e2: Relation,
    predicate: Expr,
    spec: GroupPushdown,
    groupjoin_vector: Optional[AggVector],
) -> Relation:
    """Evaluate the join with one side replaced by its eager grouping."""
    if spec.side == 1:
        grouped = ops.group_by(e1, spec.group_attrs, spec.inner)
        if op is OpKind.FULL_OUTER:
            return ops.full_outerjoin(grouped, e2, predicate, left_defaults=spec.defaults)
        return apply_operator(op, grouped, e2, predicate, groupjoin_vector)
    grouped = ops.group_by(e2, spec.group_attrs, spec.inner)
    if op is OpKind.LEFT_OUTER:
        return ops.left_outerjoin(e1, grouped, predicate, defaults=spec.defaults)
    if op is OpKind.FULL_OUTER:
        return ops.full_outerjoin(e1, grouped, predicate, right_defaults=spec.defaults)
    return apply_operator(op, e1, grouped, predicate, groupjoin_vector)


def _finalize(grouped: Relation, group_attrs: Tuple[str, ...], normalized) -> Relation:
    """Apply avg-reconstruction post projections and restore output schema.

    The avg outputs are *new* columns computed from the hidden ``name#s`` /
    ``name#c`` columns; all other outputs already exist under their original
    names and simply pass through the final projection.
    """
    existing = set(grouped.attributes)
    new_cols = [(name, expr) for name, expr in normalized.post if name not in existing]
    result = ops.map_(grouped, new_cols) if new_cols else grouped
    return ops.project(result, group_attrs + tuple(name for name, _ in normalized.post))
