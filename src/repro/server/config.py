"""`ServerConfig` — the plan server's knobs, validated eagerly.

The same philosophy as :class:`~repro.optimizer.config.OptimizerConfig`:
one frozen value object instead of scattered kwargs, rejected at
construction rather than at first use.  The optimizer-facing fields
(strategy, factor, cost model, cache capacity) derive an
``OptimizerConfig`` via :meth:`ServerConfig.optimizer_config`; the rest
shape the HTTP front end (bind address, worker processes, admission
limit, timeouts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.optimizer.config import OptimizerConfig
from repro.service.batch import default_workers


@dataclass(frozen=True)
class ServerConfig:
    """Immutable plan-server settings.

    ``workers`` — optimizer processes behind the HTTP threads.  ``None``
    auto-sizes like the batch driver; ``0`` runs optimization inside the
    request thread (no pool — handy for tests and tiny deployments, but
    CPU-bound requests then serialise on the GIL).  ``max_inflight``
    bounds admitted-but-unfinished requests across *all* endpoints that
    optimize; excess requests are rejected with 429 (``None`` derives
    ``2 * workers + 8``).  ``request_timeout_seconds`` caps one request's
    planning budget: the remaining budget (minus any time already spent
    in the request) is armed as a cooperative deadline inside the worker,
    and ``degradation`` decides what a blown budget returns —
    ``"heuristic"`` a cheap greedy plan marked ``degraded: true`` (HTTP
    200), ``"error"`` an HTTP 504.  A hard wait of
    :attr:`hard_timeout_seconds` (budget + grace) backstops wedged
    workers.  ``drain_grace_seconds`` is how long a SIGTERM drain waits
    for in-flight requests before giving up.

    ``recost_bound`` / ``revalidate_workers`` / ``snapshot_band_width``
    shape the stale-while-revalidate path: how far a re-costed stale
    plan may regress past the cheap-replan reference before full
    re-enumeration, how many background revalidation threads drain the
    stale backlog, and (optionally) the log10 band width for banded
    cache keys so nearby statistics snapshots share entries.

    ``dataset`` enables ``POST /execute``: a
    :func:`~repro.data.provision.dataset_from_spec` spec
    (``tpch-sf0.01`` or a directory of data files) loaded at boot and
    executed against; ``default_executor`` is the backend used when a
    request names none (``"columnar"`` — the serving-oriented one).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: Optional[int] = None
    max_inflight: Optional[int] = None
    scale_factor: float = 1.0
    strategy: str = "ea-prune"
    factor: float = 1.03
    cost_model: str = "cout"
    engine: str = "indexed"
    cache_capacity: Optional[int] = 512
    request_timeout_seconds: float = 120.0
    drain_grace_seconds: float = 10.0
    degradation: str = "heuristic"
    recost_bound: float = 2.0
    revalidate_workers: int = 1
    snapshot_band_width: Optional[float] = None
    dataset: Optional[str] = None
    default_executor: str = "columnar"

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port must be in [0, 65535] (0 = ephemeral), got {self.port}")
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0 (0 = in-thread), got {self.workers}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.scale_factor <= 0:
            raise ValueError(f"scale_factor must be > 0, got {self.scale_factor}")
        if self.request_timeout_seconds <= 0:
            raise ValueError(
                f"request_timeout_seconds must be > 0, got {self.request_timeout_seconds}"
            )
        if self.drain_grace_seconds < 0:
            raise ValueError(
                f"drain_grace_seconds must be >= 0, got {self.drain_grace_seconds}"
            )
        if self.degradation not in ("heuristic", "error"):
            raise ValueError(
                f"degradation must be 'heuristic' or 'error', got {self.degradation!r}"
            )
        if self.revalidate_workers < 1:
            raise ValueError(
                f"revalidate_workers must be >= 1, got {self.revalidate_workers}"
            )
        from repro.exec import EXECUTORS

        if self.default_executor not in EXECUTORS:
            raise ValueError(
                f"default_executor must be one of {', '.join(EXECUTORS)}, "
                f"got {self.default_executor!r}"
            )
        if self.dataset is not None:
            from repro.data.provision import validate_dataset_spec

            validate_dataset_spec(self.dataset)
        # Validate the optimizer-facing fields eagerly, like everything else.
        self.optimizer_config()

    def optimizer_config(self) -> OptimizerConfig:
        """The session-level optimizer settings this server plans under."""
        return OptimizerConfig(
            strategy=self.strategy,
            factor=self.factor,
            cost_model=self.cost_model,
            engine=self.engine,
            workers=None,  # the server owns its own process pool
            cache_capacity=self.cache_capacity,
            degradation=self.degradation,
            snapshot_band_width=self.snapshot_band_width,
            recost_bound=self.recost_bound,
        )

    @property
    def hard_timeout_seconds(self) -> float:
        """The hard wait on a worker before declaring it wedged (504).

        The cooperative deadline inside the worker fires at
        ``request_timeout_seconds``; the grace margin lets a degraded
        (or 504-bound) answer travel back before the pool wait gives up,
        so the hard timeout only triggers for genuinely stuck workers.
        """
        return self.request_timeout_seconds + max(
            2.0, 0.25 * self.request_timeout_seconds
        )

    @property
    def effective_workers(self) -> int:
        """The worker-pool size (0 = optimize in the request thread)."""
        return self.workers if self.workers is not None else default_workers()

    @property
    def effective_max_inflight(self) -> int:
        """The admission bound actually enforced."""
        if self.max_inflight is not None:
            return self.max_inflight
        return 2 * max(1, self.effective_workers) + 8
