"""The HTTP front end: `ThreadingHTTPServer` routing into `PlanService`.

JSON over HTTP, stdlib only::

    POST /optimize   {"sql": ..., "strategy"?, "factor"?, "cost_model"?, "include_plan"?}
    POST /batch      {"queries": [...], ..., "include_plans"?}
    POST /explain    {"sql": ..., ...}
    POST /execute    {"sql": ..., "executor"?, "limit"?, ...}
    POST /stats_update {"table": ..., "cardinality_factor" | "cardinality"}
    GET  /stats
    GET  /healthz

Each connection gets an I/O thread (``ThreadingHTTPServer``); CPU-bound
optimization runs in the service's process pool, so threads mostly park
on futures.  Admission is bounded — one slot per in-flight optimizing
request, 429 when full, 503 once draining.  Every exchange emits one
structured JSON log line on the ``repro.server`` logger.

:class:`PlanServer` wraps the socket server with a background serve
thread and a graceful :meth:`~PlanServer.drain` (stop admitting → wait
for in-flight work → shut the socket down), which is what ``python -m
repro serve`` hangs off SIGTERM.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import urlsplit

from repro.api.session import PlannerSession
from repro.server.config import ServerConfig
from repro.server.service import PlanService, RequestError

logger = logging.getLogger("repro.server")

#: largest accepted request body; protects the JSON parser from abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: the routable paths; anything else is metered under one "<other>"
#: bucket so arbitrary client paths cannot grow the metrics dict.
KNOWN_PATHS = (
    "/optimize", "/batch", "/explain", "/execute", "/stats", "/stats_update", "/healthz",
)


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes one exchange into the service and serialises the outcome."""

    server_version = "repro-plan-server/1.0"
    protocol_version = "HTTP/1.1"
    # Responses are two small writes (headers, body); with Nagle on, the
    # second write stalls ~40ms behind the peer's delayed ACK, putting a
    # hard floor under warm-cache latency.
    disable_nagle_algorithm = True

    # The service hangs off the socket server (see _PlanHTTPServer).
    @property
    def service(self) -> PlanService:
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST")

    def _handle(self, method: str) -> None:
        # The whole exchange — routing, response send, metrics record —
        # counts against wait_idle(), so a drain cannot close the socket
        # under a response that is still being written (see
        # PlanService.track_exchange).
        with self.service.track_exchange():
            self._exchange(method)

    def _exchange(self, method: str) -> None:
        import time

        started = time.perf_counter()
        path = urlsplit(self.path).path.rstrip("/") or "/"
        status, payload = 500, {"error": {"code": "internal", "message": "unhandled"}}
        try:
            # Consume the body up front even for requests about to be
            # rejected (429/404/...): unread body bytes would be parsed as
            # the next request line on this keep-alive connection.
            raw = self._read_body_bytes() if method == "POST" else b""
            status, payload = self._route(method, path, raw)
        except RequestError as error:
            status, payload = error.status, error.to_body()
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            status, payload = 400, {
                "error": {"code": "bad_json", "message": f"invalid JSON body: {error}"}
            }
        except ConnectionError:  # client went away mid-exchange
            return
        except Exception as error:  # noqa: BLE001 - the daemon must not die
            logger.exception("unhandled error serving %s %s", method, path)
            status, payload = 500, {
                "error": {"code": "internal", "message": f"{type(error).__name__}: {error}"}
            }
        elapsed = time.perf_counter() - started
        self._send(status, payload)
        metered_path = path if path in KNOWN_PATHS else "<other>"
        self.service.metrics.record_request(f"{method} {metered_path}", status, elapsed)
        logger.info(
            "%s",
            json.dumps(
                {
                    "event": "request",
                    "method": method,
                    "path": path,
                    "status": status,
                    "ms": round(elapsed * 1000.0, 3),
                    "client": self.client_address[0],
                    "cache_hit": payload.get("cache_hit") if isinstance(payload, dict) else None,
                    "error": (payload.get("error") or {}).get("code")
                    if isinstance(payload, dict)
                    else None,
                }
            ),
        )

    def _route(self, method: str, path: str, raw: bytes) -> Tuple[int, dict]:
        service = self.service
        if method == "GET":
            if path == "/healthz":
                return service.healthz_body()
            if path == "/stats":
                return 200, service.stats_body()
            if path in ("/optimize", "/batch", "/explain", "/execute"):
                raise RequestError(405, "method_not_allowed", f"POST {path} (not GET)")
            raise RequestError(404, "not_found", f"unknown path {path!r}")
        if method == "POST":
            if path == "/optimize":
                with service.admit():
                    return 200, service.optimize_body(self._parse_json(raw))
            if path == "/batch":
                with service.admit():
                    return 200, service.batch_body(self._parse_json(raw))
            if path == "/explain":
                with service.admit():
                    return 200, service.explain_body(self._parse_json(raw))
            if path == "/execute":
                # Execution is CPU-bound in the request thread, so it
                # takes an admission slot like optimization does.
                with service.admit():
                    return 200, service.execute_body(self._parse_json(raw))
            if path == "/stats_update":
                # Control-plane: applies a catalog delta without taking an
                # admission slot — drift must land even under 429 pressure.
                return 200, service.stats_update_body(self._parse_json(raw))
            if path in ("/healthz", "/stats"):
                raise RequestError(405, "method_not_allowed", f"GET {path} (not POST)")
            raise RequestError(404, "not_found", f"unknown path {path!r}")
        raise RequestError(405, "method_not_allowed", f"unsupported method {method}")

    def _read_body_bytes(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # Unknown body length: the connection cannot be reused either.
            self.close_connection = True
            raise RequestError(
                400, "bad_request", "Content-Length must be an integer"
            ) from None
        if length > MAX_BODY_BYTES:
            # Refusing to read means the connection cannot be reused.
            self.close_connection = True
            raise RequestError(413, "too_large", f"body exceeds {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length) if length > 0 else b""

    def _parse_json(self, raw: bytes) -> dict:
        if not raw:
            raise RequestError(400, "bad_request", "POST body required (JSON object)")
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise RequestError(400, "bad_request", "body must be a JSON object")
        return body

    def _send(self, status: int, payload: dict) -> None:
        try:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            if status in (429, 503):
                # Backpressure statuses advertise a retry hint that
                # ServerClient's opt-in retry loop honours.
                self.send_header("Retry-After", "1")
            self.end_headers()
            self.wfile.write(data)
        except (ConnectionError, BrokenPipeError):  # client gone; nothing to do
            pass

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        """Silence the default per-line stderr chatter (we log JSON)."""


class _PlanHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: PlanService  # assigned by PlanServer


class PlanServer:
    """The daemon: socket server + service + background serve thread.

    Usage::

        with PlanServer(ServerConfig(port=0, workers=2)) as server:
            print(server.port)          # bound ephemeral port
            ...                         # serve
            server.drain()              # graceful stop (also via SIGTERM)
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 session: Optional[PlannerSession] = None):
        self.config = config if config is not None else ServerConfig()
        self.service = PlanService(self.config, session=session)
        self._httpd = _PlanHTTPServer(
            (self.config.host, self.config.port), _RequestHandler
        )
        self._httpd.service = self.service
        self._thread: Optional[threading.Thread] = None

    # -- addressing ----------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "PlanServer":
        """Serve in a background thread; returns self once accepting."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-plan-server",
            daemon=True,
        )
        self._thread.start()
        logger.info(
            "%s",
            json.dumps(
                {
                    "event": "start",
                    "url": self.url,
                    "workers": self.config.effective_workers,
                    "max_inflight": self.config.effective_max_inflight,
                    "strategy": self.config.strategy,
                }
            ),
        )
        return self

    def drain(self, grace: Optional[float] = None) -> bool:
        """Graceful stop: refuse new work, wait for in-flight, shut down.

        Returns True when every in-flight request finished inside the
        grace period (default: the config's ``drain_grace_seconds``).
        """
        grace = self.config.drain_grace_seconds if grace is None else grace
        self.service.begin_drain()
        drained = self.service.wait_idle(grace)
        self.close()
        logger.info("%s", json.dumps({"event": "drain", "clean": drained}))
        return drained

    def close(self) -> None:
        """Immediate stop (idempotent); in-flight requests are abandoned."""
        if self._thread is not None:  # shutdown() deadlocks unless serving
            self._httpd.shutdown()
        self._httpd.server_close()
        self.service.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "PlanServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
