"""The plan server: a concurrent JSON-over-HTTP front end for planning.

This package turns the library into a daemon — the ROADMAP's serving
system finally *accepts traffic*:

* :mod:`repro.server.config` — :class:`ServerConfig`, the validated knobs,
* :mod:`repro.server.service` — :class:`PlanService`, the HTTP-free
  engine: session + process pool + bounded admission + metrics,
* :mod:`repro.server.app` — :class:`PlanServer`, the
  ``ThreadingHTTPServer`` front end with graceful drain,
* :mod:`repro.server.metrics` — per-endpoint latency/error counters
  behind ``GET /stats``,
* :mod:`repro.server.client` — :class:`ServerClient`, the stdlib client
  the benchmark's closed-loop load generator (and the tests) drive.

Start one from the command line with ``python -m repro serve``; see
``docs/architecture.md`` for how the layers compose.
"""

from repro.server.app import PlanServer
from repro.server.client import ServerClient, ServerError
from repro.server.config import ServerConfig
from repro.server.metrics import ServerMetrics
from repro.server.service import PlanService, RequestError

__all__ = [
    "PlanServer",
    "PlanService",
    "RequestError",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "ServerMetrics",
]
