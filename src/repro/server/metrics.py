"""Thread-safe request metrics for the plan server.

Every request records its endpoint, status class and wall latency; every
optimized query additionally records its strategy and whether the plan
cache served it.  Latencies are kept in a bounded per-endpoint window
(newest ``WINDOW`` samples) so percentiles reflect recent behaviour
without unbounded memory; counters are cumulative since server start.

``snapshot()`` produces the JSON body of ``GET /stats`` (minus the plan
cache's own ``describe()`` block, which the service merges in).
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Deque, Dict, List, Optional

#: latency samples retained per endpoint for percentile estimates.
WINDOW = 2048


def percentile(samples: List[float], q: float) -> Optional[float]:
    """The *q*-quantile (0..1) of *samples* by nearest-rank; None if empty."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class _EndpointStats:
    __slots__ = ("count", "errors_4xx", "errors_5xx", "rejected", "latencies_ms")

    def __init__(self) -> None:
        self.count = 0
        self.errors_4xx = 0
        self.errors_5xx = 0
        self.rejected = 0
        self.latencies_ms: Deque[float] = deque(maxlen=WINDOW)


class ServerMetrics:
    """Aggregated per-endpoint and per-plan counters, lock-protected."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._endpoints: Dict[str, _EndpointStats] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._failures = 0
        self._degraded = 0
        self._stale_served = 0
        self._recosted = 0
        self._replanned = 0
        self._by_strategy: Counter = Counter()
        self._by_engine: Counter = Counter()
        self._executions: Counter = Counter()
        self._execution_rows = 0
        self._execution_seconds = 0.0
        self._execution_latencies: Deque[float] = deque(maxlen=WINDOW)

    # -- recording -----------------------------------------------------------
    def record_request(self, endpoint: str, status: int, elapsed_seconds: float) -> None:
        """One finished HTTP exchange (including rejected/errored ones)."""
        with self._lock:
            stats = self._endpoints.setdefault(endpoint, _EndpointStats())
            stats.count += 1
            if status == 429:
                stats.rejected += 1
            if 400 <= status < 500:
                stats.errors_4xx += 1
            elif status >= 500:
                stats.errors_5xx += 1
            stats.latencies_ms.append(elapsed_seconds * 1000.0)

    def record_plan(
        self,
        strategy: str,
        cache_hit: bool,
        engine: str = "indexed",
        degraded: bool = False,
    ) -> None:
        """One successfully served plan (single or batch item).

        *engine* is the driver code path that actually ran — for a
        ``"vectorized"`` config that fell back (numpy missing, lane
        support missing), the effective engine, not the requested one.
        *degraded* counts plans served as deadline-degraded heuristic
        fallbacks (HTTP 200, ``degraded: true``).
        """
        with self._lock:
            self._by_strategy[strategy] += 1
            self._by_engine[engine] += 1
            if degraded:
                self._degraded += 1
            if cache_hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1

    def record_execution(self, executor: str, seconds: float, rows: int) -> None:
        """One plan executed end-to-end (``POST /execute``).

        *seconds* is the pure execution runtime (plan already in hand),
        kept in its own latency window so ``/stats`` reports per-query
        execution percentiles separately from HTTP request latency.
        """
        with self._lock:
            self._executions[executor] += 1
            self._execution_rows += rows
            self._execution_seconds += seconds
            self._execution_latencies.append(seconds * 1000.0)

    def record_failure(self) -> None:
        """One query whose optimizer run errored (batch item or single)."""
        with self._lock:
            self._failures += 1

    def record_stale_served(self) -> None:
        """One request answered from a stale (not-yet-revalidated) entry."""
        with self._lock:
            self._stale_served += 1

    def record_revalidation(self, outcome: str) -> None:
        """One background revalidation: ``"recosted"`` entries kept their
        shape (plan replayed under fresh statistics, within bound);
        ``"replanned"`` entries went through full re-enumeration.  Other
        outcomes (``"dropped"``/``"failed"``) are not counted here — they
        surface through the cache's own ``describe()`` block."""
        with self._lock:
            if outcome == "recosted":
                self._recosted += 1
            elif outcome == "replanned":
                self._replanned += 1

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready copy of every counter, consistent under the lock."""
        with self._lock:
            endpoints = {}
            for name, stats in self._endpoints.items():
                window = list(stats.latencies_ms)
                endpoints[name] = {
                    "count": stats.count,
                    "errors_4xx": stats.errors_4xx,
                    "errors_5xx": stats.errors_5xx,
                    "rejected_429": stats.rejected,
                    "p50_ms": percentile(window, 0.50),
                    "p95_ms": percentile(window, 0.95),
                    "p99_ms": percentile(window, 0.99),
                    "mean_ms": sum(window) / len(window) if window else None,
                }
            served = self._cache_hits + self._cache_misses
            execution_window = list(self._execution_latencies)
            executed = sum(self._executions.values())
            return {
                "uptime_seconds": time.monotonic() - self._started,
                "requests": endpoints,
                "plans": {
                    "served": served,
                    "cache_hits": self._cache_hits,
                    "cache_misses": self._cache_misses,
                    "hit_rate": self._cache_hits / served if served else 0.0,
                    "failures": self._failures,
                    "degraded": self._degraded,
                    "stale_served": self._stale_served,
                    "recosted": self._recosted,
                    "replanned": self._replanned,
                    "by_strategy": dict(self._by_strategy),
                    "by_engine": dict(self._by_engine),
                },
                "executions": {
                    "count": executed,
                    "by_executor": dict(self._executions),
                    "rows_returned": self._execution_rows,
                    "seconds_total": self._execution_seconds,
                    "p50_ms": percentile(execution_window, 0.50),
                    "p95_ms": percentile(execution_window, 0.95),
                    "p99_ms": percentile(execution_window, 0.99),
                    "mean_ms": (
                        sum(execution_window) / len(execution_window)
                        if execution_window
                        else None
                    ),
                },
            }
