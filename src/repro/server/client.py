"""A small stdlib HTTP client for the plan server.

One :class:`ServerClient` keeps one persistent (keep-alive) connection,
so repeated calls pay no TCP handshake — exactly what the closed-loop
benchmark clients need.  A client is therefore **not** thread-safe; give
each thread its own instance.

Error handling mirrors the server's JSON shape: any non-2xx response
raises :class:`ServerError` carrying the HTTP status and the body's
``error.code`` / ``error.message`` (``/healthz`` is exempt — a draining
server's 503 is an answer, not a failure).

Retries are **opt-in** (``retries=N``): transient failures — connection
errors and 429/503 responses, which the servers emit for backpressure,
draining, and open circuit breakers — are retried with capped
exponential backoff and *full jitter* (each sleep is uniform in
``[0, min(cap, base * 2**attempt)]``, so a thundering herd of clients
decorrelates instead of re-arriving in lockstep).  A ``Retry-After``
response header, which both tiers attach to 429/503, takes precedence
over the computed backoff.  Non-transient errors (400/404/500/504)
never retry: a 504 means a planning budget was truly blown and a retry
would blow it again.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Optional

#: HTTP statuses worth retrying: backpressure and temporary
#: unavailability.  Everything else is either a client bug (4xx) or a
#: deterministic failure (500/504) that a retry cannot fix.
RETRYABLE_STATUSES = frozenset({429, 503})


class ServerError(RuntimeError):
    """A non-2xx response from the plan server."""

    def __init__(self, status: int, code: str, message: str, body: Optional[dict] = None,
                 retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.body = body if body is not None else {}
        #: the response's Retry-After hint in seconds, when present.
        self.retry_after = retry_after


class ServerClient:
    """Typed access to every plan-server endpoint over one connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 60.0,
                 retries: int = 0, backoff_base: float = 0.1, backoff_cap: float = 2.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Headers and body go out as separate writes; without
            # TCP_NODELAY the body waits on the server's delayed ACK
            # (~40ms) and dominates warm-cache latency.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> None:
        """Sleep before retry *attempt* (0-based): server hint, else full
        jitter on a capped exponential."""
        if retry_after is not None and retry_after >= 0:
            delay = min(retry_after, self.backoff_cap)
        else:
            delay = random.uniform(
                0.0, min(self.backoff_cap, self.backoff_base * (2 ** attempt))
            )
        if delay > 0:
            time.sleep(delay)

    def _request(self, method: str, path: str, body: Optional[dict] = None,
                 raise_for_status: bool = True) -> dict:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload is not None else {}
        attempts = max(1, self.retries + 1)
        for attempt in range(attempts):
            last = attempt == attempts - 1
            try:
                decoded, status, retry_after = self._exchange(method, path, payload, headers)
            except (ConnectionError, http.client.HTTPException, OSError):
                if last:
                    raise
                self._backoff(attempt, None)
                continue
            if raise_for_status and status >= 400:
                error = decoded.get("error") or {}
                server_error = ServerError(
                    status,
                    error.get("code", "unknown"),
                    error.get("message", f"HTTP {status}"),
                    decoded,
                    retry_after=retry_after,
                )
                if status in RETRYABLE_STATUSES and not last:
                    self._backoff(attempt, retry_after)
                    continue
                raise server_error
            if isinstance(decoded, dict):
                decoded.setdefault("_status", status)
            return decoded
        raise AssertionError("unreachable")  # pragma: no cover

    def _exchange(self, method, path, payload, headers):
        """One request/response on the keep-alive connection.

        Retries **once** on a dead keep-alive socket (server restarted,
        or the idle connection was reaped between calls) regardless of
        the retry policy — that reconnect was always free and is not a
        server failure.
        """
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        retry_after: Optional[float] = None
        raw_hint = response.getheader("Retry-After")
        if raw_hint is not None:
            try:
                retry_after = float(raw_hint)
            except ValueError:
                retry_after = None
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except json.JSONDecodeError:
            decoded = {"raw": data.decode("utf-8", "replace")}
        if not isinstance(decoded, dict):
            decoded = {"value": decoded}
        return decoded, response.status, retry_after

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- endpoints -----------------------------------------------------------
    def optimize(self, sql: str, **knobs) -> dict:
        """``POST /optimize``: plan one statement (knobs: strategy, factor,
        cost_model, include_plan)."""
        return self._request("POST", "/optimize", {"sql": sql, **knobs})

    def batch(self, queries, **knobs) -> dict:
        """``POST /batch``: plan many statements with per-item errors."""
        return self._request("POST", "/batch", {"queries": list(queries), **knobs})

    def explain(self, sql: str, **knobs) -> dict:
        """``POST /explain``: plan and render one statement."""
        return self._request("POST", "/explain", {"sql": sql, **knobs})

    def execute(self, sql: str, **knobs) -> dict:
        """``POST /execute``: plan one statement and run it against the
        server's dataset (knobs: executor, limit, strategy, ...)."""
        return self._request("POST", "/execute", {"sql": sql, **knobs})

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        """Health probe — returns the body even for a draining 503."""
        return self._request("GET", "/healthz", raise_for_status=False)
