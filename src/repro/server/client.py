"""A small stdlib HTTP client for the plan server.

One :class:`ServerClient` keeps one persistent (keep-alive) connection,
so repeated calls pay no TCP handshake — exactly what the closed-loop
benchmark clients need.  A client is therefore **not** thread-safe; give
each thread its own instance.

Error handling mirrors the server's JSON shape: any non-2xx response
raises :class:`ServerError` carrying the HTTP status and the body's
``error.code`` / ``error.message`` (``/healthz`` is exempt — a draining
server's 503 is an answer, not a failure).
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Optional


class ServerError(RuntimeError):
    """A non-2xx response from the plan server."""

    def __init__(self, status: int, code: str, message: str, body: Optional[dict] = None):
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.body = body if body is not None else {}


class ServerClient:
    """Typed access to every plan-server endpoint over one connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Headers and body go out as separate writes; without
            # TCP_NODELAY the body waits on the server's delayed ACK
            # (~40ms) and dominates warm-cache latency.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def _request(self, method: str, path: str, body: Optional[dict] = None,
                 raise_for_status: bool = True) -> dict:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload is not None else {}
        # One retry on a dead keep-alive connection (server restarted, or
        # the idle socket was reaped between calls).
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except json.JSONDecodeError:
            decoded = {"raw": data.decode("utf-8", "replace")}
        if raise_for_status and response.status >= 400:
            error = decoded.get("error") or {}
            raise ServerError(
                response.status,
                error.get("code", "unknown"),
                error.get("message", f"HTTP {response.status}"),
                decoded,
            )
        if isinstance(decoded, dict):
            decoded.setdefault("_status", response.status)
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- endpoints -----------------------------------------------------------
    def optimize(self, sql: str, **knobs) -> dict:
        """``POST /optimize``: plan one statement (knobs: strategy, factor,
        cost_model, include_plan)."""
        return self._request("POST", "/optimize", {"sql": sql, **knobs})

    def batch(self, queries, **knobs) -> dict:
        """``POST /batch``: plan many statements with per-item errors."""
        return self._request("POST", "/batch", {"queries": list(queries), **knobs})

    def explain(self, sql: str, **knobs) -> dict:
        """``POST /explain``: plan and render one statement."""
        return self._request("POST", "/explain", {"sql": sql, **knobs})

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        """Health probe — returns the body even for a draining 503."""
        return self._request("GET", "/healthz", raise_for_status=False)
