"""`PlanService` — the plan server's engine, independent of HTTP.

The service owns a :class:`~repro.api.PlannerSession` (catalog + config +
plan cache), a shared :class:`~concurrent.futures.ProcessPoolExecutor`
for CPU-bound optimizer runs, the bounded admission counter behind 429
backpressure, and the metrics that become ``GET /stats``.  The HTTP layer
(:mod:`repro.server.app`) translates requests into these methods and
:class:`RequestError` into JSON error bodies; tests can drive the service
directly without sockets.

Threading model: many HTTP threads park cheaply on ``Future.result()``
while at most ``workers`` processes burn CPU in the DP enumerator; the
plan cache is probed and populated only in this process, so a warm hit
never touches the pool.  Worker runs return
:class:`~repro.service.batch.WorkerOutcome` envelopes, so a poisoned
query surfaces as a per-request (or per-batch-item) error instead of
killing the worker protocol.
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Dict, List, Optional, Tuple

from repro.api.session import PlannerSession, plan_to_dict
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.driver import OptimizationResult
from repro.plans.render import render_plan
from repro.query.spec import Query
from repro.server.config import ServerConfig
from repro.server.metrics import ServerMetrics
from repro.service.batch import WorkerOutcome, _optimize_payload
from repro.service.cache import FRESH
from repro.service.fingerprint import cache_key, cardinality_snapshot
from repro.service.rebind import query_binding, rebind_result
from repro.service.revalidate import StaleRevalidator

#: rows returned by /execute when the request does not name a limit
#: (an explicit ``"limit": null`` lifts the cap entirely).
DEFAULT_EXECUTE_LIMIT = 1000


def effective_engine(result: OptimizationResult) -> str:
    """The driver code path that actually produced *result*.

    Read from the run's stats flags, so a ``"vectorized"`` config that
    silently fell back (numpy missing, unsupported strategy/cost model)
    reports the engine that ran — cache hits keep the original run's
    engine, which is what they cost to produce.
    """
    stats = result.stats or {}
    if stats.get("engine_vectorized"):
        return "vectorized"
    if stats.get("engine_reference"):
        return "reference"
    return "indexed"


class RequestError(Exception):
    """A request-scoped failure with an HTTP status and a stable code.

    Raised anywhere inside the service; the HTTP layer serialises it as
    ``{"error": {"code": ..., "message": ...}}`` with :attr:`status`.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_body(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


class PlanService:
    """Everything behind the HTTP handler: session, pool, admission, stats."""

    def __init__(self, config: ServerConfig, session: Optional[PlannerSession] = None):
        self.config = config
        self.dataset = None
        if config.dataset is not None:
            # Boot-time provisioning: a bad spec fails construction, not
            # the first /execute request.
            from repro.data.provision import dataset_from_spec

            self.dataset = dataset_from_spec(config.dataset)
        self.session = (
            session
            if session is not None
            else PlannerSession.tpch(
                scale_factor=config.scale_factor,
                config=config.optimizer_config(),
                database=self.dataset,
            )
        )
        self.metrics = ServerMetrics()
        self.revalidator: Optional[StaleRevalidator] = None
        if self.session.cache is not None and self.session.catalog is not None:
            # Stats-drift deltas mark entries stale; this pool re-costs or
            # re-plans them off the request path (stale-while-revalidate).
            self.revalidator = self.session.enable_revalidation(
                workers=config.revalidate_workers,
                on_event=self.metrics.record_revalidation,
            )
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._inflight = 0
        self._exchanges = 0
        self._idle = threading.Condition()
        self._draining = threading.Event()

    # -- admission / lifecycle ----------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def inflight(self) -> int:
        with self._idle:
            return self._inflight

    @contextlib.contextmanager
    def admit(self):
        """Hold one admission slot; 503 while draining, 429 when full."""
        with self._idle:
            if self._draining.is_set():
                raise RequestError(
                    503, "draining", "server is draining and no longer accepts work"
                )
            if self._inflight >= self.config.effective_max_inflight:
                raise RequestError(
                    429,
                    "overloaded",
                    f"admission queue full ({self._inflight} requests in flight); "
                    "retry with backoff",
                )
            self._inflight += 1
        try:
            yield
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    @contextlib.contextmanager
    def track_exchange(self):
        """Count one whole HTTP exchange, response send included.

        ``admit()`` bounds *optimizing* work and releases its slot the
        moment the handler has a payload — but the response bytes and
        the metrics record land after that.  A drain waiting on the
        admission counter alone can observe idle while the final
        response is still being written, close the socket under it, and
        lose that exchange's metrics record.  ``wait_idle`` therefore
        waits for both counters to reach zero.
        """
        with self._idle:
            self._exchanges += 1
        try:
            yield
        finally:
            with self._idle:
                self._exchanges -= 1
                if self._exchanges == 0 and self._inflight == 0:
                    self._idle.notify_all()

    def begin_drain(self) -> None:
        """Stop admitting new optimization requests (idempotent)."""
        self._draining.set()

    def wait_idle(self, grace: Optional[float] = None) -> bool:
        """Block until no exchange is in flight; False if *grace* expired."""
        deadline = None if grace is None else time.monotonic() + grace
        with self._idle:
            while self._inflight > 0 or self._exchanges > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
        return True

    def close(self) -> None:
        """Release the worker pool and detach the session (idempotent)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        self.session.close()

    # -- dispatch ------------------------------------------------------------
    def _pool(self) -> ProcessPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                # Never fork from a multithreaded daemon: HTTP threads may
                # hold locks (logging, metrics) that a forked child would
                # inherit in a locked state and deadlock on.
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "forkserver" if "forkserver" in methods else "spawn"
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.config.effective_workers,
                    mp_context=context,
                )
            return self._executor

    def _reset_pool(self) -> None:
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def _dispatch(
        self,
        payloads: List[Tuple[Query, OptimizerConfig]],
        deadline_at: Optional[float] = None,
    ) -> List[WorkerOutcome]:
        """Run every payload, in the pool or (workers=0) in this thread.

        *deadline_at* (``time.monotonic()`` terms) is when the request's
        planning budget expires — normally request arrival plus
        ``request_timeout_seconds``, so time already burnt on parsing and
        cache probes is charged against it.  The remaining budget is
        armed as a cooperative deadline inside each worker run, which
        either degrades to a heuristic plan or raises
        (``config.degradation``); the pool wait itself uses the *hard*
        timeout (budget + grace) purely as a wedged-worker backstop — a
        healthy worker always answers first.
        """
        if not payloads:
            return []
        if deadline_at is None:
            deadline_at = time.monotonic() + self.config.request_timeout_seconds
        budget = max(0.0, deadline_at - time.monotonic())
        payloads = [
            (query, config.with_overrides(deadline_seconds=budget))
            for query, config in payloads
        ]
        if self.config.effective_workers == 0:
            return [_optimize_payload(payload) for payload in payloads]
        grace = self.config.hard_timeout_seconds - self.config.request_timeout_seconds
        executor = self._pool()
        try:
            futures = [executor.submit(_optimize_payload, p) for p in payloads]
            hard_deadline = deadline_at + grace
            outcomes = []
            for future in futures:
                remaining = max(0.0, hard_deadline - time.monotonic())
                try:
                    outcomes.append(future.result(timeout=remaining))
                except FutureTimeout:
                    for pending in futures:
                        pending.cancel()
                    raise RequestError(
                        504,
                        "timeout",
                        f"worker unresponsive past the {self.config.request_timeout_seconds:g}s "
                        "budget plus grace — request abandoned",
                    ) from None
            return outcomes
        except RequestError:
            raise
        except Exception as exc:  # BrokenProcessPool and friends
            self._reset_pool()
            raise RequestError(
                500, "worker_pool_failure", f"worker pool failed: {exc}"
            ) from exc

    def _optimize_indexed(
        self,
        indexed: List[Tuple[int, Query, Optional[str]]],
        config: OptimizerConfig,
        deadline_at: Optional[float] = None,
    ) -> Dict[int, Tuple[Optional[OptimizationResult], Optional[str], bool, bool]]:
        """Optimize ``(index, query, sql)`` triples → index → (result,
        error, hit, timed_out).

        Probes the session cache once per distinct key, dispatches the
        misses to the pool in one wave, stores successes back, and serves
        in-request duplicates through the cache (which rebinds plans for
        renamed-but-isomorphic spellings).  Cache keys are band-aware
        (``snapshot_band_width``); stale entries are served as-is — the
        background revalidator owns bringing them back to fresh — and
        counted in ``plans.stale_served``.  *sql* rides along into the
        stored entry so revalidation can re-parse under fresh statistics.
        Without a cache every query runs independently.
        """
        cache = self.session.cache
        banded = config.snapshot_band_width is not None
        out: Dict[int, Tuple[Optional[OptimizationResult], Optional[str], bool, bool]] = {}
        to_run: List[Tuple[int, Query, Optional[object], Optional[str], Optional[str]]] = []
        duplicates: Dict[object, List[Tuple[int, Query]]] = {}
        if cache is None:
            to_run = [(index, query, None, sql, None) for index, query, sql in indexed]
        else:
            for index, query, sql in indexed:
                key = cache_key(
                    query, config.strategy, config.factor,
                    cost_model=config.cost_model_name,
                    band_width=config.snapshot_band_width,
                )
                exact = cardinality_snapshot(query) if banded else key.snapshot
                found = cache.serve_entry(key, query, exact_snapshot=exact)
                if found is not None:
                    served, state = found
                    if state != FRESH:
                        self.metrics.record_stale_served()
                    out[index] = (served, None, True, False)
                elif key in duplicates:
                    duplicates[key].append((index, query))
                else:
                    duplicates[key] = []
                    to_run.append((index, query, key, sql, exact))

        outcomes = self._dispatch(
            [(query, config) for _, query, _, _, _ in to_run], deadline_at
        )
        for (index, query, key, sql, exact), outcome in zip(to_run, outcomes):
            if outcome.ok:
                result = outcome.result
                # Degraded fallback plans are never cached (PlanCache.store
                # also refuses them defensively).
                if cache is not None and key is not None and not result.degraded:
                    cache.store(key, query, result, sql=sql, exact_snapshot=exact)
                out[index] = (result, None, False, False)
            else:
                out[index] = (None, outcome.error, False, outcome.deadline)
            for dup_index, dup_query in duplicates.get(key, ()):
                if outcome.ok:
                    # Rebind the in-hand result directly — a cache.serve()
                    # round trip could miss (concurrent eviction or
                    # invalidation) and crash the whole request.
                    shared = rebind_result(
                        outcome.result, query_binding(query), dup_query
                    ).as_cache_hit()
                    out[dup_index] = (shared, None, True, False)
                else:
                    out[dup_index] = (None, outcome.error, False, outcome.deadline)
        return out

    # -- request bodies ------------------------------------------------------
    def _derive_config(self, body: dict) -> OptimizerConfig:
        overrides = {
            field: body[field]
            for field in ("strategy", "factor", "cost_model")
            if field in body
        }
        if not overrides:
            return self.session.config
        try:
            return self.session.config.with_overrides(**overrides)
        except (TypeError, ValueError) as exc:
            raise RequestError(400, "bad_config", str(exc)) from exc

    def _parse(self, sql) -> Query:
        if not isinstance(sql, str) or not sql.strip():
            raise RequestError(400, "bad_request", "'sql' must be a non-empty string")
        try:
            return self.session.parse(sql)
        except ValueError as exc:
            raise RequestError(400, "parse_error", str(exc)) from exc

    def _optimize_one(
        self, sql, config: OptimizerConfig, deadline_at: Optional[float] = None
    ) -> OptimizationResult:
        query = self._parse(sql)
        (result, error, _hit, timed_out) = self._optimize_indexed(
            [(0, query, sql)], config, deadline_at
        )[0]
        if error is not None:
            if timed_out:
                # degradation="error": the cooperative deadline fired inside
                # the worker and the run was abandoned there (no CPU leaks).
                raise RequestError(504, "timeout", error)
            self.metrics.record_failure()
            raise RequestError(500, "optimizer_error", error)
        self.metrics.record_plan(
            result.strategy,
            result.cache_hit,
            effective_engine(result),
            degraded=result.degraded,
        )
        return result

    def optimize_body(self, body: dict) -> dict:
        """``POST /optimize`` — one SQL statement → its plan as JSON."""
        config = self._derive_config(body)
        started = time.perf_counter()
        deadline_at = time.monotonic() + self.config.request_timeout_seconds
        result = self._optimize_one(body.get("sql"), config, deadline_at)
        payload = {
            "strategy": result.strategy,
            "cost_model": config.cost_model_name,
            "cost": result.cost,
            "cardinality": result.plan.cardinality,
            "elapsed_seconds": result.elapsed_seconds,
            "server_seconds": time.perf_counter() - started,
            "cache_hit": result.cache_hit,
            "degraded": result.degraded,
            "ccp_count": result.ccp_count,
            "plans_built": result.plans_built,
        }
        if body.get("include_plan", True):
            payload["plan"] = plan_to_dict(result.plan.node)
        return payload

    def explain_body(self, body: dict) -> dict:
        """``POST /explain`` — optimize and render the plan as text."""
        config = self._derive_config(body)
        deadline_at = time.monotonic() + self.config.request_timeout_seconds
        result = self._optimize_one(body.get("sql"), config, deadline_at)
        return {
            "strategy": result.strategy,
            "cost": result.cost,
            "cache_hit": result.cache_hit,
            "degraded": result.degraded,
            "explain": render_plan(result.plan.node),
        }

    def _resolve_executor(self, body: dict) -> str:
        from repro.exec import EXECUTORS

        executor = body.get("executor", self.config.default_executor)
        if executor not in EXECUTORS:
            raise RequestError(
                400,
                "bad_executor",
                f"unknown executor {executor!r} (one of: {', '.join(EXECUTORS)})",
            )
        return executor

    def _resolve_limit(self, body: dict) -> Optional[int]:
        """The row limit for one /execute: explicit, or the default cap.

        ``"limit": null`` means unlimited; an absent limit defaults to
        :data:`DEFAULT_EXECUTE_LIMIT` so an unbounded join cannot melt
        the JSON serialiser by accident.
        """
        if "limit" not in body:
            return DEFAULT_EXECUTE_LIMIT
        limit = body["limit"]
        if limit is None:
            return None
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 0:
            raise RequestError(400, "bad_request", "'limit' must be an integer >= 0 or null")
        return limit

    def execute_body(self, body: dict) -> dict:
        """``POST /execute`` — optimize one statement, then run the plan.

        Requires a dataset (``ServerConfig(dataset=...)`` / the
        ``--dataset`` flag) — without one the endpoint answers 409.  The
        body takes the /optimize fields plus ``executor`` (backend
        choice, default the config's) and ``limit`` (row cap; ``null``
        for unlimited, absent for the default cap).  The response
        carries the rows columnar-style (``columns`` + row arrays) with
        the pure execution runtime, which also feeds the ``executions``
        block of ``GET /stats``.
        """
        if self.dataset is None:
            raise RequestError(
                409,
                "no_dataset",
                "no dataset loaded — start the server with a dataset "
                "(e.g. --dataset tpch-sf0.01) to execute plans",
            )
        from repro.algebra.values import NULL
        from repro.exec import run_plan

        executor = self._resolve_executor(body)
        limit = self._resolve_limit(body)
        config = self._derive_config(body)
        started = time.perf_counter()
        deadline_at = time.monotonic() + self.config.request_timeout_seconds
        result = self._optimize_one(body.get("sql"), config, deadline_at)
        query = self._parse(body.get("sql"))
        try:
            database = self.dataset.database_for(query)
        except KeyError as exc:
            raise RequestError(
                404, "unknown_table", f"dataset has no table for {exc.args[0]!r}"
            ) from exc
        run_started = time.perf_counter()
        try:
            relation = run_plan(result.plan.node, database, executor=executor, limit=limit)
        except Exception as exc:  # noqa: BLE001 - per-request isolation
            self.metrics.record_failure()
            raise RequestError(
                500, "execution_error", f"{type(exc).__name__}: {exc}"
            ) from exc
        execution_seconds = time.perf_counter() - run_started
        self.metrics.record_execution(executor, execution_seconds, len(relation))
        columns = list(relation.attributes)
        return {
            "strategy": result.strategy,
            "cost": result.cost,
            "cache_hit": result.cache_hit,
            "degraded": result.degraded,
            "executor": executor,
            "limit": limit,
            "columns": columns,
            "rows": [
                [None if row[column] is NULL else row[column] for column in columns]
                for row in relation
            ],
            "row_count": len(relation),
            "execution_seconds": execution_seconds,
            "server_seconds": time.perf_counter() - started,
        }

    def batch_body(self, body: dict) -> dict:
        """``POST /batch`` — many SQL statements, per-item fault isolation.

        A statement that fails to parse or optimize yields an item with an
        ``error`` field; every other statement still returns its plan —
        the HTTP twin of :func:`repro.service.optimize_many`'s behaviour.
        """
        sqls = body.get("queries")
        if not isinstance(sqls, list) or not sqls:
            raise RequestError(400, "bad_request", "'queries' must be a non-empty list")
        config = self._derive_config(body)
        include_plans = bool(body.get("include_plans", False))
        started = time.perf_counter()
        deadline_at = time.monotonic() + self.config.request_timeout_seconds

        items: List[Optional[dict]] = [None] * len(sqls)
        indexed: List[Tuple[int, Query, Optional[str]]] = []
        for index, sql in enumerate(sqls):
            try:
                indexed.append((index, self._parse(sql), sql))
            except RequestError as exc:
                self.metrics.record_failure()
                items[index] = {"index": index, "error": exc.message, "stage": "parse"}

        outcomes = self._optimize_indexed(indexed, config, deadline_at)
        for index, (result, error, hit, timed_out) in outcomes.items():
            if error is not None:
                if not timed_out:
                    self.metrics.record_failure()
                item = {"index": index, "error": error, "stage": "optimize"}
                if timed_out:
                    item["timeout"] = True
                items[index] = item
                continue
            self.metrics.record_plan(
                result.strategy,
                result.cache_hit or hit,
                effective_engine(result),
                degraded=result.degraded,
            )
            item = {
                "index": index,
                "strategy": result.strategy,
                "cost": result.cost,
                "cache_hit": result.cache_hit or hit,
                "degraded": result.degraded,
                "elapsed_seconds": result.elapsed_seconds,
            }
            if include_plans:
                item["plan"] = plan_to_dict(result.plan.node)
            items[index] = item

        succeeded = sum(1 for item in items if item is not None and "error" not in item)
        return {
            "total": len(sqls),
            "succeeded": succeeded,
            "failed": len(sqls) - succeeded,
            "cache_hits": sum(1 for item in items if item is not None and item.get("cache_hit")),
            "wall_seconds": time.perf_counter() - started,
            "items": items,
        }

    def stats_update_body(self, body: dict) -> dict:
        """``POST /stats_update`` — apply a statistics drift to the catalog.

        The control-plane entry point for drift: scale a table's row
        count (``cardinality_factor``, distinct counts scaled alongside
        and clamped to the new cardinality) or set it outright
        (``cardinality``).  Emits the typed delta through the catalog,
        which marks dependent cache entries stale and kicks background
        revalidation; requests keep being served meanwhile.
        """
        table = body.get("table")
        if not isinstance(table, str) or not table.strip():
            raise RequestError(400, "bad_request", "'table' must be a non-empty string")
        old = self.session.catalog.lookup(table)
        if old is None:
            raise RequestError(404, "unknown_table", f"unknown table {table!r}")
        factor = body.get("cardinality_factor")
        absolute = body.get("cardinality")
        if (factor is None) == (absolute is None):
            raise RequestError(
                400,
                "bad_request",
                "provide exactly one of 'cardinality_factor' or 'cardinality'",
            )
        try:
            if factor is not None:
                factor = float(factor)
                if factor <= 0:
                    raise ValueError("cardinality_factor must be > 0")
                new_cardinality = old.cardinality * factor
            else:
                new_cardinality = float(absolute)
                if new_cardinality <= 0:
                    raise ValueError("cardinality must be > 0")
                factor = new_cardinality / old.cardinality if old.cardinality else 1.0
        except (TypeError, ValueError) as exc:
            raise RequestError(400, "bad_request", str(exc)) from exc
        # Distinct counts drift with the table (sub-linearly in reality;
        # linear-with-clamp is the standard homogeneity assumption).
        new_stats = dataclasses.replace(
            old,
            cardinality=new_cardinality,
            distinct={
                column: min(value * factor, new_cardinality)
                for column, value in old.distinct.items()
            },
        )
        delta = self.session.catalog.update_stats(table, new_stats)
        cache = self.session.cache
        payload = dict(delta.payload())
        payload["stale_entries"] = cache.stale_count() if cache is not None else 0
        return payload

    def healthz_body(self) -> Tuple[int, dict]:
        """``GET /healthz`` — 200 while serving, 503 once draining."""
        if self.draining:
            return 503, {"status": "draining", "inflight": self.inflight}
        return 200, {
            "status": "ok",
            "workers": self.config.effective_workers,
            "strategy": self.session.config.strategy_name,
            "inflight": self.inflight,
        }

    def stats_body(self) -> dict:
        """``GET /stats`` — request metrics merged with the plan cache's.

        Carries the same reporting surface as the async tier's
        aggregated stats (``mode`` / ``shards`` / ``persistence`` /
        ``engine``) so dashboards can scrape either without branching:
        the sync tier is one unsharded in-process cache with no
        persistence, and its effective-engine counts come from the same
        :func:`effective_engine` classification the async workers use.
        """
        payload = self.metrics.snapshot()
        payload["mode"] = "sync"
        payload["inflight"] = self.inflight
        payload["draining"] = self.draining
        payload["max_inflight"] = self.config.effective_max_inflight
        payload["workers"] = self.config.effective_workers
        payload["degradation"] = self.config.degradation
        payload["shards"] = 1
        payload["persistence"] = {"loaded": 0, "saved": 0, "rejected": 0}
        payload["engine"] = {
            "requested": self.config.engine,
            "effective": payload["plans"]["by_engine"],
        }
        cache = self.session.cache
        payload["cache"] = cache.describe() if cache is not None else None
        return payload
