"""Cardinality estimation for the cost model."""

from repro.cardinality.estimate import (
    antijoin_cardinality,
    distinct_after,
    grouping_cardinality,
    join_cardinality,
    outerjoin_cardinality,
    semijoin_cardinality,
)

__all__ = [
    "join_cardinality",
    "outerjoin_cardinality",
    "semijoin_cardinality",
    "antijoin_cardinality",
    "grouping_cardinality",
    "distinct_after",
]
