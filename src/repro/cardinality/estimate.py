"""Textbook cardinality estimators used by the Cout cost model.

The paper's evaluation assigns *random cardinalities and selectivities* to
the generated queries (Sec. 5) and uses the ``Cout`` cost function; the
estimators below supply the intermediate-result sizes Cout sums up:

* inner join:   ``|L| · |R| · σ`` with σ the product of the selectivities
  of all applied predicates,
* left/full outerjoin: the inner result plus the expected unmatched tuples
  of the padded side(s), with miss probability ``(1 − σ)^d`` where *d* is
  the **distinct join-value count** of the other side,
* semijoin / antijoin: the same hit/miss model,
* groupjoin: exactly ``|L|`` (Definition (9) keeps every left tuple),
* grouping: distinct-value estimation over the grouping attributes using
  the Cardenas/Yao approximation ``D(n, d) = d · (1 − (1 − 1/d)^n)``.

Basing the miss probability on *distinct values* rather than raw row counts
matters for more than accuracy: grouping a join input by its join
attributes preserves the set of join values, so all semantically equal
plans of one relation set receive identical existence-test estimates.  A
raw-row-count model would make the antijoin estimate *decrease* when the
right input grows — violating the cost monotonicity that the paper's
dominance pruning (Def. 4) implicitly relies on, and thereby breaking the
optimality of EA-Prune.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional


def _miss_probability(selectivity: float, other_cardinality: float) -> float:
    """Probability a row finds no partner among *other_cardinality* rows."""
    if other_cardinality <= 0:
        return 1.0
    sel = min(max(selectivity, 0.0), 1.0)
    if sel >= 1.0:
        return 0.0
    # (1 - sel)^n computed in log space to stay stable for huge n.
    return math.exp(other_cardinality * math.log1p(-sel))


def join_cardinality(left: float, right: float, selectivity: float) -> float:
    """``|e1 ⋈ e2| = |e1| · |e2| · σ``."""
    return max(0.0, left * right * selectivity)


def outerjoin_cardinality(
    left: float,
    right: float,
    selectivity: float,
    full: bool,
    right_join_values: Optional[float] = None,
    left_join_values: Optional[float] = None,
) -> float:
    """Left (or full) outerjoin: inner result + expected unmatched tuples.

    ``*_join_values`` are distinct join-value counts; they default to the
    respective row counts.
    """
    inner = join_cardinality(left, right, selectivity)
    unmatched_left = left * _miss_probability(
        selectivity, right if right_join_values is None else right_join_values
    )
    total = inner + unmatched_left
    if full:
        total += right * _miss_probability(
            selectivity, left if left_join_values is None else left_join_values
        )
    return total


def semijoin_cardinality(
    left: float, right: float, selectivity: float, right_join_values: Optional[float] = None
) -> float:
    """``|e1 ⋉ e2| = |e1| · (1 − (1 − σ)^d)`` with d distinct join values."""
    d = right if right_join_values is None else right_join_values
    return left * (1.0 - _miss_probability(selectivity, d))


def antijoin_cardinality(
    left: float, right: float, selectivity: float, right_join_values: Optional[float] = None
) -> float:
    """``|e1 ▷ e2| = |e1| · (1 − σ)^d`` with d distinct join values."""
    d = right if right_join_values is None else right_join_values
    return left * _miss_probability(selectivity, d)


def grouping_cardinality(cardinality: float, domain_product: float) -> float:
    """Cardenas/Yao estimate for the number of groups.

    ``domain_product`` is the product of the distinct counts of the grouping
    attributes (∞-safe: capped before exponentiation).  An empty grouping
    set (scalar aggregation) yields one group for non-empty input.
    """
    n = max(0.0, cardinality)
    if n == 0:
        return 0.0
    d = max(1.0, domain_product)
    if d <= 1.0:
        return min(1.0, n)
    return d * (1.0 - math.exp(n * math.log1p(-1.0 / d)))


def distinct_after(
    attrs: Iterable[str], distinct: Mapping[str, float], cardinality: float
) -> float:
    """Product of per-attribute distinct counts, capped at the cardinality."""
    product = 1.0
    for attr in attrs:
        product *= max(1.0, distinct.get(attr, cardinality))
        if product >= cardinality:
            return max(1.0, cardinality)
    return max(1.0, min(product, cardinality))


def domain_product(
    attrs: Iterable[str], distinct: Mapping[str, float], default: float = 10.0
) -> float:
    """Uncapped product of distinct counts — a per-relation-set invariant.

    Used for existence-test (semi/anti/outer miss) estimates so that every
    plan of the same relation set sees the same value regardless of how
    much its groupings reduced the row count.
    """
    product = 1.0
    for attr in attrs:
        product *= max(1.0, distinct.get(attr, default))
        if product > 1e12:
            return 1e12
    return product
