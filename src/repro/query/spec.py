"""The query specification consumed by every plan generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.aggregates.transform import normalize_avg
from repro.aggregates.vector import AggVector
from repro.algebra.expressions import Expr, attrs_of
from repro.query.tree import Tree, TreeLeaf, tree_leaves, tree_operators
from repro.rewrites.pushdown import OpKind


@dataclass(frozen=True)
class RelationInfo:
    """A base relation with optimizer statistics.

    Attributes:
        name: relation name (also the executor's lookup key).
        attributes: qualified attribute names (``"s.nationkey"``).
        cardinality: estimated/true row count.
        distinct: per-attribute distinct value counts; attributes missing
            from the mapping default to the relation cardinality.
        keys: declared candidate keys.  Only *declared* keys participate in
            κ computation and ``NeedsGrouping`` — key-ness is a semantic
            guarantee (Sec. 2.3: "specified in the database schema"), and
            inferring it from approximate statistics would make
            top-grouping elimination (Eqv. 42) unsound.
        source: the catalog base table this relation's statistics came
            from, when ``name`` is a query-local alias.  Plan-cache
            invalidation tracks tables by this name; None means ``name``
            is the table itself.
    """

    name: str
    attributes: Tuple[str, ...]
    cardinality: float
    distinct: Mapping[str, float] = field(default_factory=dict)
    keys: Tuple[FrozenSet[str], ...] = ()
    source: Optional[str] = None

    @property
    def source_table(self) -> str:
        """The base-table name catalog invalidation should match on."""
        return self.source or self.name

    def distinct_count(self, attr: str) -> float:
        base = self.distinct.get(attr, self.cardinality)
        return max(1.0, min(float(base), float(self.cardinality)))

    def all_keys(self) -> Tuple[FrozenSet[str], ...]:
        """The declared candidate keys."""
        return tuple(self.keys)

    @property
    def duplicate_free(self) -> bool:
        """Base relations with a key are duplicate-free (SQL semantics)."""
        return bool(self.all_keys())


@dataclass(frozen=True)
class JoinEdge:
    """One operator of the initial tree: kind, predicate, selectivity."""

    edge_id: int
    op: OpKind
    predicate: Expr
    selectivity: float
    groupjoin_vector: Optional[AggVector] = None

    def __post_init__(self) -> None:
        if self.op is OpKind.GROUPJOIN and self.groupjoin_vector is None:
            raise ValueError("groupjoin edges need an aggregation vector")
        if not (0.0 < self.selectivity <= 1.0):
            raise ValueError(f"selectivity must be in (0, 1], got {self.selectivity}")


class Query:
    """Relations, join edges, the initial tree, grouping and aggregation.

    On construction the query normalises plain ``avg`` aggregates into
    (sum, countNN) pairs plus final division expressions (Sec. 2.1.2) —
    the optimizer works exclusively on the normalised vector and the final
    plan re-assembles the original outputs.
    """

    def __init__(
        self,
        relations: Sequence[RelationInfo],
        edges: Sequence[JoinEdge],
        tree: Tree,
        group_by: Sequence[str],
        aggregates: AggVector,
        local_predicates: Optional[Mapping[int, Tuple[Expr, float]]] = None,
    ):
        self.relations: Tuple[RelationInfo, ...] = tuple(relations)
        self.edges: Tuple[JoinEdge, ...] = tuple(edges)
        self.tree = tree
        self.group_by: Tuple[str, ...] = tuple(group_by)
        self.aggregates = aggregates
        self.normalized = normalize_avg(aggregates)
        #: per-vertex base-table selections: vertex → (predicate, selectivity)
        self.local_predicates: Dict[int, Tuple[Expr, float]] = dict(local_predicates or {})

        tree_edge_ids = {node.edge_id for node in tree_operators(tree)}
        #: edges not part of the initial tree: cycle-closing WHERE predicates
        #: (TPC-H Q5).  Only inner joins support them — in the presence of
        #: outer joins a WHERE predicate cannot float into the join tree.
        self.floating_edge_ids: Tuple[int, ...] = tuple(
            e.edge_id for e in self.edges if e.edge_id not in tree_edge_ids
        )
        if self.floating_edge_ids and any(e.op is not OpKind.INNER for e in self.edges):
            raise ValueError("floating (cycle) edges require an all-inner-join query")

        self._attr_to_vertex: Dict[str, int] = {}
        for vertex, rel in enumerate(self.relations):
            for attr in rel.attributes:
                if attr in self._attr_to_vertex:
                    raise ValueError(f"attribute {attr!r} defined by two relations")
                self._attr_to_vertex[attr] = vertex

        if {leaf for leaf in self._tree_vertices()} != set(range(len(self.relations))):
            raise ValueError("initial tree must reference every relation exactly once")

        for attr in self.group_by:
            if attr not in self._attr_to_vertex and attr not in self._groupjoin_outputs():
                raise ValueError(f"unknown grouping attribute {attr!r}")

        self.all_relations_mask = (1 << len(self.relations)) - 1

    # -- helpers -------------------------------------------------------------
    def _tree_vertices(self):
        def walk(node):
            if isinstance(node, TreeLeaf):
                yield node.vertex
            else:
                yield from walk(node.left)
                yield from walk(node.right)

        yield from walk(self.tree)

    def _groupjoin_outputs(self) -> FrozenSet[str]:
        names: set = set()
        for edge in self.edges:
            if edge.groupjoin_vector is not None:
                names.update(edge.groupjoin_vector.names())
        return frozenset(names)

    def edge(self, edge_id: int) -> JoinEdge:
        return self.edges[edge_id]

    def vertex_of(self, attr: str) -> int:
        """The base relation (vertex index) providing *attr*."""
        return self._attr_to_vertex[attr]

    def vertices_of(self, attrs) -> int:
        """Bitset of relations providing any of *attrs*.

        A groupjoin output only exists once its groupjoin edge has been
        applied, so it maps to the union of both subtrees of that edge —
        the smallest relation set whose plans can carry the attribute.
        """
        mask = 0
        gj_outputs = self._groupjoin_outputs()
        for attr in attrs:
            if attr in self._attr_to_vertex:
                mask |= 1 << self._attr_to_vertex[attr]
            elif attr in gj_outputs:
                mask |= self._groupjoin_edge_mask(attr)
            else:
                raise KeyError(f"unknown attribute {attr!r}")
        return mask

    def _groupjoin_edge_mask(self, attr: str) -> int:
        for node in tree_operators(self.tree):
            edge = self.edges[node.edge_id]
            if edge.groupjoin_vector is not None and attr in edge.groupjoin_vector.names():
                return tree_leaves(node.left) | tree_leaves(node.right)
        raise KeyError(attr)

    def groupjoin_scaling_requirements(self) -> List[Tuple[int, bool]]:
        """Per groupjoin edge: (right-subtree mask, F̂ duplicate sensitive).

        A grouping pushed inside a groupjoin's *right* subtree collapses the
        rows its aggregation vector F̂ consumes; when F̂ is duplicate
        sensitive, the grouping must introduce a count column so the
        groupjoin node can ⊗-scale F̂.
        """
        requirements: List[Tuple[int, bool]] = []
        for node in tree_operators(self.tree):
            edge = self.edges[node.edge_id]
            if edge.groupjoin_vector is not None:
                sensitive = any(
                    item.call.duplicate_sensitive for item in edge.groupjoin_vector
                )
                requirements.append((tree_leaves(node.right), sensitive))
        return requirements

    # -- attribute bookkeeping used by the optimizer ---------------------------
    def relation_attrs(self, mask: int) -> FrozenSet[str]:
        """All base attributes of the relations in bitset *mask*."""
        attrs: set = set()
        for vertex, rel in enumerate(self.relations):
            if mask & (1 << vertex):
                attrs.update(rel.attributes)
        return frozenset(attrs)

    def needed_above(self, mask: int) -> FrozenSet[str]:
        """Attributes of *mask*-relations still needed above a plan for *mask*.

        These are: the query grouping attributes, the attributes referenced
        by any join edge crossing the boundary of *mask* (including
        groupjoin aggregation vectors), and the attributes of aggregates
        whose sources straddle the boundary (they must survive raw).
        """
        own = set(self.relation_attrs(mask))
        # Groupjoin outputs computed inside *mask* also count as own.
        for name in self._groupjoin_outputs():
            if self._groupjoin_edge_mask(name) & ~mask == 0:
                own.add(name)
        needed: set = set(a for a in self.group_by if a in own)
        for edge in self.edges:
            pred_attrs = attrs_of(edge.predicate)
            extra = (
                edge.groupjoin_vector.attributes()
                if edge.groupjoin_vector is not None
                else frozenset()
            )
            referenced = pred_attrs | extra
            touched = self.vertices_of(a for a in referenced if a in self._attr_to_vertex)
            if touched & mask and touched & ~mask & self.all_relations_mask:
                needed.update(a for a in referenced if a in own)
        for item in self.normalized.vector:
            src = item.call.attributes()
            src_in = {a for a in src if a in own}
            src_mask = self.vertices_of(src) if src else 0
            if src_in and src_mask & ~mask & self.all_relations_mask:
                needed.update(src_in)
        return frozenset(needed)

    def __repr__(self) -> str:
        return (
            f"Query({len(self.relations)} relations, {len(self.edges)} edges, "
            f"group_by={list(self.group_by)}, F={self.aggregates!r})"
        )
