"""Initial operator trees.

The paper's plan generators receive the query as a hypergraph produced by a
conflict detector from the *initial operator tree* — the tree a parser /
rewriter produced from the SQL text.  These nodes are purely structural
(operators reference their :class:`~repro.query.spec.JoinEdge` by id);
executable plans live in :mod:`repro.plans`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union


@dataclass(frozen=True)
class TreeLeaf:
    """A base relation, identified by its vertex index."""

    vertex: int


@dataclass(frozen=True)
class TreeNode:
    """A binary operator applying join edge *edge_id* to two subtrees."""

    edge_id: int
    left: "Tree"
    right: "Tree"


Tree = Union[TreeLeaf, TreeNode]


def tree_leaves(tree: Tree) -> int:
    """``T(T)`` — the set of relations below *tree*, as a bitset."""
    if isinstance(tree, TreeLeaf):
        return 1 << tree.vertex
    return tree_leaves(tree.left) | tree_leaves(tree.right)


def tree_operators(tree: Tree) -> Iterator[TreeNode]:
    """``STO(T)`` — all operator nodes below (and including) *tree*."""
    if isinstance(tree, TreeNode):
        yield tree
        yield from tree_operators(tree.left)
        yield from tree_operators(tree.right)


def tree_depth(tree: Tree) -> int:
    """Height of the operator tree (leaves have depth 0)."""
    if isinstance(tree, TreeLeaf):
        return 0
    return 1 + max(tree_depth(tree.left), tree_depth(tree.right))
