"""Canonical (unoptimized) executable plans for a query.

The canonical plan evaluates the initial operator tree exactly as written
and applies the *original* aggregation vector (plain ``avg`` included) in a
single top grouping.  It defines the query's semantics: every optimizer
output must produce the same relation on every database.
"""

from __future__ import annotations

from repro.plans.nodes import GroupByNode, JoinNode, PlanNode, ScanNode, SelectNode
from repro.query.spec import Query
from repro.query.tree import Tree, TreeLeaf


def canonical_join_tree(query: Query) -> PlanNode:
    """The initial operator tree as an executable plan (no grouping).

    Floating (cycle-closing) predicates are applied as selections on top —
    their WHERE semantics in an all-inner-join query.
    """
    node = _build(query, query.tree)
    for edge_id in query.floating_edge_ids:
        node = SelectNode(query.edge(edge_id).predicate, node)
    return node


def canonical_plan(query: Query) -> PlanNode:
    """Initial tree + top grouping over (G, F) — the paper's LHS."""
    return GroupByNode(
        group_attrs=tuple(query.group_by),
        vector=query.aggregates,
        child=canonical_join_tree(query),
    )


def _build(query: Query, tree: Tree) -> PlanNode:
    if isinstance(tree, TreeLeaf):
        rel = query.relations[tree.vertex]
        node: PlanNode = ScanNode(rel.name, rel.attributes)
        local = query.local_predicates.get(tree.vertex)
        if local is not None:
            node = SelectNode(local[0], node)
        return node
    edge = query.edge(tree.edge_id)
    return JoinNode(
        op=edge.op,
        predicate=edge.predicate,
        left=_build(query, tree.left),
        right=_build(query, tree.right),
        groupjoin_vector=edge.groupjoin_vector,
    )
