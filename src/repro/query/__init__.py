"""Query specifications: relations + statistics, join edges, grouping.

A :class:`~repro.query.spec.Query` is the plan generators' input (paper
Sec. 4.1): the relation set with statistics, the operator set with
predicates and selectivities, the initial operator tree (from which the
conflict detector derives the query hypergraph), the grouping attributes
``G`` and the aggregation vector ``F``.
"""

from repro.query.spec import JoinEdge, Query, RelationInfo
from repro.query.tree import TreeLeaf, TreeNode, tree_leaves, tree_operators

__all__ = [
    "Query",
    "RelationInfo",
    "JoinEdge",
    "TreeLeaf",
    "TreeNode",
    "tree_leaves",
    "tree_operators",
]
