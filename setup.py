"""Package metadata.

Kept in ``setup.py`` (not ``pyproject.toml``) because the offline
reproduction environment lacks the ``wheel`` package PEP 660 editable
installs require; this form lets ``pip install -e .`` fall back to
``setup.py develop``.  ``py.typed`` ships so downstream users can
type-check against the :mod:`repro.api` surface (PEP 561).
"""

import pathlib
import re

from setuptools import find_packages, setup

_HERE = pathlib.Path(__file__).parent
# Single source of truth for the version: repro.__version__.
_VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (_HERE / "src" / "repro" / "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro",
    version=_VERSION,
    description=(
        "Reproduction of Eich & Moerkotte, 'Dynamic programming: The next "
        "step' (ICDE 2015): eager aggregation in a DP query optimizer, with "
        "a PlannerSession serving facade, plan cache and batch driver."
    ),
    long_description=(_HERE / "README.md").read_text(),
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database",
        "Typing :: Typed",
    ],
    zip_safe=False,
)
